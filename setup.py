"""Legacy setup shim.

This offline environment has no ``wheel`` package, so PEP 517 editable
installs fail at ``bdist_wheel``. With this shim,
``pip install -e . --no-build-isolation --no-use-pep517`` works (see the
pip.conf note in README); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
