"""Online join-size estimation under skew: ONCE vs dne vs byte.

Reproduces the Figure 4(a) scenario at example scale: two customer tables
with Zipf(1) nationkey columns whose hot values disagree. The optimizer's
containment-assumption estimate is off by an order of magnitude; the ONCE
estimator converges to the exact join size during the probe partitioning
pass, while dne and byte keep chasing the clustered join output.

Run:  python examples/skewed_join_estimation.py
"""

from repro import ExecutionEngine, ProgressMonitor, TickBus
from repro.workloads import paper_binary_join


def run_mode(mode: str, fractions: list[float]) -> list[float]:
    """Run the join under one estimator mode; return the join-size estimate
    at the given fractions of true progress."""
    setup = paper_binary_join(z=1.0, domain_size=20_000, num_rows=30_000)
    bus = TickBus(interval=500)
    monitor = ProgressMonitor(setup.plan, mode=mode, bus=bus)
    join = setup.join

    estimates: list[tuple[float, float]] = []

    def sample(_count: int) -> None:
        if monitor.mode == "once":
            assert monitor.manager is not None
            est = monitor.manager.estimate_for(join)
            if est is None or not monitor.manager.has_started(join):
                est = join.estimated_cardinality or 0.0
        else:
            pipeline = next(p for p in monitor.pipelines if join in p)
            source = monitor._byte if mode == "byte" else monitor._dne
            est = source[pipeline.pipeline_id].estimate_for(join)
        estimates.append((join.probe_rows_consumed, est))

    bus.subscribe(sample)
    ExecutionEngine(setup.plan, bus=bus, collect_rows=False).run()
    actual = join.tuples_emitted

    out = []
    for frac in fractions:
        target = frac * setup.catalog.row_count("cust_probe")
        est = next((e for t, e in estimates if t >= target), estimates[-1][1])
        out.append(est / actual)
    return out


def main() -> None:
    fractions = [0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0]
    print("ratio error (estimate / true join size) vs fraction of probe input\n")
    header = "mode  " + "".join(f"{f:>8.0%}" for f in fractions)
    print(header)
    print("-" * len(header))
    for mode in ("once", "dne", "byte"):
        ratios = run_mode(mode, fractions)
        print(f"{mode:<6}" + "".join(f"{r:>8.2f}" for r in ratios))
    print(
        "\nonce converges to 1.00 within a few percent of the probe input;"
        "\ndne/byte stay biased until the join output has actually appeared."
    )


if __name__ == "__main__":
    main()
