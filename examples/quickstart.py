"""Quickstart: run an instrumented query and watch its progress estimate.

Builds a small skewed TPC-H database, joins orders with lineitem under the
paper's online framework, and prints progress snapshots taken *while the
query runs* — including during the blocking build/probe phases where a
naive progress bar would stall.

Run:  python examples/quickstart.py
"""

from repro import (
    ExecutionEngine,
    HashJoin,
    ProgressMonitor,
    SeqScan,
    TickBus,
    explain,
    generate_tpch,
)


def main() -> None:
    catalog = generate_tpch(sf=0.01, seed=7, skew_z=1.0)
    join = HashJoin(
        SeqScan(catalog.table("orders")),
        SeqScan(catalog.table("lineitem")),
        "orders.orderkey",
        "lineitem.orderkey",
    )

    # The tick bus samples progress every 5000 units of executor work.
    bus = TickBus(interval=5000)
    monitor = ProgressMonitor(join, mode="once", catalog=catalog, bus=bus)

    print("plan:")
    print(explain(join))
    print("\nrunning with progress snapshots:")
    result = ExecutionEngine(join, bus=bus, collect_rows=False).run()

    for snap in monitor.snapshots[:: max(len(monitor.snapshots) // 10, 1)]:
        bar = "#" * int(snap.progress * 40)
        print(f"  [{bar:<40}] {snap.progress:6.1%}  (C={snap.work_done:,.0f})")

    print(f"\njoin produced {result.row_count:,} rows in {result.wall_time_s:.2f}s")
    final = monitor.snapshot()
    print(f"final estimated total work: {final.work_total_estimate:,.0f}")
    print(f"true total work:            {monitor.true_total():,.0f}")


if __name__ == "__main__":
    main()
