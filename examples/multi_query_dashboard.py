"""A workload dashboard: progress over several concurrent queries.

Runs three queries interleaved (round-robin, as a multi-backend DBMS
would time-slice them) and prints a periodically refreshed dashboard with
per-query and aggregate progress — the multi-query extension of the
single-query indicator (cf. Luo et al.'s follow-up work cited in the
paper's Section 2).

Run:  python examples/multi_query_dashboard.py
"""

import sys
import time

from repro.core.multi_query import InterleavedExecutor, MultiQueryProgressMonitor
from repro.datagen import generate_tpch
from repro.sql import compile_select

QUERIES = {
    "revenue-by-nation": """
        SELECT n.name, SUM(o.totalprice) AS revenue
        FROM orders o
        JOIN customer c ON o.custkey = c.custkey
        JOIN nation n ON c.nationkey = n.nationkey
        GROUP BY n.name
    """,
    "big-orders": """
        SELECT o.orderkey, o.totalprice
        FROM lineitem l
        JOIN orders o ON l.orderkey = o.orderkey
        WHERE o.totalprice > 400000
    """,
    "parts-per-supplier": """
        SELECT s.name, COUNT(*) AS parts
        FROM partsupp ps
        JOIN supplier s ON ps.suppkey = s.suppkey
        GROUP BY s.name
    """,
}


def main() -> None:
    catalog = generate_tpch(sf=0.01, seed=3, skew_z=1.0)
    monitor = MultiQueryProgressMonitor()
    for name, sql in QUERIES.items():
        compiled = compile_select(catalog, sql)
        monitor.add_query(name, compiled.plan, mode="once", tick_interval=500)

    last = [0.0]

    def dashboard(mon: MultiQueryProgressMonitor) -> None:
        now = time.perf_counter()
        if now - last[0] < 0.2:
            return
        last[0] = now
        snap = mon.snapshot()
        parts = [f"{name}: {p:6.1%}" for name, p in snap.per_query.items()]
        sys.stdout.write(
            "\r" + " | ".join(parts) + f"  ||  workload: {snap.progress:6.1%}   "
        )
        sys.stdout.flush()

    executor = InterleavedExecutor(monitor, quantum_rows=200, on_turn=dashboard)
    started = time.perf_counter()
    counts = executor.run()
    elapsed = time.perf_counter() - started

    final = monitor.snapshot()
    print("\n\nfinished:")
    for name, rows in counts.items():
        print(f"  {name:<22} {rows:>8,} rows")
    print(f"workload progress: {final.progress:.1%} in {elapsed:.2f}s "
          f"({executor.turns_taken} scheduler turns)")


if __name__ == "__main__":
    main()
