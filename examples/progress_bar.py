"""A live terminal progress bar driven by the online framework.

Runs a deliberately optimizer-hostile skewed join pipeline and redraws a
progress bar from inside the executor's tick bus — demonstrating how a
client (psql-style shell, admin dashboard) would consume the framework.
The bar also shows the current estimate of the total work, which visibly
locks in once the probe partitioning pass has seen enough of its sample.

Run:  python examples/progress_bar.py
"""

import sys
import time

from repro import ExecutionEngine, ProgressMonitor, TickBus
from repro.workloads import paper_binary_join


def main() -> None:
    setup = paper_binary_join(z=1.0, domain_size=25_000, num_rows=30_000)
    bus = TickBus(interval=4000)
    monitor = ProgressMonitor(setup.plan, mode="once", bus=bus)
    started = time.perf_counter()

    def redraw(_count: int) -> None:
        snap = monitor.snapshots[-1] if monitor.snapshots else monitor.snapshot()
        width = 42
        filled = int(snap.progress * width)
        bar = "█" * filled + "░" * (width - filled)
        elapsed = time.perf_counter() - started
        sys.stdout.write(
            f"\r|{bar}| {snap.progress:6.1%}  "
            f"T̂={snap.work_total_estimate:>12,.0f}  {elapsed:5.1f}s"
        )
        sys.stdout.flush()

    bus.subscribe(redraw)
    print(f"query: {setup.description}")
    result = ExecutionEngine(setup.plan, bus=bus, collect_rows=False).run()
    redraw(-1)
    print(f"\ndone: {result.row_count:,} rows in {result.wall_time_s:.2f}s")
    errors = monitor.ratio_errors()
    if errors:
        worst_late = max(abs(1 - r) for a, r in errors if a > 0.1)
        print(f"max |1 - ratio error| after 10% progress: {worst_late:.3f}")


if __name__ == "__main__":
    main()
