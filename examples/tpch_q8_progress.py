"""TPC-H Q8-style progress indication: the Figure 8 experiment, live.

Runs an 8-table join pipeline (7 chained hash joins over a skewed TPC-H
database, topped by an aggregation) twice — once with this paper's online
framework, once with the driver-node baseline — and prints estimated vs
actual progress side by side. The optimizer badly underestimates the
filtered skewed joins, so dne reports wildly optimistic progress until the
join output materialises; ONCE corrects all seven join cardinalities during
lineitem's probe pass and tracks true progress from then on.

Run:  python examples/tpch_q8_progress.py
"""

from repro import ExecutionEngine, ProgressMonitor, TickBus
from repro.workloads import tpch_q8_like


def run(mode: str) -> ProgressMonitor:
    setup = tpch_q8_like(sf=0.005, skew_z=2.0, sample_fraction=0.1)
    bus = TickBus(interval=2000)
    monitor = ProgressMonitor(setup.plan, mode=mode, bus=bus)
    ExecutionEngine(setup.plan, bus=bus, collect_rows=False).run()
    return monitor


def curve_at(monitor: ProgressMonitor, actual_points: list[float]) -> list[float]:
    curve = monitor.progress_curve()
    out = []
    for target in actual_points:
        est = next((e for a, e in curve if a >= target), curve[-1][1])
        out.append(est)
    return out


def main() -> None:
    actual_points = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    print("running with ONCE (this paper)...")
    once = run("once")
    print("running with dne (Chaudhuri et al. baseline)...\n")
    dne = run("dne")

    once_curve = curve_at(once, actual_points)
    dne_curve = curve_at(dne, actual_points)

    print(f"{'actual':>8} {'once':>8} {'dne':>8}")
    print("-" * 27)
    for target, o, d in zip(actual_points, once_curve, dne_curve):
        print(f"{target:>8.0%} {o:>8.1%} {d:>8.1%}")

    print(
        "\na perfect indicator reports estimated == actual;"
        "\ndne overestimates progress for most of the run (Figure 8)."
    )


if __name__ == "__main__":
    main()
