"""Group-count estimation: GEE vs MLE vs the γ² hybrid chooser.

Feeds Zipfian value streams of varying skew to the three estimators and
reports when each gets within 10% of the true number of groups — the
Table 1 experiment of the paper at example scale. High skew favours GEE,
low skew favours MLE; the hybrid picks by the squared coefficient of
variation of the observed frequencies (threshold τ = 10).

Run:  python examples/groupby_distinct_estimation.py
"""

from repro import GEEEstimator, GroupFrequencyState, HybridGroupCountEstimator, MLEEstimator
from repro.datagen import ZipfDistribution


def rows_to_within_10pct(values, true_count: int, estimate_fn) -> int | None:
    """First t at which the running estimate is within 10% of truth."""
    state_t = 0
    for t, value in enumerate(values, start=1):
        estimate_fn.observe(value)
        state_t = t
        if t % 250 == 0:
            est = estimate_fn.estimate()
            if abs(est - true_count) <= 0.1 * true_count:
                return t
    est = estimate_fn.estimate()
    if abs(est - true_count) <= 0.1 * true_count:
        return state_t
    return None


class _Single:
    """Adapter running one base estimator with shared state semantics."""

    def __init__(self, cls, total: int):
        self.state = GroupFrequencyState()
        self.base = cls(self.state)
        self.total = total

    def observe(self, value) -> None:
        self.state.observe(value)

    def estimate(self) -> float:
        return self.base.estimate(self.total)


def main() -> None:
    total = 50_000
    print(f"{'skew':>5} {'#values':>8} {'true':>7} {'γ²@10%':>8}"
          f" {'GEE':>8} {'MLE':>8} {'hybrid':>8}  (rows until within 10%)")
    for z, domain in [(0.0, 1_000), (0.0, 40_000), (1.0, 1_000),
                      (1.0, 40_000), (2.0, 1_000), (2.0, 40_000)]:
        dist = ZipfDistribution(domain, z, seed=11)
        values = [int(v) for v in dist.sample(total)]
        true_count = len(set(values))

        gamma_probe = GroupFrequencyState()
        for v in values[: total // 10]:
            gamma_probe.observe(v)

        results = {}
        for name, est in [
            ("GEE", _Single(GEEEstimator, total)),
            ("MLE", _Single(MLEEstimator, total)),
            ("hybrid", HybridGroupCountEstimator(total=total)),
        ]:
            hit = rows_to_within_10pct(iter(values), true_count, est)
            results[name] = f"{hit:,}" if hit else ">all"

        print(
            f"{z:>5.1f} {domain:>8,} {true_count:>7,} {gamma_probe.gamma_squared:>8.2f}"
            f" {results['GEE']:>8} {results['MLE']:>8} {results['hybrid']:>8}"
        )
    print("\nGEE wins under high skew (γ² above τ=10); MLE wins under low"
          "\nskew with moderate group counts; the hybrid tracks the winner.")


if __name__ == "__main__":
    main()
