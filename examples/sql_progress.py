"""SQL with a progress indicator, end to end.

Shows the full user-facing surface: generate a skewed TPC-H database, run a
multi-join aggregation in plain SQL under the paper's online framework, and
inspect both the answer and the quality of the progress estimates.

Run:  python examples/sql_progress.py
"""

from repro.datagen import generate_tpch
from repro.sql import run_query

QUERY = """
    SELECT n.name, COUNT(*) AS orders, SUM(o.totalprice) AS revenue
    FROM orders o
    JOIN customer c ON o.custkey = c.custkey
    JOIN nation n ON c.nationkey = n.nationkey
    WHERE o.totalprice > 10000
    GROUP BY n.name
    ORDER BY revenue DESC
    LIMIT 5
"""


def main() -> None:
    catalog = generate_tpch(sf=0.01, seed=7, skew_z=1.5)

    print("query:")
    print(QUERY)
    result = run_query(catalog, QUERY, progress="once", tick_interval=1000)

    print(f"{'nation':<12} {'orders':>8} {'revenue':>16}")
    for name, orders, revenue in result.rows:
        print(f"{name:<12} {orders:>8,} {revenue:>16,.2f}")

    print(f"\n{result.row_count} rows in {result.wall_time_s:.2f}s; "
          f"{len(result.snapshots)} progress snapshots recorded")

    monitor = result.monitor
    errors = monitor.ratio_errors()
    if errors:
        worst_late = max(abs(1 - r) for a, r in errors if a > 0.2)
        print(f"max |1 - ratio error| after 20% progress: {worst_late:.3f}")
        print("(ratio error 1.0 == the indicator was exactly right)")


if __name__ == "__main__":
    main()
