"""The TCP progress service, end to end — and a smoke test for CI.

Starts ``python -m repro serve`` as a subprocess on a free port, then
drives it through the client library: submits three queries, watches
each from two concurrent subscribers (asserting every stream is monotone
non-decreasing), cancels one mid-flight, fetches the finished results,
and shuts the server down cleanly.

Exit code 0 means every assertion held; CI runs this script as the
server smoke job.

Run:  PYTHONPATH=src python examples/progress_server.py
"""

import os
import socket
import subprocess
import sys
import threading
import time

from repro.server import ProgressClient, ServiceError

QUERIES = {
    "join-customers": (
        "SELECT c.name, o.totalprice FROM customer c"
        " JOIN orders o ON c.custkey = o.custkey"
    ),
    "group-orders": "SELECT o.custkey, COUNT(*) AS n FROM orders o GROUP BY o.custkey",
    # Self-join fan-out: enough work to still be running when we cancel it.
    "victim": (
        "SELECT a.orderkey, b.orderkey FROM orders a"
        " JOIN orders b ON a.custkey = b.custkey"
    ),
}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_server(client: ProgressClient, deadline_s: float = 60.0) -> None:
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            if client.ping():
                return
        except (OSError, ServiceError):
            pass
        if time.monotonic() >= deadline:
            raise RuntimeError("server did not come up in time")
        time.sleep(0.2)


def watch_session(client: ProgressClient, session_id: str, failures: list) -> None:
    last = -1.0
    events = 0
    for event in client.watch(session_id):
        if event["event"] != "snapshot":
            continue
        events += 1
        progress = event["session"]["progress"]
        if progress < last:
            failures.append(
                f"{session_id}: progress regressed {last:.4f} -> {progress:.4f}"
            )
        last = progress
    if events == 0:
        failures.append(f"{session_id}: watcher saw no snapshots")


def main() -> int:
    port = free_port()
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "--sf", "0.002", "serve",
            "--port", str(port), "--workers", "2", "--policy", "serw",
            "--quantum", "64",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    client = ProgressClient("127.0.0.1", port, timeout=30.0)
    failures: list[str] = []
    try:
        wait_for_server(client)
        print(f"server up on port {port}")

        sessions = {
            name: client.submit(sql, name=name, quantum_rows=32)["session_id"]
            for name, sql in QUERIES.items()
        }
        print(f"submitted {len(sessions)} queries: {sorted(sessions)}")

        watchers = []
        for sid in sessions.values():
            for _ in range(2):
                t = threading.Thread(
                    target=watch_session, args=(client, sid, failures), daemon=True
                )
                t.start()
                watchers.append(t)

        client.cancel(sessions["victim"], reason="demo cancel")
        finals = {
            name: client.wait(sid, timeout=120.0) for name, sid in sessions.items()
        }
        for t in watchers:
            t.join(timeout=30.0)
            if t.is_alive():
                failures.append("a watcher thread never terminated")

        for name in ("join-customers", "group-orders"):
            snap = finals[name]
            print(f"  {name:16s} {snap['state']:9s} progress={snap['progress']:.3f} "
                  f"rows={snap['row_count']}")
            if snap["state"] != "finished" or snap["progress"] != 1.0:
                failures.append(f"{name}: expected finished/1.0, got {snap}")
            fetched = client.fetch(sessions[name])
            if fetched["row_count"] != snap["row_count"]:
                failures.append(f"{name}: fetch row_count mismatch")
        victim = finals["victim"]
        print(f"  {'victim':16s} {victim['state']:9s} ({victim['error']})")
        if victim["state"] != "cancelled":
            failures.append(f"victim: expected cancelled, got {victim['state']}")

        workload = client.list_sessions()["workload"]
        print(f"workload: progress={workload['progress']:.3f} states={workload['states']}")
        if workload["states"].get("cancelled") != 1:
            failures.append("workload view does not show the cancelled session")

        client.shutdown_server()
        server.wait(timeout=30.0)
        if server.returncode != 0:
            failures.append(f"server exited with {server.returncode}")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()

    if failures:
        print("FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("OK: monotone streams, clean cancel, clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
