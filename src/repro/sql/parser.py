"""Recursive-descent parser for the SELECT subset.

Grammar (EBNF-ish)::

    select     := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                  [GROUP BY columns] [HAVING expr]
                  [ORDER BY order_items] [LIMIT number] [;]
    items      := '*' | item (',' item)*
    item       := agg_func '(' ('*' | column) ')' [AS ident]
                | column [AS ident]
    table_ref  := ident [AS? ident]
    join       := [INNER | LEFT [OUTER] | SEMI | ANTI] JOIN table_ref
                  ON column '=' column
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | primary
    primary    := '(' expr ')' | predicate
    predicate  := operand ( cmp_op operand
                          | IN '(' literal (',' literal)* ')'
                          | BETWEEN operand AND operand
                          | IS [NOT] NULL )
    operand    := column | literal
    column     := ident ['.' ident]

WHERE expressions compile directly to
:class:`repro.executor.expressions.Expression` trees.
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.executor.expressions import (
    And,
    Between,
    Col,
    Comparison,
    Const,
    Expression,
    InList,
    IsNull,
    Not,
    Or,
)
from repro.sql.ast import (
    AggregateItem,
    ColumnItem,
    JoinClause,
    OrderItem,
    SelectStatement,
    StarItem,
    TableRef,
)
from repro.sql.lexer import Token, tokenize

__all__ = ["SqlParseError", "parse_select"]

_AGG_FUNCS = ("COUNT", "SUM", "MIN", "MAX", "AVG")
_CMP_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class SqlParseError(ReproError):
    """The statement does not match the supported SELECT subset."""


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def error(self, message: str) -> SqlParseError:
        tok = self.current
        where = f"line {tok.line}, column {tok.column}"
        got = tok.value or tok.kind
        return SqlParseError(f"{message} (got {got!r} at {where})")

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.current.matches(kind, value):
            tok = self.current
            self.pos += 1
            return tok
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            want = value or kind
            raise self.error(f"expected {want!r}")
        return tok

    def accept_keyword(self, *words: str) -> bool:
        saved = self.pos
        for word in words:
            if self.accept("KEYWORD", word) is None:
                self.pos = saved
                return False
        return True

    # -- grammar ---------------------------------------------------------------------

    def parse(self) -> SelectStatement:
        self.expect("KEYWORD", "SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = self.parse_items()
        self.expect("KEYWORD", "FROM")
        base = self.parse_table_ref()
        joins = []
        while True:
            join = self.try_parse_join()
            if join is None:
                break
            joins.append(join)
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: list[str] = []
        if self.accept_keyword("GROUP", "BY"):
            group_by = self.parse_column_list()
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER", "BY"):
            order_by = self.parse_order_items()
        limit = None
        if self.accept_keyword("LIMIT"):
            tok = self.expect("NUMBER")
            limit = int(float(tok.value))
        self.accept("SEMI")
        if not self.current.matches("EOF"):
            raise self.error("unexpected trailing input")
        return SelectStatement(
            items=items,
            distinct=distinct,
            base_table=base,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def parse_items(self) -> list:
        if self.accept("OP", "*"):
            return [StarItem()]
        items = [self.parse_item()]
        while self.accept("COMMA"):
            items.append(self.parse_item())
        return items

    def parse_item(self):
        tok = self.current
        if tok.kind == "KEYWORD" and tok.value in _AGG_FUNCS:
            self.pos += 1
            self.expect("LPAREN")
            func = tok.value.lower()
            if self.accept("OP", "*"):
                if tok.value != "COUNT":
                    raise self.error(f"{tok.value}(*) is not valid")
                column = None
            else:
                if self.accept_keyword("DISTINCT"):
                    if tok.value != "COUNT":
                        raise self.error("DISTINCT aggregates support COUNT only")
                    func = "count_distinct"
                column = self.parse_column()
            self.expect("RPAREN")
            alias = self.parse_optional_alias()
            return AggregateItem(func, column, alias)
        column = self.parse_column()
        alias = self.parse_optional_alias()
        return ColumnItem(column, alias)

    def parse_optional_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect("IDENT").value
        tok = self.accept("IDENT")
        return tok.value if tok else None

    def parse_table_ref(self) -> TableRef:
        name = self.expect("IDENT").value
        alias = self.parse_optional_alias()
        return TableRef(name, alias)

    def try_parse_join(self) -> JoinClause | None:
        kind = "inner"
        saved = self.pos
        if self.accept_keyword("INNER"):
            kind = "inner"
        elif self.accept_keyword("LEFT"):
            self.accept_keyword("OUTER")
            kind = "outer"
        elif self.accept_keyword("SEMI"):
            kind = "semi"
        elif self.accept_keyword("ANTI"):
            kind = "anti"
        if not self.accept_keyword("JOIN"):
            self.pos = saved
            return None
        table = self.parse_table_ref()
        self.expect("KEYWORD", "ON")
        left = self.parse_column()
        self.expect("OP", "=")
        right = self.parse_column()
        return JoinClause(table, left, right, kind)

    def parse_column_list(self) -> list[str]:
        columns = [self.parse_column()]
        while self.accept("COMMA"):
            columns.append(self.parse_column())
        return columns

    def parse_order_items(self) -> list[OrderItem]:
        items = []
        while True:
            column = self.parse_column()
            descending = False
            if self.accept_keyword("DESC"):
                descending = True
            else:
                self.accept_keyword("ASC")
            items.append(OrderItem(column, descending))
            if not self.accept("COMMA"):
                return items

    def parse_column(self) -> str:
        first = self.expect("IDENT").value
        if self.accept("DOT"):
            second = self.expect("IDENT").value
            return f"{first}.{second}"
        return first

    # -- WHERE expressions ---------------------------------------------------------------

    def parse_expr(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        expr = self.parse_and()
        while self.accept_keyword("OR"):
            expr = Or(expr, self.parse_and())
        return expr

    def parse_and(self) -> Expression:
        expr = self.parse_not()
        while self.accept_keyword("AND"):
            expr = And(expr, self.parse_not())
        return expr

    def parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return Not(self.parse_not())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        if self.accept("LPAREN"):
            expr = self.parse_expr()
            self.expect("RPAREN")
            return expr
        left = self.parse_operand()
        if self.accept_keyword("IN"):
            self.expect("LPAREN")
            values = [self.parse_literal_value()]
            while self.accept("COMMA"):
                values.append(self.parse_literal_value())
            self.expect("RPAREN")
            return InList(left, tuple(values))
        if self.accept_keyword("BETWEEN"):
            low = self.parse_operand()
            self.expect("KEYWORD", "AND")
            high = self.parse_operand()
            return Between(left, low, high)
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect("KEYWORD", "NULL")
            return IsNull(left, negated=negated)
        op_tok = self.expect("OP")
        if op_tok.value not in _CMP_OPS:
            raise self.error("expected a comparison operator")
        right = self.parse_operand()
        return Comparison(op_tok.value, left, right)

    def parse_literal_value(self):
        operand = self.parse_operand()
        if not isinstance(operand, Const):
            raise self.error("IN lists accept literal values only")
        return operand.value

    def parse_operand(self) -> Expression:
        tok = self.current
        if tok.kind == "NUMBER":
            self.pos += 1
            text = tok.value
            return Const(float(text) if "." in text else int(text))
        if tok.kind == "STRING":
            self.pos += 1
            return Const(tok.value)
        if tok.matches("KEYWORD", "NULL"):
            self.pos += 1
            return Const(None)
        if tok.kind == "OP" and tok.value == "-":
            self.pos += 1
            num = self.expect("NUMBER")
            text = num.value
            return Const(-(float(text) if "." in text else int(text)))
        return Col(self.parse_column())


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return _Parser(tokenize(sql)).parse()
