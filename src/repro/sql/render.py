"""Render ASTs back to SQL text.

The inverse of :func:`repro.sql.parser.parse_select` for the supported
subset: ``parse_select(render_select(stmt))`` reproduces ``stmt``. Used by
EXPLAIN-style tooling and the parser round-trip property tests.
"""

from __future__ import annotations

from repro.executor.expressions import (
    And,
    Between,
    BinaryOp,
    Col,
    Comparison,
    Const,
    Expression,
    InList,
    IsNull,
    Not,
    Or,
)
from repro.sql.ast import (
    AggregateItem,
    ColumnItem,
    JoinClause,
    SelectStatement,
    StarItem,
)

__all__ = ["render_expression", "render_select"]


def render_expression(expr: Expression) -> str:
    """SQL text for a WHERE/HAVING expression tree."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Const):
        value = expr.value
        if value is None:
            return "NULL"
        if isinstance(value, str):
            return f"'{value}'"
        return repr(value)
    if isinstance(expr, Comparison):
        return (
            f"({render_expression(expr.left)} {expr.op} "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, And):
        return f"({render_expression(expr.left)} AND {render_expression(expr.right)})"
    if isinstance(expr, Or):
        return f"({render_expression(expr.left)} OR {render_expression(expr.right)})"
    if isinstance(expr, Not):
        return f"(NOT {render_expression(expr.child)})"
    if isinstance(expr, InList):
        rendered = ", ".join(render_expression(Const(v)) for v in expr.values)
        return f"({render_expression(expr.child)} IN ({rendered}))"
    if isinstance(expr, Between):
        return (
            f"({render_expression(expr.child)} BETWEEN "
            f"{render_expression(expr.low)} AND {render_expression(expr.high)})"
        )
    if isinstance(expr, IsNull):
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({render_expression(expr.child)} {middle})"
    if isinstance(expr, BinaryOp):
        return (
            f"({render_expression(expr.left)} {expr.op} "
            f"{render_expression(expr.right)})"
        )
    raise TypeError(f"cannot render expression node {type(expr).__name__}")


def _render_item(item) -> str:
    if isinstance(item, StarItem):
        return "*"
    if isinstance(item, AggregateItem):
        if item.func == "count_distinct":
            text = f"COUNT(DISTINCT {item.column})"
        else:
            target = "*" if item.column is None else item.column
            text = f"{item.func.upper()}({target})"
        return f"{text} AS {item.alias}" if item.alias else text
    assert isinstance(item, ColumnItem)
    return f"{item.column} AS {item.alias}" if item.alias else item.column


def _render_join(join: JoinClause) -> str:
    prefix = {
        "inner": "JOIN",
        "outer": "LEFT OUTER JOIN",
        "semi": "SEMI JOIN",
        "anti": "ANTI JOIN",
    }[join.kind]
    table = join.table.name
    if join.table.alias:
        table += f" AS {join.table.alias}"
    return f"{prefix} {table} ON {join.left_column} = {join.right_column}"


def render_select(stmt: SelectStatement) -> str:
    """SQL text for a parsed/constructed SELECT statement."""
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_item(i) for i in stmt.items))
    table = stmt.base_table.name
    if stmt.base_table.alias:
        table += f" AS {stmt.base_table.alias}"
    parts.append(f"FROM {table}")
    for join in stmt.joins:
        parts.append(_render_join(join))
    if stmt.where is not None:
        parts.append(f"WHERE {render_expression(stmt.where)}")
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(stmt.group_by))
    if stmt.having is not None:
        parts.append(f"HAVING {render_expression(stmt.having)}")
    if stmt.order_by:
        rendered = ", ".join(
            f"{o.column} DESC" if o.descending else f"{o.column} ASC"
            for o in stmt.order_by
        )
        parts.append("ORDER BY " + rendered)
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    return " ".join(parts)
