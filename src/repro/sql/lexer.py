"""SQL tokenizer.

Produces a flat token stream: keywords (case-insensitive), identifiers
(optionally dotted handled at parse level), numeric and string literals,
operators, and punctuation. Line/column positions are tracked for error
messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError

__all__ = ["SqlLexError", "Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT", "AS",
        "JOIN", "INNER", "LEFT", "OUTER", "SEMI", "ANTI", "ON", "AND", "OR",
        "DISTINCT", "HAVING", "IN", "IS", "BETWEEN",
        "NOT", "ASC", "DESC", "COUNT", "SUM", "MIN", "MAX", "AVG", "NULL",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCTUATION = {"(": "LPAREN", ")": "RPAREN", ",": "COMMA", ".": "DOT", ";": "SEMI"}


class SqlLexError(ReproError):
    """The input contains a character sequence outside the SQL subset."""


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``KEYWORD``, ``IDENT``, ``NUMBER``, ``STRING``,
    ``OP``, ``LPAREN``, ``RPAREN``, ``COMMA``, ``DOT``, ``SEMI``, ``EOF``.
    """

    kind: str
    value: str
    line: int
    column: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:
        return f"{self.kind}({self.value!r})@{self.line}:{self.column}"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; the result always ends with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line, col = 1, 1
    n = len(sql)

    def advance(text: str) -> None:
        nonlocal line, col
        for ch in text:
            if ch == "\n":
                line += 1
                col = 1
            else:
                col += 1

    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            advance(ch)
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            end = sql.find("\n", i)
            end = n if end == -1 else end
            advance(sql[i:end])
            i = end
            continue
        start_line, start_col = line, col
        if ch == "'":
            end = i + 1
            while end < n and sql[end] != "'":
                end += 1
            if end >= n:
                raise SqlLexError(f"unterminated string literal at {start_line}:{start_col}")
            text = sql[i + 1 : end]
            tokens.append(Token("STRING", text, start_line, start_col))
            advance(sql[i : end + 1])
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            end = i
            seen_dot = False
            while end < n and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    # A dot not followed by a digit is punctuation (alias.column).
                    if end + 1 >= n or not sql[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            text = sql[i:end]
            tokens.append(Token("NUMBER", text, start_line, start_col))
            advance(text)
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < n and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            text = sql[i:end]
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start_line, start_col))
            else:
                tokens.append(Token("IDENT", text, start_line, start_col))
            advance(text)
            i = end
            continue
        matched_op = next((op for op in _OPERATORS if sql.startswith(op, i)), None)
        if matched_op is not None:
            tokens.append(Token("OP", matched_op, start_line, start_col))
            advance(matched_op)
            i += len(matched_op)
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, start_line, start_col))
            advance(ch)
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r} at {start_line}:{start_col}")

    tokens.append(Token("EOF", "", line, col))
    return tokens
