"""Compile parsed SELECT statements to instrumented physical plans.

The compiler applies the textbook physical choices this library studies:

* FROM + JOIN chains become left-deep *hash-join pipelines* — each joined
  table is the build side, the accumulated pipeline the probe side — which
  is exactly the plan shape Algorithm 1 estimates in one pass;
* WHERE conjuncts touching a single relation are pushed below the joins
  onto that relation's scan; the remainder is applied above the last join;
* GROUP BY / aggregates become a hash aggregation, ORDER BY a sort,
  LIMIT a limit;
* scans optionally read a block-level random sample first, enabling the
  estimation framework's confidence guarantees.

``run_query`` wires a :class:`ProgressMonitor` onto the compiled plan and
executes it, so a SQL string with a live progress indicator is one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import PlanError, SchemaError
from repro.executor.engine import ExecutionEngine, TickBus
from repro.executor.expressions import And, Col, Expression
from repro.executor.operators import (
    AggregateSpec,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    Project,
    SampleScan,
    SeqScan,
    Sort,
)
from repro.executor.operators.base import Operator
from repro.optimizer.cardinality import annotate_plan
from repro.sql.ast import (
    AggregateItem,
    ColumnItem,
    SelectStatement,
    StarItem,
    TableRef,
)
from repro.sql.parser import parse_select
from repro.storage.catalog import Catalog

__all__ = ["CompiledQuery", "QueryResult", "compile_select", "run_query"]


@dataclass
class CompiledQuery:
    """A parsed and compiled query, ready to run.

    ``diagnostics`` carries the static analyzer's report when compilation
    ran with ``analyze="advisory"`` (strict mode raises instead; ``"off"``
    leaves it None).
    """

    statement: SelectStatement
    plan: Operator
    catalog: Catalog
    diagnostics: object | None = None

    def explain(self) -> str:
        from repro.executor.plan import explain

        return explain(self.plan, counts=True)


@dataclass
class QueryResult:
    """Rows plus execution/progress context."""

    rows: list[tuple] | None
    row_count: int
    wall_time_s: float
    columns: list[str]
    monitor: object | None = None
    snapshots: list = field(default_factory=list)


def _split_conjuncts(expr: Expression | None) -> list[Expression]:
    if expr is None:
        return []
    if isinstance(expr, And):
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _owner_of(conjunct: Expression, schemas: dict[str, object]) -> str | None:
    """The single relation all referenced columns of ``conjunct`` belong
    to, or None (multi-relation / unresolvable -> apply above the joins)."""
    owners: set[str] = set()
    for name in conjunct.referenced_columns():
        found = [rel for rel, schema in schemas.items() if schema.has_column(name)]
        if len(found) != 1:
            return None
        owners.add(found[0])
    if len(owners) == 1:
        return owners.pop()
    return None


def compile_select(
    catalog: Catalog,
    statement: SelectStatement | str,
    sample_fraction: float = 0.0,
    seed: int = 0,
    num_partitions: int = 8,
    memory_partitions: int = 1,
    annotate: bool = True,
    analyze: str = "strict",
    observed=None,
) -> CompiledQuery:
    """Compile a SELECT (string or AST) against ``catalog``.

    ``analyze`` gates the static plan analyzer: ``"strict"`` (default)
    raises :class:`~repro.common.errors.AnalysisError` on any error
    diagnostic, ``"advisory"`` attaches the report to the returned
    :class:`CompiledQuery`, ``"off"`` skips the pass.

    ``observed`` is an optional
    :class:`~repro.storage.statistics.ObservedCardinalities` overlay
    (the robust subsystem's statistics feedback): subtrees the system
    has executed before are annotated with their *observed* output
    cardinality instead of the textbook model's estimate.
    """
    if analyze not in ("strict", "advisory", "off"):
        raise ValueError(f"analyze must be 'strict', 'advisory' or 'off', got {analyze!r}")
    if isinstance(statement, str):
        statement = parse_select(statement)

    # Resolve relations (aliases become schema qualifiers).
    def resolve(ref: TableRef):
        table = catalog.table(ref.name)
        if ref.alias and ref.alias != table.name:
            table = table.aliased(ref.alias)
        return table

    relations = [resolve(statement.base_table)]
    for join in statement.joins:
        relations.append(resolve(join.table))
    names = [t.name for t in relations]
    if len(set(names)) != len(names):
        raise PlanError(
            f"duplicate relation names in FROM/JOIN: {names}; use aliases"
        )
    schemas = {t.name: t.schema for t in relations}

    # Partition WHERE into per-relation pushdowns and residual conjuncts.
    pushed: dict[str, list[Expression]] = {name: [] for name in names}
    residual: list[Expression] = []
    for conjunct in _split_conjuncts(statement.where):
        owner = _owner_of(conjunct, schemas)
        if owner is not None:
            pushed[owner].append(conjunct)
        else:
            residual.append(conjunct)

    def scan(table) -> Operator:
        op: Operator = (
            SampleScan(table, sample_fraction, seed)
            if sample_fraction > 0
            else SeqScan(table)
        )
        for conjunct in pushed[table.name]:
            op = Filter(op, conjunct)
        return op

    # Left-deep hash-join pipeline: accumulated plan is always the probe.
    plan = scan(relations[0])
    for join, table in zip(statement.joins, relations[1:]):
        left_in_pipeline = plan.output_schema.has_column(join.left_column)
        probe_key, build_key = (
            (join.left_column, join.right_column)
            if left_in_pipeline
            else (join.right_column, join.left_column)
        )
        if not plan.output_schema.has_column(probe_key):
            raise PlanError(
                f"neither side of ON {join.left_column} = {join.right_column} "
                "resolves in the pipeline built so far"
            )
        if not table.schema.has_column(build_key):
            raise PlanError(
                f"column {build_key!r} not found in joined table {table.name!r}"
            )
        plan = HashJoin(
            scan(table),
            plan,
            build_key,
            probe_key,
            num_partitions=num_partitions,
            memory_partitions=memory_partitions,
            join_type=join.kind,
        )

    for conjunct in residual:
        plan = Filter(plan, conjunct)

    # Aggregation. GROUP BY coverage is schema-aware: each SELECT column and
    # group entry is resolved to a tuple position in the pre-aggregation
    # schema, so t1.x and t2.x never conflate and bare names still match
    # their qualified spellings.
    items = statement.items
    if statement.has_aggregates or statement.group_by:
        pre_schema = plan.output_schema
        group_indexes: set[int] = set()
        for group in statement.group_by:
            try:
                group_indexes.add(pre_schema.index_of(group))
            except SchemaError as exc:
                raise PlanError(f"GROUP BY: {exc}") from None
        for item in items:
            if isinstance(item, StarItem):
                raise PlanError("SELECT * cannot be combined with aggregation")
            if isinstance(item, ColumnItem):
                try:
                    item_index = pre_schema.index_of(item.column)
                except SchemaError as exc:
                    raise PlanError(f"SELECT: {exc}") from None
                if item_index not in group_indexes:
                    raise PlanError(
                        f"column {item.column!r} must appear in GROUP BY"
                    )
        specs = [
            AggregateSpec(i.func, i.column, i.output_name)
            for i in items
            if isinstance(i, AggregateItem)
        ]
        plan = HashAggregate(plan, tuple(statement.group_by), tuple(specs))
        if statement.having is not None:
            plan = Filter(plan, statement.having)
    elif statement.having is not None:
        raise PlanError("HAVING requires GROUP BY or aggregates")

    # Projection to the SELECT list's order and names.
    if not any(isinstance(i, StarItem) for i in items):
        columns: list = []
        for item in items:
            if isinstance(item, AggregateItem):
                columns.append(item.output_name)
            else:
                assert isinstance(item, ColumnItem)
                if item.alias:
                    columns.append((item.alias, Col(item.column)))
                else:
                    columns.append(item.column)
        plan = Project(plan, columns)

    # DISTINCT over the projected rows (duplicate elimination is itself a
    # distinct-value estimation target; the manager attaches GEE/MLE here).
    if statement.distinct:
        plan = Distinct(plan)

    # ORDER BY / LIMIT.
    if statement.order_by:
        plan = Sort(
            plan,
            [o.column for o in statement.order_by],
            descending=statement.order_by[0].descending,
        )
    if statement.limit is not None:
        plan = Limit(plan, statement.limit)

    if annotate:
        annotate_plan(plan, catalog, observed=observed)
    diagnostics = None
    if analyze != "off":
        from repro.executor.plan import check_plan

        diagnostics = check_plan(plan, mode=analyze)
    return CompiledQuery(
        statement=statement, plan=plan, catalog=catalog, diagnostics=diagnostics
    )


def run_query(
    catalog: Catalog,
    sql: str,
    progress: str | None = None,
    sample_fraction: float = 0.0,
    collect_rows: bool = True,
    tick_interval: int = 1000,
    **compile_kwargs,
) -> QueryResult:
    """Parse, compile, (optionally monitor,) and execute ``sql``.

    ``progress`` selects an estimator mode ("once", "dne", "byte") to attach
    a :class:`~repro.core.progress.ProgressMonitor`; its snapshots are
    returned on the result.
    """
    compiled = compile_select(
        catalog, sql, sample_fraction=sample_fraction, **compile_kwargs
    )
    bus = None
    monitor = None
    if progress is not None:
        from repro.core.progress import ProgressMonitor

        bus = TickBus(interval=tick_interval)
        monitor = ProgressMonitor(compiled.plan, mode=progress, bus=bus)
    engine = ExecutionEngine(compiled.plan, bus=bus, collect_rows=collect_rows)
    result = engine.run()
    return QueryResult(
        rows=result.rows,
        row_count=result.row_count,
        wall_time_s=result.wall_time_s,
        columns=compiled.plan.output_schema.names(),
        monitor=monitor,
        # Post-run, single-threaded: engine.run() returned, so no thread
        # can still be appending snapshots.
        snapshots=monitor.snapshots if monitor else [],  # noqa: X001
    )
