"""A small SQL front-end over the executor.

The paper's system sits inside a SQL engine; this package provides the
missing user-facing surface for the reproduction: a lexer, a recursive
descent parser for a practical SELECT subset, and a compiler from the AST
to instrumented physical plans — so a progress-indicated query is one call:

    from repro.sql import run_query
    result = run_query(catalog, \"\"\"
        SELECT n.name, COUNT(*) AS orders, SUM(o.totalprice) AS revenue
        FROM orders o
        JOIN customer c ON o.custkey = c.custkey
        JOIN nation n ON c.nationkey = n.nationkey
        WHERE o.totalprice > 1000
        GROUP BY n.name
        ORDER BY revenue DESC
        LIMIT 10
    \"\"\", progress="once")
    print(result.rows, result.monitor.snapshots[-1].progress)

Supported grammar (see :mod:`repro.sql.parser` for the exact rules):
``SELECT`` projections (columns, ``*``, aggregates with aliases),
``FROM`` with aliases, ``[INNER|LEFT [OUTER]|SEMI|ANTI] JOIN .. ON`` equi
conditions, ``WHERE`` boolean expressions over comparisons,
``GROUP BY``, ``ORDER BY .. [ASC|DESC]``, ``LIMIT``.
"""

from repro.sql.ast import (
    AggregateItem,
    ColumnItem,
    JoinClause,
    OrderItem,
    SelectStatement,
    StarItem,
    TableRef,
)
from repro.sql.compiler import CompiledQuery, compile_select, run_query
from repro.sql.lexer import SqlLexError, Token, tokenize
from repro.sql.parser import SqlParseError, parse_select
from repro.sql.render import render_expression, render_select

__all__ = [
    "AggregateItem",
    "ColumnItem",
    "CompiledQuery",
    "JoinClause",
    "OrderItem",
    "SelectStatement",
    "SqlLexError",
    "SqlParseError",
    "StarItem",
    "TableRef",
    "Token",
    "compile_select",
    "parse_select",
    "render_expression",
    "render_select",
    "run_query",
    "tokenize",
]
