"""AST node types for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.executor.expressions import Expression

__all__ = [
    "AggregateItem",
    "ColumnItem",
    "JoinClause",
    "OrderItem",
    "SelectStatement",
    "StarItem",
    "TableRef",
]


@dataclass(frozen=True)
class TableRef:
    """``name [AS alias]`` in FROM/JOIN."""

    name: str
    alias: str | None = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    """``[kind] JOIN table ON left = right`` (equi conditions only)."""

    table: TableRef
    left_column: str
    right_column: str
    kind: str = "inner"  # inner | outer | semi | anti


@dataclass(frozen=True)
class ColumnItem:
    """A plain column in the SELECT list."""

    column: str
    alias: str | None = None

    @property
    def output_name(self) -> str:
        return self.alias or self.column.split(".")[-1]


@dataclass(frozen=True)
class StarItem:
    """``SELECT *``."""


@dataclass(frozen=True)
class AggregateItem:
    """``func(column) [AS alias]`` or ``COUNT(*)``."""

    func: str
    column: str | None
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        target = self.column.replace(".", "_") if self.column else "star"
        return f"{self.func}_{target}"


@dataclass(frozen=True)
class OrderItem:
    """``ORDER BY column [ASC|DESC]``."""

    column: str
    descending: bool = False


@dataclass
class SelectStatement:
    """One parsed SELECT."""

    items: list  # ColumnItem | AggregateItem | StarItem
    distinct: bool = False
    base_table: TableRef = TableRef("")
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[str] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(i, AggregateItem) for i in self.items)
