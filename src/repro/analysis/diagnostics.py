"""Shared diagnostic framework for the static-analysis passes.

Both analysis passes — the plan semantic analyzer (:mod:`repro.analysis.typecheck`,
:mod:`repro.analysis.plancheck`) and the codebase invariant lint
(:mod:`repro.analysis.lint`) — report through one :class:`Diagnostic` shape:
a stable code, a severity, a human message, a location (plan node or
file:line) and an optional fix hint. Codes are registered in :data:`CODES`
with their default severity so severities stay consistent across passes and
the documentation table in ``docs/ANALYSIS.md`` has a single source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import AnalysisError

__all__ = ["CODES", "Diagnostic", "DiagnosticReport", "Severity"]


class Severity(enum.IntEnum):
    """Diagnostic severity; comparisons follow escalation order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


#: Registry of every diagnostic code: default severity + one-line description.
#: P* = plan structure, T* = expression typing, J* = join keys,
#: A* = aggregation, I* = pipeline invariants, C* = estimator classification,
#: X* = lock discipline (repro.analysis.concurrency).
CODES: dict[str, tuple[Severity, str]] = {
    "P001": (Severity.ERROR, "operator appears more than once in the plan tree"),
    "P002": (Severity.ERROR, "blocking child index out of range"),
    "P003": (Severity.ERROR, "driver child index out of range"),
    "P004": (Severity.ERROR, "operator state is not runnable (already closed or exhausted)"),
    "P005": (Severity.ERROR, "driver child is also declared blocking"),
    "T001": (Severity.ERROR, "unknown column reference"),
    "T002": (Severity.ERROR, "ambiguous column reference"),
    "T003": (Severity.ERROR, "comparison between incompatible types"),
    "T004": (Severity.ERROR, "arithmetic over a non-numeric operand"),
    "T005": (Severity.WARNING, "non-boolean expression used where a predicate is expected"),
    "T006": (Severity.WARNING, "IN list members incompatible with the tested expression"),
    "J001": (Severity.ERROR, "join key does not resolve in the child schema"),
    "J002": (Severity.ERROR, "join key type mismatch (string vs numeric)"),
    "J003": (Severity.WARNING, "join key numeric width mismatch (int vs float)"),
    "A001": (Severity.ERROR, "aggregate input column does not resolve"),
    "A002": (Severity.ERROR, "sum/avg over a non-numeric column"),
    "A003": (Severity.ERROR, "GROUP BY column does not resolve"),
    "I001": (
        Severity.ERROR,
        "hash join must declare a blocking build (child 0) and a driver probe "
        "(child 1) for ONCE estimation to apply",
    ),
    "I002": (
        Severity.WARNING,
        "child edge is neither blocking nor the driver; pipeline decomposition "
        "cannot attribute its work",
    ),
    "C001": (Severity.INFO, "pipeline join classified: same-attribute push-down"),
    "C002": (Severity.INFO, "pipeline join classified: Case 1 (other base-stream attribute)"),
    "C003": (Severity.INFO, "pipeline join classified: Case 2 (derived histogram required)"),
    "C101": (Severity.WARNING, "pipeline join falls back to the dne estimator"),
    "C102": (
        Severity.WARNING,
        "chain base stream is order-clustered; ONCE confidence bounds assume random order",
    ),
    "X001": (Severity.ERROR, "unguarded read/write of a lock-guarded attribute"),
    "X002": (Severity.ERROR, "guarded method called without its lock provably held"),
    "X003": (Severity.ERROR, "lock acquired on a path that can exit without release"),
    "X004": (Severity.ERROR, "inconsistent lock-acquisition order (potential deadlock cycle)"),
    "X005": (Severity.ERROR, "blocking call while holding a critical (sampling) lock"),
    "X006": (Severity.WARNING, "guarded mutable state escapes its lock to another thread"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from an analysis pass."""

    code: str
    severity: Severity
    message: str
    location: str | None = None
    hint: str | None = None

    def render(self) -> str:
        loc = f" [{self.location}]" if self.location else ""
        hint = f"\n    hint: {self.hint}" if self.hint else ""
        return f"{self.severity.label:>7} {self.code}{loc}: {self.message}{hint}"


class DiagnosticReport:
    """An ordered collection of diagnostics with severity queries."""

    def __init__(self, diagnostics: list[Diagnostic] | None = None):
        self.diagnostics: list[Diagnostic] = list(diagnostics or [])

    def add(
        self,
        code: str,
        message: str,
        location: str | None = None,
        hint: str | None = None,
        severity: Severity | None = None,
    ) -> Diagnostic:
        """Record a diagnostic; severity defaults from the :data:`CODES` registry."""
        if severity is None:
            if code not in CODES:
                raise KeyError(f"unregistered diagnostic code {code!r}")
            severity = CODES[code][0]
        diag = Diagnostic(code, severity, message, location, hint)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "DiagnosticReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [d.render() for d in self.diagnostics if d.severity >= min_severity]
        return "\n".join(lines)

    def raise_if_errors(self, context: str = "plan analysis") -> None:
        """Raise :class:`AnalysisError` summarising all ERROR diagnostics."""
        errors = self.errors
        if not errors:
            return
        body = "\n".join(d.render() for d in errors)
        raise AnalysisError(
            f"{context} found {len(errors)} error(s):\n{body}", report=self
        )
