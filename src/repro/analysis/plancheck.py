"""Plan semantic analyzer (Pass 1): check a physical plan before execution.

Progress `C(Q)/T(Q)` is only trustworthy if the plan the estimators observe
is *exactly* what they assume: every column reference resolves against the
schema actually flowing through the tree, join keys are type-compatible,
and the pipeline declarations (``blocking_child_indexes`` /
``driver_child_index``) decompose the plan into valid pipelines with a
well-defined driver. This pass walks a plan tree and verifies all of that
statically — no ``open()``/``next()`` call is ever made — reporting through
the shared :class:`~repro.analysis.diagnostics.DiagnosticReport`:

* **Structure** (P001–P005): duplicate nodes, out-of-range blocking/driver
  child indexes, non-runnable operator state, driver-also-blocking edges.
* **Typing** (T*/J*/A*): predicates and projections type-check against
  their input schemas, join keys resolve on both sides with compatible
  types, GROUP BY and aggregate inputs resolve (sum/avg need numerics).
* **Pipeline invariants** (I001/I002): hash joins must expose a blocking
  build and a driver probe — the shape ONCE estimation requires — and every
  child edge must be classified so pipeline decomposition can attribute
  work.
* **Estimator applicability** (C001–C102): each maximal hash-join chain is
  classified the way Algorithm 1 will see it — same-attribute push-down,
  Case 1 (another base-stream attribute) or Case 2 (derived histogram) —
  and chains the push-down framework cannot handle are flagged as falling
  back to the dne estimator *before* the query runs.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.typecheck import ExprType, TypeChecker, column_expr_type
from repro.executor.operators.aggregate import _AggregateBase
from repro.executor.operators.base import Operator, OperatorState
from repro.executor.operators.hash_join import HashJoin
from repro.executor.operators.merge_join import SortMergeJoin
from repro.executor.operators.nested_loops import NestedLoopsJoin
from repro.executor.operators.project import Project
from repro.executor.operators.scan import IndexScan
from repro.executor.operators.sort import Sort
from repro.storage.schema import Schema

__all__ = ["analyze_plan"]


def _location(op: Operator) -> str:
    return f"node {op.describe()}"


def _safe_walk(root: Operator, report: DiagnosticReport) -> list[Operator]:
    """Pre-order walk tolerating shared nodes: visit each operator once,
    reporting P001 for re-encounters instead of looping forever."""
    seen: set[int] = set()
    ops: list[Operator] = []
    stack = [root]
    while stack:
        op = stack.pop()
        if id(op) in seen:
            report.add(
                "P001",
                f"operator {op.describe()} appears more than once in the plan",
                location=_location(op),
                hint="Volcano trees may not share subplans; copy the operator",
            )
            continue
        seen.add(id(op))
        ops.append(op)
        stack.extend(reversed(op.children()))
    return ops


# -- structural checks ---------------------------------------------------------


def _check_structure(op: Operator, report: DiagnosticReport) -> None:
    n_children = len(op.children())
    blocking = tuple(op.blocking_child_indexes)
    for idx in blocking:
        if not 0 <= idx < n_children:
            report.add(
                "P002",
                f"blocking child index {idx} out of range "
                f"(operator has {n_children} children)",
                location=_location(op),
            )
    driver = op.driver_child_index
    if driver is not None:
        if not 0 <= driver < n_children:
            report.add(
                "P003",
                f"driver child index {driver} out of range "
                f"(operator has {n_children} children)",
                location=_location(op),
            )
        elif driver in blocking:
            report.add(
                "P005",
                f"driver child {driver} is also declared blocking; a pipeline "
                "cannot be driven by an input it never streams",
                location=_location(op),
            )
    if op.state in (OperatorState.CLOSED, OperatorState.EXHAUSTED):
        report.add(
            "P004",
            f"operator state is {op.state.value}; plans cannot be re-run",
            location=_location(op),
        )
    # Child edges that are neither blocking nor the driver leave pipeline
    # decomposition unable to attribute the child's getnext() work.
    if n_children > 1:
        classified = set(blocking) | ({driver} if driver is not None else set())
        for idx in range(n_children):
            if idx not in classified:
                report.add(
                    "I002",
                    f"child {idx} is neither blocking nor the driver",
                    location=_location(op),
                    hint="declare the edge in blocking_child_indexes or "
                    "driver_child_index",
                )


# -- per-operator semantic checks ----------------------------------------------


def _resolve_key(
    schema: Schema, key: str, side: str, op: Operator, report: DiagnosticReport
) -> ExprType | None:
    kind, idx = schema.resolve(key)
    if kind == "ok":
        assert idx is not None
        return column_expr_type(schema.columns[idx].ctype)
    reason = "is ambiguous" if kind == "ambiguous" else "does not resolve"
    report.add(
        "J001",
        f"{side} key {key!r} {reason} in {schema!r}",
        location=_location(op),
    )
    return None


def _check_key_pair(
    left: ExprType | None, right: ExprType | None, op: Operator, report: DiagnosticReport
) -> None:
    if left is None or right is None:
        return
    if left is right:
        return
    if left.is_numeric and right.is_numeric:
        report.add(
            "J003",
            f"join keys have different numeric widths ({left.value} vs "
            f"{right.value}); equality holds but histograms key on raw values",
            location=_location(op),
        )
        return
    report.add(
        "J002",
        f"join key type mismatch: {left.value} vs {right.value}",
        location=_location(op),
        hint="an equijoin between a string and a numeric key matches nothing",
    )


def _check_operator(op: Operator, report: DiagnosticReport) -> None:
    loc = _location(op)
    if isinstance(op, HashJoin):
        build_schema = op.build_child.output_schema
        probe_schema = op.probe_child.output_schema
        for bk, pk in zip(op.build_keys, op.probe_keys):
            bt = _resolve_key(build_schema, bk, "build", op, report)
            pt = _resolve_key(probe_schema, pk, "probe", op, report)
            _check_key_pair(bt, pt, op, report)
        return
    if isinstance(op, SortMergeJoin):
        lt = _resolve_key(op.left_child.output_schema, op.left_key, "left", op, report)
        rt = _resolve_key(op.right_child.output_schema, op.right_key, "right", op, report)
        _check_key_pair(lt, rt, op, report)
        return
    if isinstance(op, NestedLoopsJoin):
        if op.predicate is not None:
            TypeChecker(op.output_schema, report, loc).check_predicate(
                op.predicate, "join predicate"
            )
        return
    if isinstance(op, _AggregateBase):
        in_schema = op.child.output_schema
        for group in op.group_by:
            kind, _ = in_schema.resolve(group)
            if kind != "ok":
                reason = "is ambiguous" if kind == "ambiguous" else "does not resolve"
                report.add(
                    "A003", f"GROUP BY column {group!r} {reason} in {in_schema!r}",
                    location=loc,
                )
        for spec in op.aggregates:
            if spec.column is None:
                continue
            kind, idx = in_schema.resolve(spec.column)
            if kind != "ok":
                reason = "is ambiguous" if kind == "ambiguous" else "does not resolve"
                report.add(
                    "A001",
                    f"aggregate input {spec.column!r} {reason} in {in_schema!r}",
                    location=loc,
                )
                continue
            assert idx is not None
            if spec.func in ("sum", "avg"):
                ctype = column_expr_type(in_schema.columns[idx].ctype)
                if not ctype.is_numeric:
                    report.add(
                        "A002",
                        f"{spec.func}({spec.column}) over {ctype.value} column",
                        location=loc,
                    )
        return
    if isinstance(op, Sort):
        in_schema = op.child.output_schema
        checker = TypeChecker(in_schema, report, loc)
        for key in op.keys:
            checker.check(_col(key))
        return
    if isinstance(op, Project):
        checker = TypeChecker(op.child.output_schema, report, loc)
        for spec in op.columns:
            if not isinstance(spec, str):
                checker.check(spec[1])
        return
    predicate = getattr(op, "predicate", None)
    child_schemas = [c.output_schema for c in op.children()]
    if predicate is not None and len(child_schemas) == 1:
        # Filter and filter-like unary operators.
        TypeChecker(child_schemas[0], report, loc).check_predicate(predicate)


def _col(name: str):
    from repro.executor.expressions import Col

    return Col(name)


# -- pipeline invariants -------------------------------------------------------


def _check_pipeline_invariants(ops: list[Operator], report: DiagnosticReport) -> None:
    for op in ops:
        if isinstance(op, HashJoin):
            blocking = tuple(op.blocking_child_indexes)
            if 0 not in blocking or op.driver_child_index != 1:
                report.add(
                    "I001",
                    f"hash join declares blocking={blocking!r}, "
                    f"driver={op.driver_child_index!r}; ONCE needs the build "
                    "(child 0) blocking and the probe (child 1) driving",
                    location=_location(op),
                    hint="the build histogram must be complete before the "
                    "probe pass streams",
                )


# -- hash-join chain classification --------------------------------------------


def _chain_base_is_clustered(chain: list[HashJoin]) -> Operator | None:
    """The order-clustered source under the chain's base stream, if any.

    Descends the base probe stream along driver edges; a chain probed by an
    index scan (or any sorted source) violates the random-order assumption
    behind the confidence bounds (Section 4.1.2).
    """
    op: Operator = chain[0].probe_child
    while True:
        if isinstance(op, IndexScan):
            return op
        idx = op.driver_child_index
        children = op.children()
        if idx is None or idx >= len(children):
            return None
        op = children[idx]


def _classify_chain(chain: list[HashJoin], report: DiagnosticReport) -> None:
    base_schema = chain[0].probe_child.output_schema
    if any(len(j.probe_keys) != 1 or len(j.build_keys) != 1 for j in chain):
        if len(chain) > 1:
            report.add(
                "C101",
                "chain contains multi-column join keys; push-down estimation "
                "is single-key, upper joins use dne",
                location=_location(chain[-1]),
            )
        return
    kind, base_key_idx = base_schema.resolve(chain[0].probe_keys[0])
    if kind != "ok":
        return  # J001 already reported on the bottom join
    for i in range(1, len(chain)):
        join = chain[i]
        prov = _probe_provenance(chain, i)
        if prov is None:
            report.add(
                "C101",
                f"probe key {join.probe_keys[0]!r} has unresolvable provenance; "
                "this join falls back to dne",
                location=_location(join),
            )
            continue
        origin, value = prov
        if origin == "B":
            report.add(
                "C003",
                f"probe key {join.probe_keys[0]!r} traces to the build input of "
                f"chain level {value}; estimated via a derived histogram "
                "(Section 4.1.4.2)",
                location=_location(join),
            )
        elif value == base_key_idx:
            report.add(
                "C001",
                f"probe key {join.probe_keys[0]!r} is the chain's shared base "
                "attribute; exact push-down applies",
                location=_location(join),
            )
        else:
            report.add(
                "C002",
                f"probe key {join.probe_keys[0]!r} traces to a different "
                "base-stream attribute; Case-1 push-down applies",
                location=_location(join),
            )
    clustered = _chain_base_is_clustered(chain)
    if clustered is not None:
        report.add(
            "C102",
            f"chain base stream is fed by {clustered.describe()}, which emits "
            "in key order; sample-based confidence bounds assume random order",
            location=_location(chain[0]),
        )


def _probe_provenance(chain: list[HashJoin], i: int) -> tuple[str, int] | None:
    """Where ``chain[i]``'s probe key column *semantically* comes from.

    Mirrors the positional resolution performed by
    :class:`~repro.core.pipeline_estimators.HashJoinChainEstimator` — peel
    build segments off ``out(J_m) = build_m ++ out(J_{m-1})`` — with one
    refinement: a reference to a lower build relation's own *join key*
    column is rewritten, by equijoin transitivity, to that join's probe key
    and traced onward. That is what makes the paper's "same attribute"
    chains (upper join keyed on the lower build's key) classify as
    same-attribute rather than Case 2.

    Returns ``("C", column_index)`` for a base-stream column or
    ``("B", level)`` for a genuine lower-build column (Case 2).
    """
    join = chain[i]
    probe_schema = join.probe_child.output_schema
    kind, offset = probe_schema.resolve(join.probe_keys[0])
    if kind != "ok" or offset is None:
        return None
    m = i - 1
    while m >= 0:
        build_schema = chain[m].build_child.output_schema
        build_len = len(build_schema)
        if offset < build_len:
            key_kind, key_idx = build_schema.resolve(chain[m].build_keys[0])
            if key_kind == "ok" and key_idx == offset:
                # Equal to chain[m]'s probe key after the equijoin; restart
                # the trace from that key's position.
                lower_probe = chain[m].probe_child.output_schema
                kind, offset = lower_probe.resolve(chain[m].probe_keys[0])
                if kind != "ok" or offset is None:
                    return None
                m -= 1
                continue
            return ("B", m)
        offset -= build_len
        m -= 1
    return ("C", offset)


def _classify_chains(root: Operator, report: DiagnosticReport) -> None:
    from repro.core.pipeline_estimators import find_hash_join_chains

    for chain in find_hash_join_chains(root):
        _classify_chain(chain, report)


# -- entry point ---------------------------------------------------------------


def analyze_plan(root: Operator) -> DiagnosticReport:
    """Statically analyze a physical plan; never executes any operator."""
    report = DiagnosticReport()
    ops = _safe_walk(root, report)
    for op in ops:
        _check_structure(op, report)
        _check_operator(op, report)
    _check_pipeline_invariants(ops, report)
    if not report.has_errors:
        # Classification reuses schema resolution; skip it when errors above
        # already make provenance meaningless.
        _classify_chains(root, report)
    return report
