"""Static analysis: plan semantic checks and codebase invariant lint.

Two passes share one diagnostic framework (:mod:`repro.analysis.diagnostics`):

* Pass 1 — :func:`analyze_plan` type-checks expressions against the schemas
  flowing through a physical plan and verifies the paper's pipeline
  invariants (blocking build / driver probe, push-down classification)
  before a single ``getnext()`` call.
* Pass 2 — :mod:`repro.analysis.lint` is a Python-``ast`` rule engine
  (``python -m repro.analysis.lint src/``) guarding the ``K_i`` accounting,
  determinism and operator-declaration invariants at the source level.
"""

from repro.analysis.diagnostics import CODES, Diagnostic, DiagnosticReport, Severity
from repro.analysis.plancheck import analyze_plan
from repro.analysis.typecheck import ExprType, TypeChecker, infer_type

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "ExprType",
    "Severity",
    "TypeChecker",
    "analyze_plan",
    "infer_type",
]
