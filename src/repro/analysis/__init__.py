"""Static analysis: plan semantic checks and codebase invariant lint.

Two passes share one diagnostic framework (:mod:`repro.analysis.diagnostics`):

* Pass 1 — :func:`analyze_plan` type-checks expressions against the schemas
  flowing through a physical plan and verifies the paper's pipeline
  invariants (blocking build / driver probe, push-down classification)
  before a single ``getnext()`` call.
* Pass 2 — :mod:`repro.analysis.lint` is a Python-``ast`` rule engine
  (``python -m repro.analysis.lint src/``) guarding the ``K_i`` accounting,
  determinism and operator-declaration invariants at the source level.
* Pass 3 — :mod:`repro.analysis.concurrency` is the lock-discipline
  analyzer (``python -m repro.analysis.concurrency src/``): it
  machine-checks the TickBus locking protocol (diagnostics X001–X006)
  against the annotations of :mod:`repro.common.locks`.
"""

from repro.analysis.diagnostics import CODES, Diagnostic, DiagnosticReport, Severity
from repro.analysis.plancheck import analyze_plan
from repro.analysis.typecheck import ExprType, TypeChecker, infer_type


def __getattr__(name: str):
    # Lazy: `python -m repro.analysis.concurrency` would otherwise trip the
    # runpy "found in sys.modules" warning by importing the module it is
    # about to execute.
    if name in ("Finding", "analyze_paths"):
        from repro.analysis import concurrency

        return getattr(concurrency, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "ExprType",
    "Finding",
    "Severity",
    "TypeChecker",
    "analyze_plan",
    "analyze_paths",
    "infer_type",
]
