"""Expression type inference against a :class:`~repro.storage.schema.Schema`.

Expressions bind untyped at execution time — :meth:`Expression.bind` only
resolves tuple positions — so a predicate comparing an int key to a string
literal fails (or silently filters everything) deep inside the executor's
inner loop. This pass infers a type for every expression node *before*
execution and reports mismatches through the shared diagnostic framework:

* ``T001``/``T002`` — unresolvable / ambiguous column references;
* ``T003`` — comparisons (including BETWEEN bounds) over incompatible types;
* ``T004`` — arithmetic over non-numeric operands;
* ``T005`` — a non-boolean expression used where a predicate is expected;
* ``T006`` — IN-list members that can never match the tested expression.

The type lattice is deliberately small, mirroring
:class:`~repro.storage.schema.ColumnType` plus the analysis-only BOOL, NULL
and UNKNOWN elements; NULL and UNKNOWN compare with everything so partial
information never produces false positives.
"""

from __future__ import annotations

import enum

from repro.analysis.diagnostics import DiagnosticReport
from repro.executor.expressions import (
    And,
    Between,
    BinaryOp,
    Col,
    Comparison,
    Const,
    Expression,
    InList,
    IsNull,
    Not,
    Or,
)
from repro.storage.schema import ColumnType, Schema

__all__ = ["ExprType", "TypeChecker", "infer_type", "is_comparable"]


class ExprType(enum.Enum):
    """Inferred expression types (column types + analysis-only elements)."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    NULL = "null"
    UNKNOWN = "unknown"

    @property
    def is_numeric(self) -> bool:
        return self in (ExprType.INT, ExprType.FLOAT)


_FROM_COLUMN_TYPE = {
    ColumnType.INT: ExprType.INT,
    ColumnType.FLOAT: ExprType.FLOAT,
    ColumnType.STR: ExprType.STR,
}

_LENIENT = (ExprType.NULL, ExprType.UNKNOWN)


def column_expr_type(ctype: ColumnType) -> ExprType:
    return _FROM_COLUMN_TYPE[ctype]


def is_comparable(left: ExprType, right: ExprType) -> bool:
    """Whether ``left <op> right`` is a meaningful comparison."""
    if left in _LENIENT or right in _LENIENT:
        return True
    if left is right:
        return True
    # Numeric widths (and Python bools, which are ints) intercompare.
    numeric_ish = (ExprType.INT, ExprType.FLOAT, ExprType.BOOL)
    return left in numeric_ish and right in numeric_ish


def _const_type(value: object) -> ExprType:
    if value is None:
        return ExprType.NULL
    if isinstance(value, bool):
        return ExprType.BOOL
    if isinstance(value, int):
        return ExprType.INT
    if isinstance(value, float):
        return ExprType.FLOAT
    if isinstance(value, str):
        return ExprType.STR
    return ExprType.UNKNOWN


class TypeChecker:
    """Infer expression types against one schema, reporting into ``report``.

    ``location`` labels every diagnostic with the plan node (or SQL clause)
    the expression came from.
    """

    def __init__(
        self,
        schema: Schema,
        report: DiagnosticReport,
        location: str | None = None,
    ):
        self.schema = schema
        self.report = report
        self.location = location

    # -- entry points --------------------------------------------------------

    def check(self, expr: Expression) -> ExprType:
        """Infer ``expr``'s type, recording diagnostics for defects found."""
        if isinstance(expr, Col):
            return self._check_col(expr)
        if isinstance(expr, Const):
            return _const_type(expr.value)
        if isinstance(expr, Comparison):
            left = self.check(expr.left)
            right = self.check(expr.right)
            self._require_comparable(left, right, expr)
            return ExprType.BOOL
        if isinstance(expr, BinaryOp):
            return self._check_arith(expr)
        if isinstance(expr, (And, Or)):
            self._check_bool_operand(expr.left)
            self._check_bool_operand(expr.right)
            return ExprType.BOOL
        if isinstance(expr, Not):
            self._check_bool_operand(expr.child)
            return ExprType.BOOL
        if isinstance(expr, Between):
            subject = self.check(expr.child)
            for bound in (expr.low, expr.high):
                self._require_comparable(subject, self.check(bound), expr)
            return ExprType.BOOL
        if isinstance(expr, InList):
            subject = self.check(expr.child)
            bad = [v for v in expr.values if not is_comparable(subject, _const_type(v))]
            if bad:
                self.report.add(
                    "T006",
                    f"IN list values {bad!r} can never match {expr.child!r} "
                    f"of type {subject.value}",
                    location=self.location,
                )
            return ExprType.BOOL
        if isinstance(expr, IsNull):
            self.check(expr.child)
            return ExprType.BOOL
        # Future expression kinds degrade gracefully.
        return ExprType.UNKNOWN

    def check_predicate(self, expr: Expression, context: str = "predicate") -> ExprType:
        """Check ``expr`` and require it to be boolean-valued."""
        inferred = self.check(expr)
        if inferred is not ExprType.BOOL and inferred not in _LENIENT:
            self.report.add(
                "T005",
                f"{context} {expr!r} evaluates to {inferred.value}, not a boolean",
                location=self.location,
                hint="wrap the value in an explicit comparison",
            )
        return inferred

    # -- node checks ---------------------------------------------------------

    def _check_col(self, expr: Col) -> ExprType:
        kind, idx = self.schema.resolve(expr.name)
        if kind == "ok":
            assert idx is not None
            return column_expr_type(self.schema.columns[idx].ctype)
        if kind == "ambiguous":
            self.report.add(
                "T002",
                f"column {expr.name!r} is ambiguous in {self.schema!r}",
                location=self.location,
                hint="qualify the column as relation.column",
            )
        else:
            self.report.add(
                "T001",
                f"unknown column {expr.name!r} in {self.schema!r}",
                location=self.location,
            )
        return ExprType.UNKNOWN

    def _check_arith(self, expr: BinaryOp) -> ExprType:
        left = self.check(expr.left)
        right = self.check(expr.right)
        result = ExprType.INT
        for side in (left, right):
            if side in _LENIENT:
                result = ExprType.UNKNOWN
            elif not side.is_numeric and side is not ExprType.BOOL:
                self.report.add(
                    "T004",
                    f"operand of {expr.op!r} in {expr!r} has non-numeric "
                    f"type {side.value}",
                    location=self.location,
                )
                result = ExprType.UNKNOWN
        if result is ExprType.UNKNOWN:
            return result
        if expr.op == "/" or ExprType.FLOAT in (left, right):
            return ExprType.FLOAT
        return ExprType.INT

    def _check_bool_operand(self, operand: Expression) -> None:
        inferred = self.check(operand)
        if inferred is not ExprType.BOOL and inferred not in _LENIENT:
            self.report.add(
                "T005",
                f"boolean connective over non-boolean operand {operand!r} "
                f"of type {inferred.value}",
                location=self.location,
            )

    def _require_comparable(
        self, left: ExprType, right: ExprType, expr: Expression
    ) -> None:
        if not is_comparable(left, right):
            self.report.add(
                "T003",
                f"incompatible comparison {expr!r}: {left.value} vs {right.value}",
                location=self.location,
            )


def infer_type(expr: Expression, schema: Schema) -> tuple[ExprType, DiagnosticReport]:
    """Convenience wrapper: infer ``expr``'s type plus any diagnostics."""
    report = DiagnosticReport()
    inferred = TypeChecker(schema, report).check(expr)
    return inferred, report
