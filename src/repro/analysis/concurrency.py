"""Lock-discipline concurrency analyzer (Pass 3, X-codes).

Run as ``python -m repro.analysis.concurrency src/`` (non-zero exit on
findings). The server subsystem made the progress framework concurrent,
and its correctness rests on a locking protocol — every read/write of
estimator and session state happens under the TickBus-carried sampling
RLock or the owning component's private lock. A slightly-wrong estimator
is worse than a crashed one (nothing alerts you), so this pass turns the
protocol from folklore into a static guarantee.

The analyzer consumes the annotation model of :mod:`repro.common.locks`
(``guarded_by``/``holds_lock``/``acquires`` decorators; ``_guarded_by_``,
``_write_guarded_by_`` and ``_critical_locks_`` class registries), builds
a module-level class registry over every analyzed file (inheritance,
lock-attribute aliases such as ``ProgressMonitor._lock = bus.lock``, and
attribute/local types inferred from constructor calls and parameter
annotations), then runs an intraprocedural held-lock analysis over each
method:

========  =====================================================================
X001      read/write of a guarded attribute without the guarding lock held
X002      ``guarded_by`` method called without the lock provably held
X003      lock acquired outside ``with`` without an immediate try/finally
          release (an exception path leaks the lock)
X004      inconsistent lock-acquisition order — a cycle in the acquisition
          graph means two threads can deadlock
X005      blocking call (``time.sleep``, socket ops, condition waits,
          session stepping, timeout-taking queue gets) while holding a
          *critical* lock (the TickBus sampling lock)
X006      guarded mutable state escaping its lock: returned bare, or handed
          to another thread (``Thread(...)`` / ``submit(...)``)
========  =====================================================================

Lock identity is canonicalized per *class* — every ``TickBus`` instance's
``lock`` maps to the one node ``TickBus.lock`` — which conflates instances
but matches how the discipline is written (each plan has exactly one bus,
and the protocol is identical across plans). Aliases are chased, so
``ProgressMonitor._lock``, ``QuerySession.bus.lock`` and
``PlanCursor.bus.lock`` all canonicalize to ``TickBus.lock`` and the
acquisition-order graph sees one lock, not four.

Deliberate limits (documented, not accidental): the analysis is
intraprocedural — cross-function lock flow is expressed through the
annotations, which is the point: the annotation *is* the contract. Nested
functions and lambdas are skipped (they run at an unknown time under
unknown locks); ``__init__`` is exempt from X001/X006 because construction
is single-threaded by definition.

Suppression: a finding on a line carrying ``# noqa: X00x`` is dropped —
accepted findings stay visible and justified at the use site. A checked-in
baseline (``--baseline concurrency_baseline.json``) suppresses findings by
``(code, path, symbol)`` for debt that cannot be annotated inline;
``--write-baseline`` regenerates it. ``--json`` emits the machine-readable
report CI uploads as an artifact.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import CODES, Severity

__all__ = [
    "Finding",
    "analyze_paths",
    "load_baseline",
    "main",
    "write_baseline",
]

#: Decorator attribute names, as written at the decoration site.
_DECOS = {"guarded_by": "guarded", "holds_lock": "holds", "acquires": "acquires"}

#: Class-body registries the analyzer reads.
_GUARD_REGISTRY = "_guarded_by_"
_WRITE_GUARD_REGISTRY = "_write_guarded_by_"
_CRITICAL_REGISTRY = "_critical_locks_"

#: Constructors that create a lock-like object (Condition is lock-like:
#: it wraps an RLock and is entered the same way).
_LOCK_CTORS = {"Lock", "RLock", "Condition"}

#: Method calls that mutate a container in place — a write for guard purposes.
_MUTATORS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "remove",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "rotate",
    "sort",
    "reverse",
}

#: Dotted call names that block unconditionally.
_BLOCKING_DOTTED = {"time.sleep", "socket.create_connection"}

#: Attribute call names that block. ``wait``/``wait_for`` are exempt when
#: invoked on a lock that is itself held (a Condition wait *releases* it);
#: ``join`` is exempt on string constants (``", ".join``); ``get``/``put``
#: only count when passed a ``timeout=`` keyword (queue/subscription
#: mailboxes — a plain ``dict.get`` never takes one).
_BLOCKING_ATTRS = {
    "sleep",
    "wait",
    "wait_for",
    "join",
    "recv",
    "recv_into",
    "sendall",
    "accept",
    "connect",
    "select",
    "step",
    "serve_forever",
}
_BLOCKING_WITH_TIMEOUT = {"get", "put"}

_NOQA_RE = re.compile(r"#\s*noqa:\s*([A-Z0-9, ]+)")


# -- findings ------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One lock-discipline violation."""

    code: str
    path: str
    line: int
    symbol: str
    message: str

    @property
    def severity(self) -> Severity:
        return CODES[self.code][0]

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} [{self.symbol}] {self.message}"

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across line-number churn."""
        return (self.code, Path(self.path).as_posix(), self.symbol)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "path": Path(self.path).as_posix(),
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


# -- class model ---------------------------------------------------------------


@dataclass
class _MethodInfo:
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    guarded: tuple[str, ...] = ()
    holds: tuple[str, ...] = ()
    acquires: tuple[str, ...] = ()


@dataclass
class _ClassInfo:
    name: str
    path: str
    line: int
    bases: list[str] = field(default_factory=list)
    guarded: dict[str, str] = field(default_factory=dict)
    write_guarded: dict[str, str] = field(default_factory=dict)
    locks: set[str] = field(default_factory=set)
    critical: set[str] = field(default_factory=set)
    aliases: dict[str, tuple[str, str]] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    mutable: set[str] = field(default_factory=set)
    methods: dict[str, _MethodInfo] = field(default_factory=dict)


def _last_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted_name(node: ast.expr) -> str | None:
    """``time.sleep`` -> "time.sleep"; None for non-Name roots."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_class(node: ast.expr | None) -> str | None:
    """Best-effort class name out of an annotation (``TickBus | None``,
    ``Optional["ProgressMonitor"]``, ``threading.RLock`` ...)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return None if node.id == "None" else node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_class(node.left) or _annotation_class(node.right)
    if isinstance(node, ast.Subscript):
        return _annotation_class(node.slice)
    return None


def _str_dict(node: ast.expr) -> dict[str, str]:
    out: dict[str, str] = {}
    if isinstance(node, ast.Dict):
        for k, v in zip(node.keys, node.values):
            if (
                isinstance(k, ast.Constant)
                and isinstance(k.value, str)
                and isinstance(v, ast.Constant)
                and isinstance(v.value, str)
            ):
                out[k.value] = v.value
    return out


def _str_seq(node: ast.expr) -> tuple[str, ...]:
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(
            e.value
            for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        )
    return ()


def _deco_specs(deco: ast.expr) -> tuple[str, tuple[str, ...]] | None:
    """``@guarded_by("_lock")`` -> ("guarded", ("_lock",))."""
    if not isinstance(deco, ast.Call):
        return None
    name = _last_name(deco.func)
    kind = _DECOS.get(name or "")
    if kind is None:
        return None
    specs = tuple(
        a.value for a in deco.args if isinstance(a, ast.Constant) and isinstance(a.value, str)
    )
    return (kind, specs) if specs else None


def _is_lock_ctor(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) and _last_name(node.func) in _LOCK_CTORS


#: Constructor names producing a mutable container (for X006 purposes).
_MUTABLE_CTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "OrderedDict",
    "Counter",
}


def _is_mutable_value(node: ast.expr) -> bool:
    """Conservative: does this ``__init__`` value build a mutable container?

    X006 (state escaping its lock) only makes sense for fields that hold
    aliasable mutable objects — handing out an int or a frozen snapshot is
    value publication, not state escape.
    """
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    return isinstance(node, ast.Call) and _last_name(node.func) in _MUTABLE_CTORS


def _collect_method(stmt: ast.FunctionDef | ast.AsyncFunctionDef) -> _MethodInfo:
    m = _MethodInfo(name=stmt.name, node=stmt)
    for deco in stmt.decorator_list:
        parsed = _deco_specs(deco)
        if parsed is not None:
            kind, specs = parsed
            setattr(m, kind, getattr(m, kind) + specs)
    return m


def _collect_class(node: ast.ClassDef, path: str, class_names: set[str]) -> _ClassInfo:
    info = _ClassInfo(name=node.name, path=path, line=node.lineno)
    for base in node.bases:
        name = _last_name(base)
        if name is not None:
            info.bases.append(name)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = _collect_method(stmt)
            if stmt.name == "__init__":
                _collect_init(stmt, info, class_names)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                _collect_registry(target.id, stmt.value, info)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                _collect_registry(stmt.target.id, stmt.value, info)
            cls = _annotation_class(stmt.annotation)
            if cls in _LOCK_CTORS:
                info.locks.add(stmt.target.id)
            elif cls in class_names:
                info.attr_types.setdefault(stmt.target.id, cls)
    return info


def _collect_registry(name: str, value: ast.expr, info: _ClassInfo) -> None:
    if name == _GUARD_REGISTRY:
        info.guarded.update(_str_dict(value))
    elif name == _WRITE_GUARD_REGISTRY:
        info.write_guarded.update(_str_dict(value))
    elif name == _CRITICAL_REGISTRY:
        info.critical.update(_str_seq(value))


def _collect_init(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, info: _ClassInfo, class_names: set[str]
) -> None:
    """Infer lock attrs, aliases and attribute types from ``__init__``."""
    param_types: dict[str, str] = {}
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        cls = _annotation_class(arg.annotation)
        if cls is not None:
            param_types[arg.arg] = cls
    for stmt in ast.walk(fn):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        annotation: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value, annotation = [stmt.target], stmt.value, stmt.annotation
        else:
            continue
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if value is None:
                continue
            is_lock = _annotation_class(annotation) in _LOCK_CTORS or any(
                _is_lock_ctor(sub) for sub in ast.walk(value)
            )
            if is_lock:
                info.locks.add(attr)
            if _is_mutable_value(value):
                info.mutable.add(attr)
            # Alias: any `param.x[.y]` sub-expression whose root parameter
            # has a class annotation (`bus.lock` with bus: TickBus | None).
            for sub in ast.walk(value):
                if isinstance(sub, ast.Attribute):
                    root = sub
                    parts = [root.attr]
                    while isinstance(root.value, ast.Attribute):
                        root = root.value
                        parts.append(root.attr)
                    if isinstance(root.value, ast.Name) and root.value.id in param_types:
                        info.aliases.setdefault(
                            attr,
                            (param_types[root.value.id], ".".join(reversed(parts))),
                        )
                        break
            # Attribute type: constructor call or annotated parameter.
            inferred: str | None = None
            for sub in ast.walk(value):
                if isinstance(sub, ast.Call):
                    name = _last_name(sub.func)
                    if name in class_names:
                        inferred = name
                        break
                if isinstance(sub, ast.Name) and sub.id in param_types:
                    if param_types[sub.id] in class_names:
                        inferred = param_types[sub.id]
                        break
            cls = _annotation_class(annotation)
            if cls in class_names:
                inferred = cls
            if inferred is not None:
                info.attr_types.setdefault(attr, inferred)


# -- registry with inheritance -------------------------------------------------


@dataclass
class _ClassView:
    """A class merged with its registry ancestors."""

    name: str
    guarded: dict[str, str]
    write_guarded: dict[str, str]
    locks: set[str]
    critical: set[str]
    aliases: dict[str, tuple[str, str]]
    attr_types: dict[str, str]
    mutable: set[str]
    methods: dict[str, _MethodInfo]


class _Registry:
    def __init__(self) -> None:
        self.classes: dict[str, _ClassInfo] = {}
        self.module_scopes: list[_ClassInfo] = []
        self._views: dict[str, _ClassView] = {}

    def add_module(self, tree: ast.Module, path: str, class_names: set[str]) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self.classes.setdefault(node.name, _collect_class(node, path, class_names))
        # Module-level functions are analyzed too, as a lock-less pseudo
        # scope: guarded-field checks fire through typed locals such as
        # ``monitor = ProgressMonitor(...)``.
        scope = _ClassInfo(name="<module>", path=path, line=1)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.methods[node.name] = _collect_method(node)
        if scope.methods:
            self.module_scopes.append(scope)

    def view(self, name: str, _seen: frozenset[str] = frozenset()) -> _ClassView:
        cached = self._views.get(name)
        if cached is not None:
            return cached
        info = self.classes.get(name)
        view = _ClassView(name, {}, {}, set(), set(), {}, {}, set(), {})
        if info is not None and name not in _seen:
            for base in info.bases:
                bview = self.view(base, _seen | {name})
                view.guarded.update(bview.guarded)
                view.write_guarded.update(bview.write_guarded)
                view.locks |= bview.locks
                view.critical |= bview.critical
                view.aliases.update(bview.aliases)
                view.attr_types.update(bview.attr_types)
                view.mutable |= bview.mutable
                view.methods.update(bview.methods)
            view.guarded.update(info.guarded)
            view.write_guarded.update(info.write_guarded)
            view.locks |= info.locks
            view.critical |= info.critical
            view.aliases.update(info.aliases)
            view.attr_types.update(info.attr_types)
            view.mutable |= info.mutable
            view.methods.update(info.methods)
        if not _seen:
            self._views[name] = view
        return view

    def canonical(
        self, cls_name: str, spec: str, _seen: frozenset[tuple[str, str]] = frozenset()
    ) -> str | None:
        """Resolve a lock spec relative to a class into a canonical id.

        ``("ProgressMonitor", "_lock")`` chases the ``= bus.lock`` alias to
        ``"TickBus.lock"``; ``("QuerySession", "bus.lock")`` descends the
        ``bus: TickBus`` attribute type to the same id.
        """
        if (cls_name, spec) in _seen:
            return None
        seen = _seen | {(cls_name, spec)}
        view = self.view(cls_name)
        alias = view.aliases.get(spec)
        if alias is not None:
            resolved = self.canonical(alias[0], alias[1], seen)
            if resolved is not None:
                return resolved
        if spec in view.locks:
            return f"{cls_name}.{spec}"
        parts = spec.split(".")
        if len(parts) > 1 and parts[0] in view.attr_types:
            return self.canonical(view.attr_types[parts[0]], ".".join(parts[1:]), seen)
        return None

    def critical_ids(self) -> set[str]:
        out: set[str] = set()
        for info in self.classes.values():
            for spec in self.view(info.name).critical:
                canon = self.canonical(info.name, spec)
                if canon is not None:
                    out.add(canon)
        return out


# -- the per-method analysis ---------------------------------------------------


class _Analysis:
    """Shared state for one ``analyze_paths`` run."""

    def __init__(self, registry: _Registry):
        self.registry = registry
        self.critical = registry.critical_ids()
        self.findings: list[Finding] = []
        # Acquisition-order edges: (held, acquired) -> first (path, line, symbol).
        self.edges: dict[tuple[str, str], tuple[str, int, str]] = {}

    def add(self, code: str, path: str, line: int, symbol: str, message: str) -> None:
        self.findings.append(Finding(code, path, line, symbol, message))

    def edge(self, held: str, acquired: str, path: str, line: int, symbol: str) -> None:
        if held != acquired:
            self.edges.setdefault((held, acquired), (path, line, symbol))

    def report_order_cycles(self) -> None:
        """X004: cycles in the acquisition graph are potential deadlocks."""
        graph: dict[str, set[str]] = {}
        for a, b in self.edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        seen_cycles: set[frozenset[str]] = set()
        state: dict[str, int] = {}
        stack: list[str] = []

        def dfs(node: str) -> None:
            state[node] = 1
            stack.append(node)
            for nxt in sorted(graph[node]):
                if state.get(nxt, 0) == 0:
                    dfs(nxt)
                elif state.get(nxt) == 1:
                    cycle = stack[stack.index(nxt):] + [nxt]
                    key = frozenset(cycle)
                    if key in seen_cycles:
                        continue
                    seen_cycles.add(key)
                    sites = []
                    for x, y in zip(cycle, cycle[1:]):
                        path, line, symbol = self.edges[(x, y)]
                        sites.append(f"{x} -> {y} at {path}:{line} ({symbol})")
                    path, line, symbol = self.edges[(cycle[0], cycle[1])]
                    self.add(
                        "X004",
                        path,
                        line,
                        symbol,
                        "inconsistent lock-acquisition order (deadlock cycle): "
                        + "; ".join(sites),
                    )
            stack.pop()
            state[node] = 2

        for node in sorted(graph):
            if state.get(node, 0) == 0:
                dfs(node)


class _MethodChecker:
    def __init__(
        self,
        analysis: _Analysis,
        cls: _ClassInfo,
        view: _ClassView,
        method: _MethodInfo,
        path: str,
    ):
        self.a = analysis
        self.cls = cls
        self.view = view
        self.method = method
        self.path = path
        self.symbol = (
            method.name if cls.name == "<module>" else f"{cls.name}.{method.name}"
        )
        self.is_init = method.name == "__init__"
        self.locals: dict[str, str] = {}  # local name -> "self.x[.y]" path
        self.local_types: dict[str, str] = {}  # local name -> class name
        self.reported: set[tuple[str, int, str]] = set()

    # -- resolution -------------------------------------------------------------

    def _expr_path(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            if node.id == "self":
                return "self"
            return self.locals.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._expr_path(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def _lock_id(self, node: ast.expr) -> str | None:
        path = self._expr_path(node)
        if path is not None and path.startswith("self."):
            return self.a.registry.canonical(self.cls.name, path[len("self."):])
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
        ):
            # `with bus.lock:` where `bus` is a typed local (`bus =
            # TickBus(...)`) — resolve through the local's class, which is
            # how module-level functions (e.g. the parallel worker loop)
            # honour class lock protocols without a `self` to root at.
            cls = self.local_types.get(node.value.id)
            if cls is not None:
                return self.a.registry.canonical(cls, node.attr)
        if isinstance(node, ast.Name):
            cls = self.local_types.get(node.id)
            if cls is not None:
                return None  # a lock object held in a typed local: unknown spec
        return None

    def _receiver_class(self, node: ast.expr) -> str | None:
        """Class of a call/field receiver, via attr types or typed locals."""
        if isinstance(node, ast.Name):
            if node.id == "self":
                return self.cls.name
            cls = self.local_types.get(node.id)
            if cls is not None:
                return cls
            path = self.locals.get(node.id)
            if path is not None:
                return self._class_of_path(path)
            return None
        if isinstance(node, ast.Attribute):
            path = self._expr_path(node)
            if path is not None:
                return self._class_of_path(path)
        return None

    def _class_of_path(self, path: str) -> str | None:
        parts = path.split(".")
        if parts[0] != "self":
            return None
        cls = self.cls.name
        for part in parts[1:]:
            view = self.a.registry.view(cls)
            nxt = view.attr_types.get(part)
            if nxt is None:
                return None
            cls = nxt
        return cls

    def _canon_spec(self, owner_cls: str, spec: str) -> str | None:
        return self.a.registry.canonical(owner_cls, spec)

    # -- entry ------------------------------------------------------------------

    def run(self) -> None:
        entry: set[str] = set()
        for spec in (*self.method.guarded, *self.method.holds):
            canon = self._canon_spec(self.cls.name, spec)
            if canon is not None:
                entry.add(canon)
        self._walk(self.method.node.body, frozenset(entry))

    # -- statement walk ---------------------------------------------------------

    def _walk(self, stmts: list[ast.stmt], held: frozenset[str]) -> None:
        cur = held
        i = 0
        while i < len(stmts):
            stmt = stmts[i]
            consumed = 1
            if isinstance(stmt, ast.With):
                cur_with = cur
                locks: list[str] = []
                for item in stmt.items:
                    self._visit_expr(item.context_expr, cur_with)
                    lock = self._lock_id(item.context_expr)
                    if lock is not None:
                        for h in cur_with:
                            self.a.edge(h, lock, self.path, stmt.lineno, self.symbol)
                        locks.append(lock)
                        cur_with = cur_with | {lock}
                self._walk(stmt.body, cur_with)
            elif isinstance(stmt, ast.Expr) and self._acquire_lock(stmt.value) is not None:
                lock = self._acquire_lock(stmt.value)
                assert lock is not None
                for h in cur:
                    self.a.edge(h, lock, self.path, stmt.lineno, self.symbol)
                nxt = stmts[i + 1] if i + 1 < len(stmts) else None
                if isinstance(nxt, ast.Try) and self._releases_in_finally(nxt, lock):
                    self._walk(nxt.body, cur | {lock})
                    for handler in nxt.handlers:
                        self._walk(handler.body, cur | {lock})
                    self._walk(nxt.orelse, cur | {lock})
                    self._walk(nxt.finalbody, cur | {lock})
                    consumed = 2
                else:
                    self.report(
                        "X003",
                        stmt.lineno,
                        f"lock {lock} acquired outside `with` and not released in an "
                        "immediately following try/finally; an exception path leaks it",
                    )
                    cur = cur | {lock}  # assume held; avoids cascading X001 noise
            elif isinstance(stmt, ast.Expr) and self._release_lock(stmt.value) is not None:
                lock = self._release_lock(stmt.value)
                cur = frozenset(x for x in cur if x != lock)
                self._visit_expr(stmt.value, cur)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                pass  # nested defs run at an unknown time under unknown locks
            elif isinstance(stmt, ast.Assign):
                self._record_alias(stmt)
                for target in stmt.targets:
                    self._visit_expr(target, cur)
                self._visit_expr(stmt.value, cur)
            elif isinstance(stmt, ast.AugAssign):
                self._visit_expr(stmt.target, cur)
                self._visit_expr(stmt.value, cur)
            elif isinstance(stmt, ast.AnnAssign):
                self._visit_expr(stmt.target, cur)
                if stmt.value is not None:
                    self._record_alias(stmt)
                    self._visit_expr(stmt.value, cur)
            elif isinstance(stmt, (ast.Return, ast.Expr)):
                value = stmt.value
                if value is not None:
                    if isinstance(stmt, ast.Return):
                        self._check_escape_value(value)
                    self._visit_expr(value, cur)
            elif isinstance(stmt, ast.If):
                self._visit_expr(stmt.test, cur)
                self._walk(stmt.body, cur)
                self._walk(stmt.orelse, cur)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._visit_expr(stmt.iter, cur)
                self._visit_expr(stmt.target, cur)
                self._walk(stmt.body, cur)
                self._walk(stmt.orelse, cur)
            elif isinstance(stmt, ast.While):
                self._visit_expr(stmt.test, cur)
                self._walk(stmt.body, cur)
                self._walk(stmt.orelse, cur)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, cur)
                for handler in stmt.handlers:
                    self._walk(handler.body, cur)
                self._walk(stmt.orelse, cur)
                self._walk(stmt.finalbody, cur)
            elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, ast.expr):
                        self._visit_expr(sub, cur)
            else:
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, ast.expr):
                        self._visit_expr(sub, cur)
            i += consumed

    def _acquire_lock(self, node: ast.expr) -> str | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            return self._lock_id(node.func.value)
        return None

    def _release_lock(self, node: ast.expr) -> str | None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
        ):
            return self._lock_id(node.func.value)
        return None

    def _releases_in_finally(self, node: ast.Try, lock: str) -> bool:
        for stmt in node.finalbody:
            if isinstance(stmt, ast.Expr):
                released = self._release_lock(stmt.value)
                if released == lock:
                    return True
        return False

    def _record_alias(self, stmt: ast.Assign | ast.AnnAssign) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        value = stmt.value
        if value is None:
            return
        path = self._expr_path(value)
        if path is not None:
            self.locals[name] = path
            return
        if isinstance(value, ast.Call):
            cls = _last_name(value.func)
            if cls is not None and cls in self.a.registry.classes:
                self.local_types[name] = cls

    # -- expression checks ------------------------------------------------------

    def _visit_expr(self, node: ast.expr, held: frozenset[str]) -> None:
        for sub in self._walk_expr(node):
            if isinstance(sub, ast.Attribute):
                self._check_field_access(sub, held)
            elif isinstance(sub, ast.Call):
                self._check_call(sub, held)

    def _walk_expr(self, node: ast.expr):
        """ast.walk that does not descend into lambdas (deferred execution)."""
        stack: list[ast.AST] = [node]
        while stack:
            cur = stack.pop()
            if isinstance(cur, ast.Lambda):
                continue
            yield cur
            stack.extend(ast.iter_child_nodes(cur))

    def _field_guard(self, node: ast.Attribute) -> tuple[str, str, bool] | None:
        """``(owner class, guarding lock id, write_only)`` for a guarded field."""
        owner = self._receiver_class(node.value)
        if owner is None:
            return None
        view = self.a.registry.view(owner)
        spec = view.guarded.get(node.attr)
        write_only = False
        if spec is None:
            spec = view.write_guarded.get(node.attr)
            write_only = True
        if spec is None:
            return None
        canon = self._canon_spec(owner, spec)
        if canon is None:
            return None
        return owner, canon, write_only

    def _check_field_access(self, node: ast.Attribute, held: frozenset[str]) -> None:
        if self.is_init:
            return
        guard = self._field_guard(node)
        if guard is None:
            return
        owner, lock, write_only = guard
        is_write = isinstance(node.ctx, (ast.Store, ast.Del))
        if write_only and not is_write:
            return
        if lock in held:
            return
        kind = "write to" if is_write else "read of"
        self.report(
            "X001",
            node.lineno,
            f"unguarded {kind} {owner}.{node.attr} (guarded by {lock}); "
            f"held here: {self._held_str(held)}",
        )

    def _check_call(self, node: ast.Call, held: frozenset[str]) -> None:
        func = node.func
        self._check_thread_escape(node)
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        self._check_blocking(node, attr, func, held)
        # In-place mutation of a guarded container is a write.
        if attr in _MUTATORS and isinstance(func.value, ast.Attribute):
            guard = self._field_guard(func.value)
            if guard is not None and not self.is_init:
                owner, lock, _write_only = guard
                if lock not in held:
                    self.report(
                        "X001",
                        node.lineno,
                        f"unguarded mutation {owner}.{func.value.attr}.{attr}() "
                        f"(guarded by {lock}); held here: {self._held_str(held)}",
                    )
        # Resolve the callee for X002 and acquisition-order edges.
        owner = self._receiver_class(func.value)
        if owner is None:
            return
        view = self.a.registry.view(owner)
        callee = view.methods.get(attr)
        if callee is None:
            return
        for spec in callee.guarded:
            canon = self._canon_spec(owner, spec)
            if canon is not None and canon not in held and not self.is_init:
                self.report(
                    "X002",
                    node.lineno,
                    f"call to {owner}.{attr}() requires {canon} held "
                    f"(guarded_by); held here: {self._held_str(held)}",
                )
        for spec in callee.acquires:
            canon = self._canon_spec(owner, spec)
            if canon is not None:
                for h in held:
                    self.a.edge(h, canon, self.path, node.lineno, self.symbol)

    def _check_blocking(
        self, node: ast.Call, attr: str, func: ast.Attribute, held: frozenset[str]
    ) -> None:
        hot = held & self.a.critical
        if not hot:
            return
        dotted = _dotted_name(func)
        blocking = dotted in _BLOCKING_DOTTED or attr in _BLOCKING_ATTRS
        if attr in _BLOCKING_WITH_TIMEOUT:
            blocking = any(kw.arg == "timeout" for kw in node.keywords)
        if not blocking:
            return
        if attr in ("wait", "wait_for"):
            receiver = self._lock_id(func.value)
            if receiver is not None and receiver in held:
                return  # Condition.wait releases the lock it waits on
        if attr == "join" and isinstance(func.value, ast.Constant):
            return  # str.join
        self.report(
            "X005",
            node.lineno,
            f"blocking call {dotted or attr}() while holding critical lock(s) "
            f"{', '.join(sorted(hot))}; every concurrent snapshot stalls behind it",
        )

    def _guarded_mutable(self, node: ast.expr) -> tuple[str, str] | None:
        """``(owner, lock)`` when ``node`` is a guarded *mutable* field."""
        if not isinstance(node, ast.Attribute):
            return None
        guard = self._field_guard(node)
        if guard is None:
            return None
        owner, lock, _write_only = guard
        if node.attr not in self.a.registry.view(owner).mutable:
            return None  # publishing an immutable value is not an escape
        return owner, lock

    def _check_escape_value(self, value: ast.expr) -> None:
        """X006: returning a guarded mutable object bare lets it escape its lock."""
        if self.is_init:
            return
        guard = self._guarded_mutable(value)
        if guard is None:
            return
        owner, lock = guard
        self.report(
            "X006",
            value.lineno,
            f"guarded state {owner}.{value.attr} (guarded by {lock}) returned "
            "bare; the caller uses it after the lock is released — return a copy",
        )

    def _check_thread_escape(self, node: ast.Call) -> None:
        """X006: guarded state handed to another thread.

        Only bare attribute arguments (or tuple/list elements of one) are
        flagged — a derived value such as ``len(self._threads)`` inside an
        f-string is a copy, not an escaping alias.
        """
        if self.is_init:
            return
        name = _last_name(node.func)
        if name not in ("Thread", "submit", "start_new_thread", "run_in_executor"):
            return
        candidates: list[ast.expr] = []
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            if isinstance(arg, (ast.Tuple, ast.List)):
                candidates.extend(arg.elts)
            else:
                candidates.append(arg)
        for candidate in candidates:
            guard = self._guarded_mutable(candidate)
            if guard is not None:
                owner, lock = guard
                self.report(
                    "X006",
                    node.lineno,
                    f"guarded state {owner}.{candidate.attr} (guarded by {lock}) "
                    f"passed to {name}(); it escapes to another thread "
                    "without its guard",
                )

    def _held_str(self, held: frozenset[str]) -> str:
        return ", ".join(sorted(held)) if held else "no locks"

    def report(self, code: str, line: int, message: str) -> None:
        key = (code, line, message)
        if key in self.reported:
            return
        self.reported.add(key)
        self.a.add(code, self.path, line, self.symbol, message)


# -- engine --------------------------------------------------------------------


def _collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _noqa_codes(line: str) -> set[str]:
    match = _NOQA_RE.search(line)
    if not match:
        return set()
    return {c.strip() for c in match.group(1).split(",") if c.strip()}


def analyze_paths(
    paths: list[str], baseline: set[tuple[str, str, str]] | None = None
) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths``; returns sorted findings.

    Findings on lines carrying ``# noqa: X00x`` and findings whose
    ``(code, path, symbol)`` key appears in ``baseline`` are suppressed.
    """
    registry = _Registry()
    lines_by_path: dict[str, list[str]] = {}
    trees: list[tuple[ast.Module, str]] = []
    for file in _collect_files(paths):
        text = file.read_text()
        try:
            tree = ast.parse(text, filename=str(file))
        except SyntaxError:
            continue  # the lint pass reports syntax errors
        trees.append((tree, str(file)))
        lines_by_path[str(file)] = text.splitlines()
    class_names = {
        node.name
        for tree, _path in trees
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }
    for tree, path in trees:
        registry.add_module(tree, path, class_names)
    analysis = _Analysis(registry)
    for info in [*registry.classes.values(), *registry.module_scopes]:
        view = registry.view(info.name)
        for method in info.methods.values():
            _MethodChecker(analysis, info, view, method, info.path).run()
    analysis.report_order_cycles()
    findings = []
    for finding in analysis.findings:
        lines = lines_by_path.get(finding.path, [])
        if 0 < finding.line <= len(lines):
            if finding.code in _noqa_codes(lines[finding.line - 1]):
                continue
        if baseline and finding.key() in baseline:
            continue
        findings.append(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.code))


# -- baseline + report ---------------------------------------------------------


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """Load suppression keys from a baseline file (see module docstring)."""
    data = json.loads(Path(path).read_text())
    entries = data["findings"] if isinstance(data, dict) else data
    keys: set[tuple[str, str, str]] = set()
    for entry in entries:
        keys.add((entry["code"], Path(entry["path"]).as_posix(), entry["symbol"]))
    return keys


def write_baseline(findings: list[Finding], path: str | Path) -> None:
    entries = [
        {
            "code": f.code,
            "path": Path(f.path).as_posix(),
            "symbol": f.symbol,
            "message": f.message,
            "justification": "TODO: justify or fix",
        }
        for f in findings
    ]
    Path(path).write_text(json.dumps({"version": 1, "findings": entries}, indent=2) + "\n")


def write_json_report(findings: list[Finding], path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(
            {"findings": [f.to_dict() for f in findings], "count": len(findings)},
            indent=2,
        )
        + "\n"
    )


DEFAULT_BASELINE = "concurrency_baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.concurrency",
        description="Lock-discipline concurrency analyzer (diagnostics X001-X006)",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to analyze")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE} "
        "in the current directory, when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report everything",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings as the new baseline and exit 0",
    )
    parser.add_argument("--json", metavar="FILE", help="write a JSON report")
    args = parser.parse_args(argv)

    baseline: set[tuple[str, str, str]] | None = None
    if not args.no_baseline and args.write_baseline is None:
        baseline_path = args.baseline
        if baseline_path is None and Path(DEFAULT_BASELINE).is_file():
            baseline_path = DEFAULT_BASELINE
        if baseline_path is not None:
            try:
                baseline = load_baseline(baseline_path)
            except (OSError, KeyError, ValueError) as exc:
                print(f"cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
                return 2

    findings = analyze_paths(args.paths, baseline=baseline)
    if args.write_baseline is not None:
        write_baseline(findings, args.write_baseline)
        print(
            f"wrote {len(findings)} finding(s) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    if args.json is not None:
        write_json_report(findings, args.json)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
