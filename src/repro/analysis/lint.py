"""Codebase invariant lint (Pass 2): a Python-``ast`` rule engine.

Run as ``python -m repro.analysis.lint src/`` (non-zero exit on violations).
The rules protect the invariants the whole getnext accounting model depends
on — things no runtime assertion can catch because they only break when
someone writes new code:

* **R001** — no subclass writes ``tuples_emitted`` outside
  ``Operator.next()`` / ``Operator.next_batch()``. That single counter *is*
  the ``K_i`` of the paper's model; an operator that bumps or resets it
  corrupts ``C(Q)`` silently. Batch writes (``+= len(batch)``) belong to
  ``next_batch`` alone — never to a subclass's ``_next_batch`` drain.
  Coordinator packages (``repro/server/`` and ``repro/parallel/``) are
  held to a stricter form: coordinator threads observe, they never drive —
  so calls to ``tick()`` / ``tick_n()`` and writes to the bus ``count``
  are also illegal there (worker fragments advance counters only through
  the sanctioned ``PlanCursor.fetch`` pull loop). The only mutation path
  for estimator/counter state is ``Operator.next``/``next_batch`` under
  the engine's pull loop.
* **R002** — no ``random`` / ``numpy.random`` use outside
  ``repro/common/rng.py``. All randomness flows through the seeded factory
  so runs are reproducible.
* **R003** — no bare ``except:``. Swallowing ``KeyboardInterrupt`` inside
  an operator loop hangs long queries, the exact scenario progress
  indicators exist for.
* **R004** — every concrete ``Operator`` subclass declares (or inherits
  from a concrete ancestor) ``op_name``, ``children`` and
  ``output_schema``. The analyzer, EXPLAIN and pipeline decomposition all
  dispatch on these.
* **R005** — no per-row estimator hook call (``on_build`` / ``on_probe`` /
  ``observe``) inside a loop of a ``_next_batch`` drain. Batch drains must
  aggregate estimator updates through the batch-hook twins
  (``make_batch_dispatch``); a hand-written per-row call there silently
  reinstates the per-tuple overhead the batch path exists to amortise.
  ``operators/base.py`` is exempt: the generic ``Operator`` fallback is the
  one sanctioned place where batch execution degrades to per-row hooks.
  In coordinator packages the rule additionally scans the delta-merge
  (``fold``) and merge-step (``apply``) loops: the coordinator combines
  workers' sufficient statistics, it never replays per-row hooks.
* **R006** — no bare ``threading.Lock()`` / ``threading.RLock()``
  construction inside ``executor/`` or ``core/``. Those layers synchronize
  through the TickBus-carried sampling lock; a private lock there either
  duplicates it (two locks "protecting" the same estimator state protect
  nothing) or silently partitions the protocol the concurrency analyzer
  (:mod:`repro.analysis.concurrency`) checks. ``TickBus`` itself — the
  class that *creates* the sampling lock — is exempt. Sanctioned
  exceptions carry ``# noqa: R006`` with a justification comment.
* **R007** — no ``json.dumps`` / ``encode`` / ``write_message`` call inside
  a loop of a ``repro.server`` module. The fan-out pipeline serializes each
  snapshot exactly once at publish time (``server/wire.py``) and watch
  loops ship pre-encoded frames via ``protocol.write_frame``; an encode in
  a per-subscriber/per-watcher loop silently reinstates the
  O(watchers × steps) serialization wall. ``protocol.py`` and ``wire.py``
  (the sanctioned encode sites) are exempt; accepted O(1)-per-iteration
  sites carry ``# noqa: R007``.
* **R008** — no raw file I/O (``open`` / ``Path.read_text`` /
  ``write_text`` / ``read_bytes`` / ``write_bytes``) inside
  ``repro/robust/`` outside ``store.py``. The run-history file is
  append-only JSONL with torn-tail recovery and fault-site probes;
  ``HistoryStore`` is the single sanctioned access path — a side-channel
  read skips the crash tolerance, a side-channel write corrupts the
  record framing the recovery logic depends on.

A violation on a line carrying ``# noqa: R00x`` (matching code) is
suppressed — the accepted sites stay visible and justified in the source.

The engine parses every file once, builds a cross-module class registry so
inheritance resolves through intermediate bases (``SampleScan -> SeqScan``,
``HashAggregate -> _AggregateBase``), then applies the rules.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["RULES", "Violation", "lint_paths", "main"]

_NOQA_RE = re.compile(r"#\s*noqa:\s*([A-Z0-9, ]+)")


def _noqa_codes(line: str) -> set[str]:
    """Codes suppressed by a ``# noqa: R001[, R002]`` comment on ``line``."""
    match = _NOQA_RE.search(line)
    if not match:
        return set()
    return {c.strip() for c in match.group(1).split(",") if c.strip()}

#: Rule id -> one-line description (kept in sync with docs/ANALYSIS.md).
RULES: dict[str, str] = {
    "R001": "tuples_emitted may only be written by Operator.next()/next_batch(); "
    "coordinator modules (server, parallel) may not drive tick()/tick_n() or "
    "write bus counters",
    "R002": "random/numpy.random are forbidden outside repro.common.rng",
    "R003": "bare `except:` clauses are forbidden",
    "R004": "Operator subclasses must declare op_name, children and output_schema",
    "R005": "per-row estimator hooks (on_build/on_probe/observe) are forbidden "
    "inside _next_batch loops (and coordinator merge loops); use the "
    "batch-hook twins / fold sufficient statistics",
    "R006": "bare threading.Lock()/RLock() construction is forbidden in executor/ "
    "and core/; use the TickBus-carried sampling lock",
    "R007": "json.dumps/encode/write_message calls are forbidden inside loops in "
    "repro.server (except protocol.py/wire.py): snapshots are serialized once "
    "at publish time and fanned out as pre-encoded frames",
    "R008": "raw file I/O (open/read_text/write_text/read_bytes/write_bytes) is "
    "forbidden in repro.robust outside store.py; all history-file access goes "
    "through HistoryStore",
}

#: The one module allowed to touch raw RNG constructors.
_RNG_MODULE_SUFFIX = ("repro", "common", "rng.py")

#: Members R004 requires on concrete Operator subclasses.
_REQUIRED_OPERATOR_MEMBERS = ("op_name", "children", "output_schema")


@dataclass(frozen=True)
class Violation:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class _ClassInfo:
    name: str
    path: str
    line: int
    bases: list[str] = field(default_factory=list)
    members: set[str] = field(default_factory=set)
    has_abstract_methods: bool = False


def _collect_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _base_name(node: ast.expr) -> str | None:
    """Last dotted segment of a base-class expression (``x.Operator`` -> ``Operator``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _class_info(node: ast.ClassDef, path: str) -> _ClassInfo:
    info = _ClassInfo(name=node.name, path=path, line=node.lineno)
    for base in node.bases:
        name = _base_name(base)
        if name is not None:
            info.bases.append(name)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.members.add(stmt.name)
            for deco in stmt.decorator_list:
                if _base_name(deco) == "abstractmethod":
                    info.has_abstract_methods = True
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.members.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.members.add(stmt.target.id)
    return info


class _Registry:
    """Cross-module class table with by-name inheritance resolution."""

    def __init__(self) -> None:
        self.classes: dict[str, _ClassInfo] = {}

    def add_module(self, tree: ast.Module, path: str) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self.classes.setdefault(node.name, _class_info(node, path))

    def is_operator_subclass(self, name: str, _seen: frozenset[str] = frozenset()) -> bool:
        """True for strict descendants of ``Operator`` (not Operator itself)."""
        info = self.classes.get(name)
        if info is None or name in _seen:
            return False
        seen = _seen | {name}
        for base in info.bases:
            if base == "Operator" or self.is_operator_subclass(base, seen):
                return True
        return False

    def effective_members(self, name: str, _seen: frozenset[str] = frozenset()) -> set[str]:
        """Members declared on ``name`` or inherited from registry ancestors,
        excluding ``Operator`` itself (its defaults/abstracts don't count as
        subclass declarations)."""
        if name == "Operator" or name in _seen:
            return set()
        info = self.classes.get(name)
        if info is None:
            return set()
        members = set(info.members)
        for base in info.bases:
            members |= self.effective_members(base, _seen | {name})
        return members


# -- rules ---------------------------------------------------------------------


#: Packages whose threads observe execution rather than drive it (stricter
#: R001 rules): the server, and the parallel coordinator stack — where even
#: the worker loop only advances counters through the sanctioned
#: ``PlanCursor.fetch`` API, never by ticking the bus directly.
_COORDINATOR_PKGS = (("repro", "server"), ("repro", "parallel"))

#: Methods coordinator code may never call: they advance the work counters.
_COUNTER_DRIVERS = ("tick", "tick_n")


def _in_coordinator_package(path: str) -> bool:
    parts = Path(path).parts
    return any(
        parts[i : i + len(pkg)] == pkg
        for pkg in _COORDINATOR_PKGS
        for i in range(len(parts) - len(pkg) + 1)
    )


def _rule_r001(tree: ast.Module, path: str) -> list[Violation]:
    """Writes to ``tuples_emitted`` outside
    ``Operator.next``/``Operator.next_batch``/``__init__``; in coordinator
    packages (``repro.server``, ``repro.parallel``) additionally any
    ``tick()``/``tick_n()`` call or write to a ``count`` attribute (the
    TickBus counter)."""
    violations: list[Violation] = []
    in_coordinator = _in_coordinator_package(path)

    def is_counter_write(stmt: ast.stmt) -> int | None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr == "tuples_emitted":
                return stmt.lineno
        return None

    def visit(node: ast.AST, class_name: str | None, func_name: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name, None)
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, class_name, child.name)
                continue
            line = is_counter_write(child) if isinstance(child, ast.stmt) else None
            allowed = class_name == "Operator" and func_name in (
                "next",
                "next_batch",
                "__init__",
            )
            if line is not None and not allowed:
                where = f"{class_name}.{func_name}" if class_name else func_name or "module"
                violations.append(
                    Violation(
                        "R001",
                        path,
                        line,
                        f"write to tuples_emitted in {where}; the K_i counter "
                        "is maintained solely by Operator.next()/next_batch()",
                    )
                )
            if isinstance(child, ast.stmt):
                visit(child, class_name, func_name)

    visit(tree, None, None)
    if in_coordinator:
        violations.extend(_r001_coordinator_checks(tree, path))
    return violations


def _r001_coordinator_checks(tree: ast.Module, path: str) -> list[Violation]:
    """Coordinator threads observe execution, they never drive it: no
    ``tick``/``tick_n`` calls, no writes to a ``count`` attribute."""
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _COUNTER_DRIVERS
        ):
            violations.append(
                Violation(
                    "R001",
                    path,
                    node.lineno,
                    f"call to {node.func.attr}() in coordinator code; only "
                    "Operator.next()/next_batch() under the engine's pull "
                    "loop may advance the work counters",
                )
            )
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr == "count":
                violations.append(
                    Violation(
                        "R001",
                        path,
                        node.lineno,
                        "write to a .count attribute in coordinator code; "
                        "the TickBus counter belongs to the execution side",
                    )
                )
    return violations


def _rule_r002(tree: ast.Module, path: str) -> list[Violation]:
    """``random`` / ``numpy.random`` outside the seeded-rng module."""
    if Path(path).parts[-3:] == _RNG_MODULE_SUFFIX:
        return []
    violations: list[Violation] = []

    def flag(line: int, what: str) -> None:
        violations.append(
            Violation(
                "R002",
                path,
                line,
                f"{what}; use repro.common.rng.make_rng for deterministic seeds",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random" or alias.name.startswith("numpy.random"):
                    flag(node.lineno, f"import of {alias.name!r}")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random" or module.startswith("numpy.random"):
                flag(node.lineno, f"import from {module!r}")
            elif module == "numpy" and any(a.name == "random" for a in node.names):
                flag(node.lineno, "import of numpy.random")
        elif isinstance(node, ast.Attribute) and node.attr == "random":
            if isinstance(node.value, ast.Name) and node.value.id in ("numpy", "np"):
                flag(node.lineno, "use of numpy.random")
    return violations


def _rule_r003(tree: ast.Module, path: str) -> list[Violation]:
    """Bare ``except:`` clauses."""
    return [
        Violation(
            "R003",
            path,
            node.lineno,
            "bare except swallows KeyboardInterrupt/SystemExit; name the "
            "exception types",
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler) and node.type is None
    ]


#: Estimator hook names whose per-row form is banned from batch drains.
_PER_ROW_HOOKS = ("observe", "on_build", "on_probe")

#: The generic Operator fallback (operators/base.py) legitimately replays
#: row hooks per tuple when an operator has no native batch drain.
_R005_EXEMPT_SUFFIX = ("executor", "operators", "base.py")


#: Methods scanned in coordinator packages on top of ``_next_batch``: the
#: delta-merge path (``fold``) and coordinator merge steps (``apply``) must
#: combine sufficient statistics, never replay per-row estimator hooks.
_R005_COORDINATOR_METHODS = ("_next_batch", "apply", "fold")


def _rule_r005(tree: ast.Module, path: str) -> list[Violation]:
    """Per-row estimator hook calls inside ``_next_batch`` drain loops —
    and, in coordinator packages, inside delta-merge/merge-step loops."""
    if Path(path).parts[-3:] == _R005_EXEMPT_SUFFIX:
        return []
    scanned = (
        _R005_COORDINATOR_METHODS
        if _in_coordinator_package(path)
        else ("_next_batch",)
    )
    flagged: set[tuple[int, str]] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name not in scanned:
            continue
        for loop in ast.walk(node):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for call in ast.walk(loop):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _PER_ROW_HOOKS
                ):
                    flagged.add((call.lineno, call.func.attr))
    return [
        Violation(
            "R005",
            path,
            line,
            f"per-row {attr}() call in a batch drain or coordinator merge "
            "loop; batch drains must aggregate estimator updates via the "
            "batch-hook twins (operators.base.make_batch_dispatch), and "
            "coordinator merges must fold sufficient statistics",
        )
        for line, attr in sorted(flagged)
    ]


#: Packages where private lock construction is banned (R006).
_R006_PKGS = (("repro", "executor"), ("repro", "core"))

#: The class that owns the sampling lock may, of course, construct it.
_R006_EXEMPT_CLASSES = ("TickBus",)


def _in_package(path: str, pkg: tuple[str, ...]) -> bool:
    parts = Path(path).parts
    return any(
        parts[i : i + len(pkg)] == pkg for i in range(len(parts) - len(pkg) + 1)
    )


def _rule_r006(tree: ast.Module, path: str) -> list[Violation]:
    """Bare ``threading.Lock()``/``RLock()`` in executor/ or core/."""
    if not any(_in_package(path, pkg) for pkg in _R006_PKGS):
        return []
    violations: list[Violation] = []

    def visit(node: ast.AST, class_name: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name)
                continue
            if (
                isinstance(child, ast.Call)
                and _base_name(child.func) in ("Lock", "RLock")
                and class_name not in _R006_EXEMPT_CLASSES
            ):
                violations.append(
                    Violation(
                        "R006",
                        path,
                        child.lineno,
                        f"bare threading.{_base_name(child.func)}() constructed in "
                        f"{Path(path).parts[-2]}/; executor and core state is "
                        "guarded by the TickBus-carried sampling lock — share "
                        "bus.lock (or justify with a `# noqa: R006` comment)",
                    )
                )
            visit(child, class_name)

    visit(tree, None)
    return violations


#: The package R007 polices: the serving layer's fan-out loops.
_R007_PKG = ("repro", "server")

#: Modules allowed to encode: the wire protocol itself and the
#: serialize-once frame encoder (the single publish-time encode point).
_R007_EXEMPT_FILES = ("protocol.py", "wire.py")

#: Call names that serialize or write a wire line; inside a loop these
#: re-encode per iteration — the exact O(watchers x steps) wall the
#: serialize-once pipeline removes.
_R007_ENCODE_CALLS = ("dumps", "encode", "write_message")


def _rule_r007(tree: ast.Module, path: str) -> list[Violation]:
    """Serialization calls inside loops of ``repro.server`` modules.

    Per-subscriber/per-watcher loops must ship pre-encoded frames
    (``protocol.write_frame``); any ``json.dumps``/``encode``/
    ``write_message`` lexically inside a ``for``/``while`` there
    re-serializes per iteration. Helper functions *defined* outside a
    loop and merely called from it are fine — the rule polices where
    the encode happens, not the call graph. Accepted O(1)-per-iteration
    sites (one request line per reconnect, one error reply per request)
    carry ``# noqa: R007``.
    """
    if not _in_package(path, _R007_PKG):
        return []
    if Path(path).name in _R007_EXEMPT_FILES:
        return []
    flagged: set[tuple[int, str]] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and _base_name(child.func) in _R007_ENCODE_CALLS
            ):
                flagged.add((child.lineno, _base_name(child.func) or ""))
    return [
        Violation(
            "R007",
            path,
            line,
            f"{name}() inside a repro.server loop re-serializes per "
            "iteration; encode once at publish time and fan out "
            "pre-encoded frames (protocol.write_frame)",
        )
        for line, name in sorted(flagged)
    ]


#: The package R008 polices: everything around the run-history store.
_R008_PKG = ("repro", "robust")

#: The single module allowed to open/read/write the history file.
_R008_EXEMPT_FILES = ("store.py",)

#: Call names that reach the filesystem directly.
_R008_IO_CALLS = ("open", "read_text", "write_text", "read_bytes", "write_bytes")


def _rule_r008(tree: ast.Module, path: str) -> list[Violation]:
    """Raw file I/O in ``repro.robust`` outside the sanctioned store module.

    The history file's crash tolerance (torn-tail skip, flush-per-record
    framing) and its fault-injection probes live in
    :class:`~repro.robust.store.HistoryStore`; any other module opening the
    file bypasses both. The rule is lexical and deliberately blunt — the
    robust package has no business doing file I/O of any kind elsewhere.
    """
    if not _in_package(path, _R008_PKG):
        return []
    if Path(path).name in _R008_EXEMPT_FILES:
        return []
    flagged: set[tuple[int, str]] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _base_name(node.func) in _R008_IO_CALLS:
            flagged.add((node.lineno, _base_name(node.func) or ""))
    return [
        Violation(
            "R008",
            path,
            line,
            f"{name}() in repro.robust outside store.py; history-file access "
            "must go through HistoryStore (torn-tail recovery + fault probes)",
        )
        for line, name in sorted(flagged)
    ]


def _rule_r004(registry: _Registry) -> list[Violation]:
    """Concrete Operator subclasses missing required declarations."""
    violations: list[Violation] = []
    for name, info in sorted(registry.classes.items()):
        if not registry.is_operator_subclass(name):
            continue
        # Abstract intermediates opt out: leading-underscore names or any
        # @abstractmethod of their own.
        if name.startswith("_") or info.has_abstract_methods:
            continue
        members = registry.effective_members(name)
        missing = [m for m in _REQUIRED_OPERATOR_MEMBERS if m not in members]
        if missing:
            violations.append(
                Violation(
                    "R004",
                    info.path,
                    info.line,
                    f"Operator subclass {name} does not declare or inherit "
                    f"{', '.join(missing)}",
                )
            )
    return violations


# -- engine --------------------------------------------------------------------


def lint_paths(paths: list[str], rules: set[str] | None = None) -> list[Violation]:
    """Lint every ``.py`` file under ``paths``; returns sorted violations."""
    selected = set(RULES) if rules is None else rules
    unknown = selected - set(RULES)
    if unknown:
        raise ValueError(f"unknown lint rules: {sorted(unknown)}")
    registry = _Registry()
    modules: list[tuple[ast.Module, str]] = []
    lines_by_path: dict[str, list[str]] = {}
    violations: list[Violation] = []
    for file in _collect_files(paths):
        text = file.read_text()
        lines_by_path[str(file)] = text.splitlines()
        try:
            tree = ast.parse(text, filename=str(file))
        except SyntaxError as exc:
            violations.append(
                Violation("R003", str(file), exc.lineno or 0, f"syntax error: {exc.msg}")
            )
            continue
        modules.append((tree, str(file)))
        registry.add_module(tree, str(file))
    per_module = {
        "R001": _rule_r001,
        "R002": _rule_r002,
        "R003": _rule_r003,
        "R005": _rule_r005,
        "R006": _rule_r006,
        "R007": _rule_r007,
        "R008": _rule_r008,
    }
    for tree, path in modules:
        for rule_id, rule in per_module.items():
            if rule_id in selected:
                violations.extend(rule(tree, path))
    if "R004" in selected:
        violations.extend(_rule_r004(registry))
    kept = []
    for violation in violations:
        lines = lines_by_path.get(violation.path, [])
        if 0 < violation.line <= len(lines):
            if violation.rule in _noqa_codes(lines[violation.line - 1]):
                continue
        kept.append(violation)
    return sorted(kept, key=lambda v: (v.path, v.line, v.rule))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Codebase invariant lint (rules R001-R008)",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all)",
    )
    args = parser.parse_args(argv)
    rules = set(args.rules.split(",")) if args.rules else None
    try:
        violations = lint_paths(args.paths, rules)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
