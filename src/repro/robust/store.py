"""The append-only, crash-tolerant run-history store.

One JSONL file, one :class:`~repro.robust.history.RunRecord` per line.
Appends are flushed per record, so a crash can tear at most the final
line — and the loader tolerates exactly that: a trailing record that is
truncated or undecodable is *skipped*, never fatal (the rest of the file
stays usable). This module is the single sanctioned file-access path for
history data (lint rule R008): everything else goes through
:class:`HistoryStore`.

Fault injection
---------------
The store carries the ``history.read`` / ``history.write`` injection
sites. History is an accelerant, never a dependency: any fault here
degrades the store — cold-start priors on a failed read, a dropped record
on a failed write — and surfaces through ``degraded_reason``; it never
raises into the query path. A ``short_read`` fault on the write side
tears the record mid-line on purpose, which is how the chaos harness
exercises the torn-tail recovery against realistic damage.

Lock discipline
---------------
All index state lives under one private mutex. ``degraded_reason`` is an
immutable value published lock-free (write-guarded): progress monitors
read it from under the TickBus sampling lock, and a nested blocking
acquire there would stall every concurrent snapshot (analyzer rule X005).
"""

from __future__ import annotations

import dataclasses
import json
import threading
from pathlib import Path

from repro.common.locks import acquires, assert_owned, guarded_by
from repro.faults.plan import (
    SHORT_READ,
    SITE_HISTORY_READ,
    SITE_HISTORY_WRITE,
    FaultPlan,
    InjectedFault,
)
from repro.robust.history import Prior, RunRecord, aggregate_prior

__all__ = ["HistoryStore"]


class HistoryStore:
    """Thread-safe run-history store over one append-only JSONL file.

    Parameters
    ----------
    path:
        The history file. Created on first append; a missing file is an
        empty history, not an error.
    faults:
        Optional :class:`~repro.faults.FaultPlan` arming the
        ``history.read`` / ``history.write`` sites.
    """

    # Lock discipline: the in-memory index (records, per-fingerprint map,
    # load flag, sequence counter, skip count) mutates under ``_lock``;
    # ``degraded_reason`` is written under it but read lock-free (an
    # immutable str swap — see the module docstring).
    _guarded_by_ = {
        "_records": "_lock",
        "_by_fp": "_lock",
        "_loaded": "_lock",
        "_next_seq": "_lock",
        "_skipped": "_lock",
        "_needs_newline": "_lock",
    }
    _write_guarded_by_ = {"degraded_reason": "_lock"}

    def __init__(self, path: str | Path, faults: FaultPlan | None = None):
        self.path = Path(path)
        self.faults = faults
        self._lock = threading.Lock()
        self._records: list[RunRecord] = []
        self._by_fp: dict[str, list[RunRecord]] = {}
        self._loaded = False
        self._next_seq = 1
        self._skipped = 0
        # True when the file may end mid-line (torn tail, short write, or
        # an unreadable load): the next append leads with a newline so the
        # fresh record never concatenates onto the damaged fragment.
        self._needs_newline = False
        #: Why the store last degraded (None while healthy). Lock-free read.
        self.degraded_reason: str | None = None

    # -- loading -------------------------------------------------------------

    @guarded_by("_lock")
    def _load_locked(self) -> None:
        if self._loaded:
            return
        assert_owned(self._lock, "history store lock")
        self._loaded = True
        spec = None
        if self.faults is not None:
            try:
                spec = self.faults.fire(SITE_HISTORY_READ, str(self.path))
            except InjectedFault as exc:
                self.degraded_reason = f"history read fault: {exc}"
                self._needs_newline = True
                return
        if spec is not None and spec.kind == SHORT_READ:
            # A partial read is indistinguishable from an empty history;
            # degrade to cold-start priors rather than trust half a file.
            self.degraded_reason = "history read fault: short read"
            self._needs_newline = True  # unknown tail state: heal defensively
            return
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return
        except OSError as exc:
            self.degraded_reason = f"history read error: {exc}"
            self._needs_newline = True
            return
        self._needs_newline = bool(text) and not text.endswith("\n")
        lines = text.split("\n")
        for idx, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                record = RunRecord.from_wire(data)
            except (ValueError, KeyError, TypeError):
                # A torn/truncated record — a crash mid-append. Only the
                # trailing line can legitimately tear; anything earlier is
                # equally skippable (the file is append-only, so damage
                # never invalidates the records around it).
                self._skipped += 1
                continue
            self._index_locked(record)
        # File may carry explicit seqs from older stores; keep ours above.
        if self._records:
            self._next_seq = max(r.seq for r in self._records) + 1

    @guarded_by("_lock")
    def _index_locked(self, record: RunRecord) -> None:
        self._records.append(record)
        self._by_fp.setdefault(record.fingerprint, []).append(record)

    # -- appending -----------------------------------------------------------

    @acquires("_lock")
    def append_run(self, record: RunRecord) -> bool:
        """Persist one finished run; returns False when a write fault (or a
        real I/O error) dropped the record. Never raises into the caller —
        a query must not fail because its history could not be saved."""
        with self._lock:
            self._load_locked()
            if record.seq == 0:
                record = dataclasses.replace(record, seq=self._next_seq)
            self._next_seq = max(self._next_seq, record.seq) + 1
            payload = json.dumps(record.to_wire(), separators=(",", ":"))
            spec = None
            if self.faults is not None:
                try:
                    spec = self.faults.fire(SITE_HISTORY_WRITE, record.fingerprint)
                except InjectedFault as exc:
                    self.degraded_reason = f"history write fault: {exc}"
                    return False
            torn = spec is not None and spec.kind == SHORT_READ
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with self.path.open("a", encoding="utf-8") as fh:
                    if self._needs_newline:
                        # The file ends mid-line (torn tail / short write):
                        # terminate the damaged fragment so this record
                        # starts on its own line. The fragment stays
                        # skippable; it must not eat the fresh append.
                        fh.write("\n")
                    if torn:
                        # Simulate a crash mid-append: half the record, no
                        # newline. The next load must skip this tail.
                        fh.write(payload[: max(1, len(payload) // 2)])
                    else:
                        fh.write(payload + "\n")
                    fh.flush()
            except OSError as exc:
                self.degraded_reason = f"history write error: {exc}"
                return False
            self._needs_newline = torn
            if torn:
                self.degraded_reason = "history write fault: short write"
                return False
            self._index_locked(record)
            return True

    # -- queries -------------------------------------------------------------

    @acquires("_lock")
    def prior(self, fingerprint: str) -> Prior | None:
        """Per-estimator error priors (and cardinality snapshot) for one
        fingerprint; None when the history has never seen it (or the store
        degraded to cold-start)."""
        with self._lock:
            self._load_locked()
            return aggregate_prior(fingerprint, self._by_fp.get(fingerprint, []))

    @acquires("_lock")
    def records(self) -> list[RunRecord]:
        """All records, oldest first (a copy)."""
        with self._lock:
            self._load_locked()
            return list(self._records)

    @acquires("_lock")
    def records_for(self, fingerprint: str) -> list[RunRecord]:
        with self._lock:
            self._load_locked()
            return list(self._by_fp.get(fingerprint, []))

    @acquires("_lock")
    def fingerprints(self) -> list[str]:
        """Distinct fingerprints, in first-seen order."""
        with self._lock:
            self._load_locked()
            return list(self._by_fp)

    @acquires("_lock")
    def skipped(self) -> int:
        """Torn/undecodable lines dropped by the loader."""
        with self._lock:
            self._load_locked()
            return self._skipped

    @acquires("_lock")
    def clear(self) -> int:
        """Delete every record (truncates the file); returns the count."""
        with self._lock:
            self._load_locked()
            n = len(self._records)
            self._records = []
            self._by_fp = {}
            self._skipped = 0
            self._next_seq = 1
            self._needs_newline = False
            try:
                if self.path.exists():
                    self.path.write_text("")
            except OSError as exc:
                self.degraded_reason = f"history clear error: {exc}"
            return n

    def __len__(self) -> int:
        with self._lock:
            self._load_locked()
            return len(self._records)
