"""Canonical plan fingerprints and run-history records.

The robust-estimation subsystem (König et al., *A Statistical Approach
Towards Robust Progress Estimation*) keys everything it remembers about a
query by a **plan fingerprint**: a structural hash of the physical plan
tree. Two submissions of the same query — under different table aliases,
whitespace, SELECT-list order or join-input partitioning knobs — must hash
identically, while changing a join key or a predicate constant must hash
differently. The fingerprint is what lets a cold server recognise "I have
run this plan before" and seed estimator weights and cardinalities from
those runs.

Canonical form
--------------
Each operator renders to an S-expression over:

* its *kind* (the physical operator class, lower-cased);
* its base relation (``Table.base_name``, which survives ``aliased()``
  views — the paper's ``C``/``C¹``/``C²`` self-join variants all
  canonicalize to the one underlying ``customer``);
* join keys / sort keys / grouping columns with qualifiers stripped
  (``c1.k`` → ``k``);
* predicates rendered via :mod:`repro.sql.render` after qualifier
  stripping, with commutative operands (``AND``/``OR``, ``=``/``!=``,
  ``IN`` lists, ``+``/``*``) sorted so operand order cannot leak into the
  hash;
* unordered column lists (SELECT items, GROUP BY) sorted.

Execution knobs that do not change *what* the plan computes — hash-join
``num_partitions``/``memory_partitions``, block sizes — are excluded.

Besides the whole-plan digest, the same walk emits a digest per *subtree*
(keyed by ``node_id``): subtree digests are stable across runs of
equivalent plans, which is what the statistics-feedback loop keys observed
cardinalities by (node ids are only stable within one plan shape).

Records
-------
:class:`RunRecord` is the JSONL payload the store appends per finished
run: the progress curve, each candidate estimator's error trajectory,
final per-subtree cardinalities, base-table row counts at observation
time (for the staleness bound) and wall time. :func:`aggregate_prior`
folds a fingerprint's records into the per-estimator error priors that
seed the live ensemble weights.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.executor.expressions import (
    And,
    Between,
    BinaryOp,
    Col,
    Comparison,
    Const,
    Expression,
    InList,
    IsNull,
    Not,
    Or,
)
from repro.executor.operators.base import Operator
from repro.sql.render import render_expression

__all__ = [
    "EstimatorPrior",
    "PlanFingerprint",
    "Prior",
    "RunRecord",
    "aggregate_prior",
    "canonical_expression",
    "fingerprint_plan",
]

#: Digest length (hex chars) — 64 bits of sha256 is plenty for a plan cache.
_DIGEST_LEN = 16

#: Comparison operators whose operand order is semantically irrelevant.
_SYMMETRIC_OPS = ("=", "==", "!=", "<>")

#: Arithmetic operators that commute (operand order sorted in the hash).
_COMMUTATIVE_BINOPS = ("+", "*")


def _bare(name: str) -> str:
    """Strip the relation qualifier off a column name (``c1.k`` → ``k``)."""
    return name.rsplit(".", 1)[-1]


def _flatten(expr: Expression, kind: type) -> list[Expression]:
    """Flatten nested same-type And/Or chains into one operand list."""
    if isinstance(expr, kind):
        return _flatten(expr.left, kind) + _flatten(expr.right, kind)
    return [expr]


def canonical_expression(expr: Expression) -> str:
    """Alias- and order-insensitive text form of a predicate tree.

    Mirrors :func:`repro.sql.render.render_expression` (which remains the
    renderer of record for constants and any node kind this walk does not
    special-case) with column qualifiers stripped and commutative operand
    lists sorted.
    """
    if isinstance(expr, Col):
        return _bare(expr.name)
    if isinstance(expr, Const):
        return render_expression(expr)
    if isinstance(expr, Comparison):
        left = canonical_expression(expr.left)
        right = canonical_expression(expr.right)
        if expr.op in _SYMMETRIC_OPS:
            left, right = sorted((left, right))
        return f"({left} {expr.op} {right})"
    if isinstance(expr, (And, Or)):
        word = "AND" if isinstance(expr, And) else "OR"
        terms = sorted(canonical_expression(t) for t in _flatten(expr, type(expr)))
        return "(" + f" {word} ".join(terms) + ")"
    if isinstance(expr, Not):
        return f"(NOT {canonical_expression(expr.child)})"
    if isinstance(expr, InList):
        values = sorted(render_expression(Const(v)) for v in expr.values)
        return f"({canonical_expression(expr.child)} IN ({', '.join(values)}))"
    if isinstance(expr, Between):
        return (
            f"({canonical_expression(expr.child)} BETWEEN "
            f"{canonical_expression(expr.low)} AND {canonical_expression(expr.high)})"
        )
    if isinstance(expr, IsNull):
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({canonical_expression(expr.child)} {middle})"
    if isinstance(expr, BinaryOp):
        left = canonical_expression(expr.left)
        right = canonical_expression(expr.right)
        if expr.op in _COMMUTATIVE_BINOPS:
            left, right = sorted((left, right))
        return f"({left} {expr.op} {right})"
    # Unknown node kinds fall back to the SQL renderer verbatim: stable,
    # just not alias-normalized — better than refusing to fingerprint.
    return render_expression(expr)


def _table_name(table) -> str:
    return getattr(table, "base_name", None) or table.name


def _column_list(names) -> str:
    return "[" + " ".join(sorted(_bare(str(n)) for n in names)) + "]"


def _node_signature(op: Operator, child_sigs: list[str]) -> str:
    """Canonical S-expression for one operator given its children's forms."""
    kind = type(op).__name__.lower()
    head: list[str] = [kind]
    if kind == "seqscan":
        head.append(_table_name(op.table))
    elif kind == "indexscan":
        head.append(_table_name(op.table))
        head.append(_bare(op.key))
        head.append(repr(op.low))
        head.append(repr(op.high))
    elif kind == "samplescan":
        head.append(_table_name(op.table))
        head.append(repr(op.fraction))
        head.append(repr(op.seed))
    elif kind == "filter":
        head.append(canonical_expression(op.predicate))
    elif kind == "project":
        items = []
        for column in op.columns:
            if isinstance(column, tuple):
                _alias, expr = column
                items.append(canonical_expression(expr))
            else:
                items.append(_bare(str(column)))
        head.append("[" + " ".join(sorted(items)) + "]")
    elif kind == "sort":
        # Sort-key *order* is semantics; only qualifiers are stripped.
        head.append("[" + " ".join(_bare(k) for k in op.keys) + "]")
        head.append(f"desc={op.descending}")
    elif kind == "limit":
        head.append(repr(op.n))
    elif kind == "hashjoin":
        head.append(op.join_type)
        head.append(_column_list(op.build_keys))
        head.append(_column_list(op.probe_keys))
    elif kind == "sortmergejoin":
        head.append(_bare(op.left_key))
        head.append(_bare(op.right_key))
    elif kind == "indexnestedloopsjoin":
        head.append(_bare(op.outer_key))
        head.append(_bare(op.inner_key))
    elif kind == "nestedloopsjoin":
        if op.predicate is not None:
            head.append(canonical_expression(op.predicate))
    elif kind in ("hashaggregate", "sortaggregate"):
        head.append(_column_list(op.group_by))
        specs = sorted(
            f"{spec.func}({_bare(spec.column) if spec.column else '*'})"
            for spec in op.aggregates
        )
        head.append("[" + " ".join(specs) + "]")
    # distinct / materialize and any future structural no-arg operator:
    # the kind plus children is the whole signature.
    return "(" + " ".join(head + child_sigs) + ")"


def _digest(signature: str) -> str:
    return hashlib.sha256(signature.encode()).hexdigest()[:_DIGEST_LEN]


@dataclass(frozen=True)
class PlanFingerprint:
    """The canonical identity of a physical plan.

    ``digest`` keys the history store; ``signature`` is the human-readable
    canonical form (``repro history show`` prints it); ``nodes`` maps each
    ``node_id`` of *this* plan instance to its subtree digest — the
    cross-run-stable key for per-node observed cardinalities.
    """

    digest: str
    signature: str
    nodes: dict[int, str] = field(default_factory=dict)


def fingerprint_plan(root: Operator) -> PlanFingerprint:
    """Fingerprint a plan tree (see the module docstring for the grammar)."""
    nodes: dict[int, str] = {}

    def visit(op: Operator) -> str:
        child_sigs = [visit(child) for child in op.children()]
        signature = _node_signature(op, child_sigs)
        if op.node_id is not None:
            nodes[op.node_id] = _digest(signature)
        return signature

    signature = visit(root)
    return PlanFingerprint(digest=_digest(signature), signature=signature, nodes=nodes)


# -- run records ---------------------------------------------------------------


@dataclass(frozen=True)
class RunRecord:
    """One finished run of a fingerprinted plan, as stored in the JSONL log.

    ``estimator_errors`` maps candidate name (``once``/``dne``/``byte``) to
    its mean squared progress error over the run's checkpoints — estimate
    vs. eventual truth at the checkpoint ``t``\\ s ``record_every`` already
    emits. ``node_cards`` maps subtree digests to the operator's final
    ``tuples_emitted``; ``table_rows`` records each base table's row count
    at observation time so feedback consumers can bound staleness.
    """

    fingerprint: str
    signature: str
    mode: str
    wall_time_s: float
    true_total: float
    row_count: int
    curve: list[list[float]] = field(default_factory=list)
    estimator_errors: dict[str, float] = field(default_factory=dict)
    estimator_checkpoints: int = 0
    node_cards: dict[str, float] = field(default_factory=dict)
    table_rows: dict[str, int] = field(default_factory=dict)
    seq: int = 0

    def to_wire(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "signature": self.signature,
            "mode": self.mode,
            "wall_time_s": self.wall_time_s,
            "true_total": self.true_total,
            "row_count": self.row_count,
            "curve": [list(point) for point in self.curve],
            "estimator_errors": dict(self.estimator_errors),
            "estimator_checkpoints": self.estimator_checkpoints,
            "node_cards": dict(self.node_cards),
            "table_rows": dict(self.table_rows),
            "seq": self.seq,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "RunRecord":
        return cls(
            fingerprint=str(data["fingerprint"]),
            signature=str(data.get("signature", "")),
            mode=str(data.get("mode", "once")),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            true_total=float(data.get("true_total", 0.0)),
            row_count=int(data.get("row_count", 0)),
            curve=[list(map(float, p)) for p in data.get("curve", [])],
            estimator_errors={
                str(k): float(v)
                for k, v in data.get("estimator_errors", {}).items()
            },
            estimator_checkpoints=int(data.get("estimator_checkpoints", 0)),
            node_cards={
                str(k): float(v) for k, v in data.get("node_cards", {}).items()
            },
            table_rows={
                str(k): int(v) for k, v in data.get("table_rows", {}).items()
            },
            seq=int(data.get("seq", 0)),
        )


# -- priors --------------------------------------------------------------------


@dataclass(frozen=True)
class EstimatorPrior:
    """Historical accuracy of one candidate estimator on one fingerprint:
    mean squared progress error averaged over ``n`` recorded checkpoints."""

    mse: float
    n: int


@dataclass(frozen=True)
class Prior:
    """Everything the history knows about one plan fingerprint."""

    fingerprint: str
    runs: int
    estimators: dict[str, EstimatorPrior]
    node_cards: dict[str, float]
    table_rows: dict[str, int]
    last_seq: int


def aggregate_prior(fingerprint: str, records: list[RunRecord]) -> Prior | None:
    """Fold a fingerprint's run records into one :class:`Prior`.

    Per-estimator MSEs are checkpoint-weighted means across runs; the
    cardinality snapshot (``node_cards``/``table_rows``) comes from the
    most recent run, which is the one the staleness bound is measured
    against.
    """
    if not records:
        return None
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for record in records:
        weight = max(record.estimator_checkpoints, 1)
        for name, mse in record.estimator_errors.items():
            sums[name] = sums.get(name, 0.0) + mse * weight
            counts[name] = counts.get(name, 0) + weight
    estimators = {
        name: EstimatorPrior(mse=sums[name] / counts[name], n=counts[name])
        for name in sums
    }
    latest = max(records, key=lambda r: r.seq)
    return Prior(
        fingerprint=fingerprint,
        runs=len(records),
        estimators=estimators,
        node_cards=dict(latest.node_cards),
        table_rows=dict(latest.table_rows),
        last_seq=latest.seq,
    )
