"""Robust progress estimation: run history, online ensembles, statistics
feedback (see docs/ROBUST.md)."""

from repro.robust.ensemble import COLD, WARM, EnsembleState
from repro.robust.feedback import (
    build_merged_record,
    build_record,
    observed_view,
    record_merged_run,
    record_run,
)
from repro.robust.history import (
    EstimatorPrior,
    PlanFingerprint,
    Prior,
    RunRecord,
    aggregate_prior,
    canonical_expression,
    fingerprint_plan,
)
from repro.robust.store import HistoryStore

__all__ = [
    "COLD",
    "EnsembleState",
    "EstimatorPrior",
    "HistoryStore",
    "PlanFingerprint",
    "Prior",
    "RunRecord",
    "WARM",
    "aggregate_prior",
    "build_merged_record",
    "build_record",
    "canonical_expression",
    "fingerprint_plan",
    "observed_view",
    "record_merged_run",
    "record_run",
]
