"""Statistics feedback: finished runs teach the optimizer.

On FINISHED, the integration layer (engine / server session) calls
:func:`record_run`: the monitor's ensemble trajectory is scored against
the now-known true total, per-subtree final cardinalities are captured,
and one :class:`~repro.robust.history.RunRecord` is appended to the
store. :func:`observed_view` then projects the whole history into an
:class:`~repro.storage.statistics.ObservedCardinalities` overlay that
:mod:`repro.optimizer.cardinality` consults before its model — observed
counts beat modeled counts for plans the system has actually run, in the
spirit of workload-driven estimation (*Is it Bigger than a Breadbox*).

Staleness is bounded twice (see ``ObservedCardinalities``): an observation
older than ``max_age_runs`` appends, or one whose base tables have
drifted more than ``max_drift`` in row count since observation, falls
back to the model.

This module does no file I/O (lint rule R008): persistence belongs to
:class:`~repro.robust.store.HistoryStore` alone.
"""

from __future__ import annotations

from repro.robust.history import RunRecord, fingerprint_plan
from repro.robust.store import HistoryStore
from repro.storage.statistics import ObservedCardinalities

__all__ = [
    "build_record",
    "observed_view",
    "record_merged_run",
    "record_run",
]

#: Progress-curve points kept per record — enough to plot, cheap to store.
MAX_CURVE_POINTS = 64


def _downsample(points: list[tuple[float, float]]) -> list[list[float]]:
    if len(points) <= MAX_CURVE_POINTS:
        return [[float(a), float(b)] for a, b in points]
    step = len(points) / MAX_CURVE_POINTS
    picked = [points[int(i * step)] for i in range(MAX_CURVE_POINTS)]
    picked[-1] = points[-1]
    return [[float(a), float(b)] for a, b in picked]


def _base_table_rows(root) -> dict[str, int]:
    """Current row count of every base table under ``root``."""
    from repro.executor.plan import walk

    out: dict[str, int] = {}
    for op in walk(root):
        table = getattr(op, "table", None)
        if table is not None:
            name = getattr(table, "base_name", None) or table.name
            out[name] = int(table.num_rows)
    return out


def build_record(monitor, wall_time_s: float, row_count: int) -> RunRecord | None:
    """A :class:`RunRecord` for one finished, history-enabled monitor.

    Returns None when the monitor has no fingerprint/ensemble (history was
    not enabled) — recording is strictly opt-in.
    """
    fingerprint = getattr(monitor, "fingerprint", None)
    ensemble = getattr(monitor, "ensemble", None)
    if fingerprint is None or ensemble is None:
        return None
    true_total = monitor.true_total()
    errors, checkpoints = ensemble.final_errors(true_total)
    node_cards: dict[str, float] = {}
    for node_id, (k_i, _total) in monitor.operator_totals().items():
        digest = fingerprint.nodes.get(node_id)
        if digest is not None:
            node_cards[digest] = float(k_i)
    return RunRecord(
        fingerprint=fingerprint.digest,
        signature=fingerprint.signature,
        mode=monitor.mode,
        wall_time_s=float(wall_time_s),
        true_total=float(true_total),
        row_count=int(row_count),
        curve=_downsample(monitor.progress_curve()),
        estimator_errors=errors,
        estimator_checkpoints=checkpoints,
        node_cards=node_cards,
        table_rows=_base_table_rows(monitor.root),
    )


def record_run(
    monitor,
    store: HistoryStore,
    wall_time_s: float,
    row_count: int,
    observed: ObservedCardinalities | None = None,
) -> RunRecord | None:
    """Score, persist and (optionally) feed back one finished run.

    Returns the appended record, or None when the monitor was not
    history-enabled or the store dropped the write (fault/IO error — the
    caller reads ``store.degraded_reason``). When ``observed`` is given,
    the run's per-subtree cardinalities are folded into it so the next
    compilation sees them immediately, without a store round-trip.
    """
    record = build_record(monitor, wall_time_s, row_count)
    if record is None:
        return None
    if not store.append_run(record):
        return None
    if observed is not None:
        observed.absorb(record.node_cards, record.table_rows, record.seq)
    return record


def build_merged_record(
    fingerprint,
    monitor,
    mode: str,
    wall_time_s: float,
    row_count: int,
    plan,
) -> RunRecord:
    """A :class:`RunRecord` for one finished *partitioned* run.

    ``monitor`` is a
    :class:`~repro.parallel.monitor.PartitionedProgressMonitor`: node
    cardinalities come from its merged per-node counters (already keyed by
    serial node id), estimator errors from the checkpoint-weighted merge
    of the workers' terminal scorings, and the curve from its merged
    snapshot stream. ``plan`` is the *serial* root (for base-table rows).
    """
    true_total = monitor.true_total()
    errors, checkpoints = monitor.merged_estimator_errors()
    node_cards: dict[str, float] = {}
    for node_id, k_i in monitor.merged_counters().items():
        digest = fingerprint.nodes.get(node_id)
        if digest is not None:
            node_cards[digest] = float(k_i)
    return RunRecord(
        fingerprint=fingerprint.digest,
        signature=fingerprint.signature,
        mode=mode,
        wall_time_s=float(wall_time_s),
        true_total=float(true_total),
        row_count=int(row_count),
        curve=_downsample(monitor.progress_curve()),
        estimator_errors=errors,
        estimator_checkpoints=checkpoints,
        node_cards=node_cards,
        table_rows=_base_table_rows(plan),
    )


def record_merged_run(
    fingerprint,
    monitor,
    store: HistoryStore,
    mode: str,
    wall_time_s: float,
    row_count: int,
    plan,
    observed: ObservedCardinalities | None = None,
) -> RunRecord | None:
    """Persist one finished partitioned run (see :func:`record_run`)."""
    record = build_merged_record(
        fingerprint, monitor, mode, wall_time_s, row_count, plan
    )
    if not store.append_run(record):
        return None
    if observed is not None:
        observed.absorb(record.node_cards, record.table_rows, record.seq)
    return record


def observed_view(store: HistoryStore, **kwargs) -> ObservedCardinalities:
    """Project a history store into an optimizer cardinality overlay.

    Records replay oldest-to-newest, so the newest observation of each
    subtree wins; ``kwargs`` forward to :class:`ObservedCardinalities`
    (``max_drift``, ``max_age_runs``).
    """
    observed = ObservedCardinalities(**kwargs)
    for record in store.records():
        observed.absorb(record.node_cards, record.table_rows, record.seq)
    return observed


def plan_fingerprint_digest(root) -> str:
    """Convenience: just the digest of a plan (CLI, tests)."""
    return fingerprint_plan(root).digest
