"""Online ensemble combination of concurrent progress estimators.

König et al. (*A Statistical Approach Towards Robust Progress Estimation*)
observe that every single-estimator progress indicator has workloads where
it is badly wrong early, and that a combination weighted by *observed*
accuracy — seeded from prior executions of the same plan — dominates any
fixed choice. This module is that combiner.

The monitor computes, at every checkpoint, each candidate's total-work
estimate over the identical operator counters (the candidates share one
tick stream and are read-only over it — the differential guarantee). The
ensemble then:

1. scores each candidate **in hindsight**: the progress it claimed at the
   previous checkpoint, ``p_i(t-1) = d(t-1) / T_i(t-1)``, against the
   reference ``d(t-1) / T_ref(t)`` where ``T_ref(t)`` is the **primary
   mode's current** total estimate. The primary is the getnext-model
   estimator the monitor runs anyway; its total converges to the true
   ``T(Q)`` as the run drains, so "the primary's best knowledge *now*"
   is the closest thing to ground truth available mid-run. Scoring is
   deliberately independent of the ensemble weights (no candidate —
   however dominant, e.g. via a stale warm prior — gets to define its
   own truth), and the primary itself is scored the same way: when its
   total refines, its own earlier claims accrue error too;
2. folds the error into an exponentially decayed accumulator
   (``λ = 0.6``), so a candidate that was wrong at startup but converged
   is forgiven, and the shared shock every candidate takes when the
   reference total jumps washes out within a few checkpoints;
3. blends the online error with the history prior by pseudo-counts:
   ``mse_i = (prior_mse_i · n_prior + sse_i) / (n_prior + n_i)`` — a warm
   store dominates the first checkpoints exactly when the online record is
   too short to mean anything, then washes out;
4. weights ``w_i ∝ (1 / (mse_i + ε))³``, normalized; the combined
   progress is ``Σ w_i · p_i(t)``. The exponent sharpens contrast: a
   candidate ten times worse gets a thousandth of the weight, not a
   tenth — see :data:`CONTRAST`.

Cold start (no history, or a degraded store) is the uniform prior: every
candidate starts at the same weight and the online record takes over
within a few checkpoints.

Thread safety: an :class:`EnsembleState` is owned by one
:class:`~repro.core.progress.ProgressMonitor` and is only ever touched
from ``_snapshot_locked`` — i.e. under the monitor's TickBus-carried
sampling lock. It takes no lock of its own (a second lock under the
sampling lock would only add an X004 ordering edge for nothing).
"""

from __future__ import annotations

__all__ = ["EnsembleState", "COLD", "WARM"]

#: ``prior_source`` wire values.
WARM = "warm"
COLD = "cold"

#: Exponential decay applied to the online squared-error record per step.
#: Aggressive by design: when the reference total jumps (a join's output
#: estimate materializing), *every* candidate's past claims accrue the
#: same hindsight error — a shared shock with zero information about
#: relative accuracy. A short memory washes that shock in 2-3
#: checkpoints, so the weights re-concentrate on whoever tracks the
#: refined total instead of stalling at uniform.
DECAY = 0.6

#: Regularizer added to every MSE before inversion — bounds the weight
#: ratio between a perfect candidate and a terrible one. Deliberately
#: tiny: a candidate whose hindsight record is ~perfect (the primary on
#: a stable plan) must be able to dominate wildly-wrong ones fast; the
#: decayed error window (not this floor) is what keeps weights mobile.
EPSILON = 1e-6

#: Exponent applied to the inverse MSE before normalizing. 1 is the
#: classic inverse-error mixture; higher values sharpen the contrast so
#: a candidate an order of magnitude worse carries ~no weight instead
#: of a stubborn few percent — that residual is pure contamination on
#: workloads where one estimator is simply right.
CONTRAST = 3.0

#: Cap on the pseudo-count a history prior may carry: history informs the
#: opening weights, the live run owns the endgame.
MAX_PRIOR_COUNT = 32.0


class EnsembleState:
    """Inverse-squared-error weighting over candidate estimators.

    Parameters
    ----------
    candidates:
        Candidate names (``once``/``dne``/``byte``); the first entry is
        the primary mode, whose current total anchors hindsight scoring.
    priors:
        Per-candidate ``(mse, n)`` from :meth:`HistoryStore.prior`; an
        empty/missing mapping is the uniform cold start.
    """

    def __init__(
        self,
        candidates: tuple[str, ...],
        priors: dict[str, tuple[float, int]] | None = None,
    ):
        self.candidates = tuple(candidates)
        self.priors: dict[str, tuple[float, float]] = {}
        for name in self.candidates:
            prior = (priors or {}).get(name)
            if prior is not None and prior[1] > 0:
                self.priors[name] = (
                    max(float(prior[0]), 0.0),
                    min(float(prior[1]), MAX_PRIOR_COUNT),
                )
        self.prior_source = WARM if self.priors else COLD
        self._sse = {name: 0.0 for name in self.candidates}
        self._n = {name: 0.0 for name in self.candidates}
        self._weights = self._weights_from_errors()
        self._prev_progress: dict[str, float] | None = None
        self._prev_done = 0.0
        #: ``(work_done, {candidate: total})`` per checkpoint — replayed
        #: against the true total at FINISHED to score this run.
        self.trajectory: list[tuple[float, dict[str, float]]] = []

    # -- weighting ---------------------------------------------------------

    def _effective_mse(self, name: str) -> float:
        prior_mse, prior_n = self.priors.get(name, (0.0, 0.0))
        n = prior_n + self._n[name]
        if n <= 0:
            return 0.0  # uniform: every untouched candidate ties
        return (prior_mse * prior_n + self._sse[name]) / n

    def _weights_from_errors(self) -> dict[str, float]:
        raw = {
            name: (1.0 / (self._effective_mse(name) + EPSILON)) ** CONTRAST
            for name in self.candidates
        }
        total = sum(raw.values())
        if total <= 0:  # pragma: no cover - defensive
            uniform = 1.0 / max(len(self.candidates), 1)
            return {name: uniform for name in self.candidates}
        return {name: value / total for name, value in raw.items()}

    @staticmethod
    def _progress(done: float, total: float) -> float:
        if total <= 0:
            return 0.0
        return min(done / total, 1.0)


    def update(
        self, work_done: float, totals: dict[str, float]
    ) -> tuple[float, dict[str, float]]:
        """Fold one checkpoint; returns ``(combined progress, weights)``.

        ``totals`` maps each candidate to its current total-work estimate
        over the shared counters. Must be called under the owning
        monitor's sampling lock (it is — only ``_snapshot_locked`` calls
        here).
        """
        progress = {
            name: self._progress(work_done, totals.get(name, 0.0))
            for name in self.candidates
        }
        # Hindsight reference: the primary mode's *current* total estimate
        # (candidates[0]) — the system's best mid-run belief of T(Q); it
        # converges to the truth as the run drains. Weight-independent by
        # design (see the module docstring).
        ref_total = totals.get(self.candidates[0], 0.0)
        if (
            self._prev_progress is not None
            and work_done > self._prev_done > 0
            and ref_total > 0
        ):
            # Hindsight target: where checkpoint t-1 actually was, assuming
            # the current reference total is the best guess of T(Q).
            target = self._progress(self._prev_done, ref_total)
            for name in self.candidates:
                err = self._prev_progress[name] - target
                self._sse[name] = DECAY * self._sse[name] + err * err
                self._n[name] = DECAY * self._n[name] + 1.0
            self._weights = self._weights_from_errors()
        combined = sum(
            self._weights[name] * progress[name] for name in self.candidates
        )
        combined = min(max(combined, 0.0), 1.0)
        self._prev_progress = progress
        self._prev_done = work_done
        self.trajectory.append((work_done, dict(totals)))
        return combined, dict(self._weights)

    # -- post-run scoring --------------------------------------------------

    def final_errors(self, true_total: float) -> tuple[dict[str, float], int]:
        """Mean squared progress error per candidate over the recorded
        trajectory, against the now-known true total. Feeds the history
        record that becomes the next run's prior."""
        if true_total <= 0 or not self.trajectory:
            return {}, 0
        sums = {name: 0.0 for name in self.candidates}
        count = 0
        for done, totals in self.trajectory:
            actual = self._progress(done, true_total)
            count += 1
            for name in self.candidates:
                err = self._progress(done, totals.get(name, 0.0)) - actual
                sums[name] += err * err
        return {name: sums[name] / count for name in self.candidates}, count
