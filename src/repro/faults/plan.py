"""Seeded, deterministic fault injection.

A :class:`FaultPlan` decides — reproducibly — when a *named injection
site* misbehaves. Sites are thin probes compiled into the hot paths of the
executor, the estimator hooks and the server's socket plumbing; each one
costs a single ``is None`` check when no plan is installed, so production
runs pay nothing (the overhead guard enforces this).

Sites
-----
========================  =====================================================
``cursor.fetch``          fired by :meth:`PlanCursor.fetch` *before* the pull
                          enters the plan. Error faults here default to
                          :class:`TransientFault` — nothing is mid-flight yet,
                          so a session may retry the quantum (the storage-
                          hiccup model: the read fails before the getnext call
                          is dispatched).
``operator.pull``         fired by ``Operator.next``/``next_batch`` on every
                          operator. Errors are fatal (:class:`InjectedFault`):
                          generator-based operators cannot resume across an
                          unwound exception, so a fault inside the plan must
                          fail the query rather than silently lose rows.
``scan.read``             fired by the scan operators before reading storage.
``estimator.hook``        fired inside the hardened estimator-hook wrappers
                          (see :meth:`EstimationManager.harden`); with
                          degradation enabled, an error here demotes the
                          estimator to dne instead of killing the query.
``server.read``           fired per request line read from a client socket.
``server.write``          fired per reply/stream line written to a client.
``worker.spawn``          fired by the parallel coordinator before starting
                          each worker process; an error here degrades the
                          fragment to inline execution (or fails the query
                          when degradation is off).
``worker.exec``           fired inside parallel workers between fetches. An
                          ``error`` kind is a *hard kill* — the worker exits
                          without a word, exactly like a crashed or OOM-killed
                          process — so the coordinator's death handling (EOF
                          on the delta pipe) is what gets exercised.
``history.read``          fired when :class:`~repro.robust.HistoryStore` loads
                          run records (prior lookup). A fault degrades the
                          monitor to cold-start priors — it never fails the
                          query.
``history.write``         fired when the history store appends a run record.
                          A fault drops the record and flags the session
                          ``degraded``; the query result is untouched.
========================  =====================================================

Fault kinds
-----------
``error``       raise :class:`InjectedFault` (or :class:`TransientFault` when
                the spec is retryable);
``stall``       sleep ``delay_s`` seconds (a latency spike);
``short_read``  degrade the operation: batch pulls shrink their row budget,
                socket reads/writes truncate the frame mid-line.

Scheduling is per spec: a probability ``rate`` drawn from a seeded
per-site RNG stream (:func:`repro.common.rng.make_rng`, so runs are
reproducible), or a deterministic ``every``-N cadence; both respect an
``after`` warm-up and a ``count`` budget. Every firing is recorded, and
:meth:`FaultPlan.to_wire` serializes plan + firing log — the chaos harness
dumps it on failure so any run can be replayed.

The ``REPRO_FAULTS`` environment variable installs a plan into any
:class:`~repro.server.service.ProgressService` without code changes (see
:func:`parse_fault_spec` for the grammar), which is how the TCP server is
chaos-tested from outside.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.common.rng import make_rng

__all__ = [
    "ALL_SITES",
    "ENV_VAR",
    "ERROR",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "SHORT_READ",
    "SITE_CURSOR_FETCH",
    "SITE_ESTIMATOR_HOOK",
    "SITE_HISTORY_READ",
    "SITE_HISTORY_WRITE",
    "SITE_OPERATOR_PULL",
    "SITE_SCAN_READ",
    "SITE_SERVER_READ",
    "SITE_SERVER_WRITE",
    "STALL",
    "TransientFault",
    "parse_fault_spec",
    "plan_from_env",
]

#: Environment variable holding a fault-spec string (see the module
#: docstring); read by :func:`plan_from_env`.
ENV_VAR = "REPRO_FAULTS"

# -- fault kinds ---------------------------------------------------------------

ERROR = "error"
STALL = "stall"
SHORT_READ = "short_read"
KINDS = (ERROR, STALL, SHORT_READ)

# -- injection sites -----------------------------------------------------------

SITE_CURSOR_FETCH = "cursor.fetch"
SITE_OPERATOR_PULL = "operator.pull"
SITE_SCAN_READ = "scan.read"
SITE_ESTIMATOR_HOOK = "estimator.hook"
SITE_SERVER_READ = "server.read"
SITE_SERVER_WRITE = "server.write"
SITE_WORKER_SPAWN = "worker.spawn"
SITE_WORKER_EXEC = "worker.exec"
SITE_HISTORY_READ = "history.read"
SITE_HISTORY_WRITE = "history.write"

ALL_SITES = frozenset(
    {
        SITE_CURSOR_FETCH,
        SITE_OPERATOR_PULL,
        SITE_SCAN_READ,
        SITE_ESTIMATOR_HOOK,
        SITE_SERVER_READ,
        SITE_SERVER_WRITE,
        SITE_WORKER_SPAWN,
        SITE_WORKER_EXEC,
        SITE_HISTORY_READ,
        SITE_HISTORY_WRITE,
    }
)


class InjectedFault(ReproError):
    """A deterministic fault fired by an installed :class:`FaultPlan`.

    Fatal wherever it surfaces: sessions report FAILED, the engine lets it
    propagate. ``site`` names the injection site that fired."""

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site


class TransientFault(InjectedFault):
    """A retryable injected fault: raised only at points where no executor
    state is mid-flight (the ``cursor.fetch`` boundary), so the caller may
    safely retry the operation. :meth:`QuerySession.step` consumes its
    per-session retry budget on these instead of failing the query."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled misbehaviour at one injection site.

    Parameters
    ----------
    site:
        One of :data:`ALL_SITES`.
    kind:
        ``error`` / ``stall`` / ``short_read``.
    rate:
        Probability per opportunity, drawn from the plan's seeded per-site
        RNG stream. Ignored when ``every`` is set.
    every:
        Deterministic cadence: fire on every ``every``-th opportunity
        (after the ``after`` warm-up).
    count:
        Total firing budget; ``None`` means unlimited.
    after:
        Number of opportunities to skip before the spec arms.
    delay_s:
        Stall duration for ``kind="stall"``.
    retryable:
        For ``kind="error"``: raise :class:`TransientFault` instead of
        :class:`InjectedFault`. ``None`` defaults to True at the
        ``cursor.fetch`` site (the one resumable boundary) and False
        everywhere else.
    """

    site: str
    kind: str = ERROR
    rate: float = 0.0
    every: int | None = None
    count: int | None = 1
    after: int = 0
    delay_s: float = 0.001
    retryable: bool | None = None

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise ValueError(
                f"unknown injection site {self.site!r}; sites: {sorted(ALL_SITES)}"
            )
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.every is None and self.rate == 0.0:
            raise ValueError("spec can never fire: set rate > 0 or every=N")

    @property
    def is_retryable(self) -> bool:
        if self.retryable is not None:
            return self.retryable
        return self.site == SITE_CURSOR_FETCH

    def to_wire(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "rate": self.rate,
            "every": self.every,
            "count": self.count,
            "after": self.after,
            "delay_s": self.delay_s,
            "retryable": self.retryable,
        }


class FaultPlan:
    """A seeded schedule of faults over the named injection sites.

    Thread-safe: scheduling state (opportunity counters, firing budgets,
    the firing log) lives under one private mutex, so a plan may be shared
    by every session of a service. Determinism is per thread-interleaving:
    a single-threaded run with the same seed and specs always fires
    identically, and every firing is recorded for replay either way.
    """

    # Lock discipline (machine-checked by repro.analysis.concurrency):
    # every decision — counters, budgets and the firing log — happens
    # under ``_lock``. Spec tables and RNG streams are built in __init__
    # and never rebound, so site lookups stay lock-free (the cheap
    # ``has_site`` fast path the injection probes rely on).
    _guarded_by_ = {"_seen": "_lock", "_fired": "_lock", "_records": "_lock"}

    def __init__(self, seed: int = 0, specs: tuple[FaultSpec, ...] | list[FaultSpec] = ()):
        self.seed = int(seed)
        by_site: dict[str, list[FaultSpec]] = {}
        for spec in specs:
            by_site.setdefault(spec.site, []).append(spec)
        self._specs: dict[str, tuple[FaultSpec, ...]] = {
            site: tuple(site_specs) for site, site_specs in by_site.items()
        }
        self._rngs = {
            site: make_rng(self.seed, "faults", site) for site in self._specs
        }
        self._lock = threading.Lock()
        self._seen: dict[str, int] = {}
        self._fired: dict[tuple[str, int], int] = {}
        self._records: list[dict] = []

    # -- introspection -----------------------------------------------------------

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        return tuple(s for site in sorted(self._specs) for s in self._specs[site])

    def has_site(self, *sites: str) -> bool:
        """Does any spec target one of ``sites``? Lock-free (the spec table
        is immutable after construction)."""
        return any(site in self._specs for site in sites)

    def records(self) -> list[dict]:
        """Copy of the firing log: one entry per injected fault."""
        with self._lock:
            return list(self._records)

    def to_wire(self) -> dict:
        """JSON-ready description of the plan plus everything it fired —
        enough to reconstruct and replay a chaos schedule."""
        with self._lock:
            fired = list(self._records)
        return {
            "seed": self.seed,
            "specs": [spec.to_wire() for spec in self.specs],
            "fired": fired,
        }

    # -- the injection probe API --------------------------------------------------

    def check(self, site: str, detail: str = "") -> FaultSpec | None:
        """Record one opportunity at ``site``; return the spec that fires,
        if any. Does not act on the fault — :meth:`fire` does."""
        specs = self._specs.get(site)
        if not specs:
            return None
        with self._lock:
            n = self._seen.get(site, 0) + 1
            self._seen[site] = n
            for idx, spec in enumerate(specs):
                key = (site, idx)
                fired = self._fired.get(key, 0)
                if spec.count is not None and fired >= spec.count:
                    continue
                if n <= spec.after:
                    continue
                if spec.every is not None:
                    hit = (n - spec.after) % spec.every == 0
                else:
                    hit = float(self._rngs[site].random()) < spec.rate
                if not hit:
                    continue
                self._fired[key] = fired + 1
                self._records.append(
                    {
                        "site": site,
                        "kind": spec.kind,
                        "opportunity": n,
                        "detail": detail,
                    }
                )
                return spec
        return None

    def fire(self, site: str, detail: str = "") -> FaultSpec | None:
        """The probe entry point: decide, then act.

        * ``error`` — raises :class:`TransientFault` (retryable specs) or
          :class:`InjectedFault`;
        * ``stall`` — sleeps ``delay_s`` and returns the spec;
        * ``short_read`` — returns the spec; the *caller* interprets it
          (shrink the batch, truncate the frame) because only the call
          site knows what a short read means there.

        Returns ``None`` when nothing fires — the common case, one dict
        lookup deep.
        """
        spec = self.check(site, detail)
        if spec is None:
            return None
        if spec.kind == ERROR:
            message = f"injected fault at {site}" + (f" ({detail})" if detail else "")
            if spec.is_retryable:
                raise TransientFault(message, site=site)
            raise InjectedFault(message, site=site)
        if spec.kind == STALL:
            time.sleep(spec.delay_s)
        return spec

    @staticmethod
    def short_read(n: int) -> int:
        """The degraded budget a ``short_read`` fault leaves behind: at
        least 1 so a shortened pull can never masquerade as exhaustion."""
        return max(1, n // 2)


# -- the REPRO_FAULTS spec grammar ---------------------------------------------

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


def _parse_options(parts: list[str], clause: str) -> dict:
    options: dict = {}
    for part in parts:
        if "=" not in part:
            raise ValueError(f"bad option {part!r} in fault clause {clause!r}")
        key, _, raw = part.partition("=")
        key = key.strip()
        raw = raw.strip()
        if key == "rate":
            options["rate"] = float(raw)
        elif key == "every":
            options["every"] = int(raw)
        elif key == "count":
            options["count"] = None if raw in ("inf", "none") else int(raw)
        elif key == "after":
            options["after"] = int(raw)
        elif key in ("delay", "delay_s"):
            options["delay_s"] = float(raw)
        elif key == "retryable":
            if raw not in _TRUE | _FALSE:
                raise ValueError(f"retryable must be a boolean, got {raw!r}")
            options["retryable"] = raw in _TRUE
        else:
            raise ValueError(f"unknown option {key!r} in fault clause {clause!r}")
    return options


def parse_fault_spec(text: str) -> FaultPlan | None:
    """Parse the ``REPRO_FAULTS`` grammar into a :class:`FaultPlan`.

    Grammar (whitespace-insensitive)::

        spec    := [clause (";" clause)*]
        clause  := "seed=" INT
                 | site ":" kind (":" option)*
        site    := cursor.fetch | operator.pull | scan.read
                 | estimator.hook | server.read | server.write
                 | worker.spawn | worker.exec
                 | history.read | history.write
        kind    := error | stall | short_read
        option  := rate=FLOAT | every=INT | count=INT|inf | after=INT
                 | delay_s=FLOAT | retryable=BOOL

    Example::

        seed=42; scan.read:error:rate=0.01:count=2; server.write:short_read:every=7

    Returns ``None`` for an empty/blank spec. Raises :class:`ValueError`
    on malformed input — a typo in a chaos schedule must fail loudly, not
    silently inject nothing.
    """
    if text is None:
        return None
    seed = 0
    specs: list[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            seed = int(clause[len("seed="):].strip())
            continue
        parts = [p.strip() for p in clause.split(":")]
        if len(parts) < 2:
            raise ValueError(
                f"fault clause {clause!r} needs at least site:kind"
            )
        site, kind = parts[0], parts[1]
        options = _parse_options(parts[2:], clause)
        if kind != ERROR and "every" not in options and "rate" not in options:
            options.setdefault("every", 1)
        specs.append(FaultSpec(site=site, kind=kind, **options))
    if not specs:
        return None
    return FaultPlan(seed=seed, specs=tuple(specs))


def plan_from_env(environ: dict | None = None) -> FaultPlan | None:
    """Build a plan from ``REPRO_FAULTS`` in ``environ`` (default
    ``os.environ``); ``None`` when unset or blank."""
    env = os.environ if environ is None else environ
    return parse_fault_spec(env.get(ENV_VAR, ""))
