"""Customer-table presets matching the paper's accuracy experiments.

Section 5.1.1: experiments run on tables "complying with the customer and
nation schemas of the TPC-H specification", restricted to the ``nationkey``
attribute, with the generating function of ``nationkey`` modified so the
column follows a Zipfian distribution with skew ``z`` over a domain
``[1..n]``. ``C_{z,n}`` in the paper denotes such a table;
superscripts (``C¹``, ``C²``) denote variants with the same skew but an
independently permuted assignment of frequencies to values.

:func:`customer_variant` builds exactly these tables (150K rows by default,
the SF-1 customer row count). :func:`customer_variant_with_custkey`
additionally replaces the ``custkey`` primary key with a second skewed
column, as the Figure 6 pipeline experiments require ("we replace the
primary key column custkey for the customer relation with a skewed
distribution on a domain with 25K elements").
"""

from __future__ import annotations

from repro.datagen.zipf import ZipfDistribution
from repro.storage.schema import Schema
from repro.storage.table import DEFAULT_BLOCK_SIZE, Table

__all__ = ["customer_variant", "customer_variant_with_custkey"]

PAPER_CUSTOMER_ROWS = 150_000


def customer_variant(
    z: float,
    domain_size: int,
    variant: int = 0,
    num_rows: int = PAPER_CUSTOMER_ROWS,
    seed: int = 42,
    name: str | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    peak_stride: int = 3,
) -> Table:
    """Build ``C^variant_{z,domain_size}``: a customer table whose
    ``nationkey`` column is Zipf(z) over ``[1..domain_size]``.

    Variants use *rank-shifted* alignment: variant k's rank-to-value map is
    rotated by ``k * peak_stride``, so each variant's hot values differ (the
    paper's "peak value frequency corresponds to different values") while
    tails overlap enough that joins between variants stay non-degenerate at
    any skew. The table keeps the sequential ``custkey`` primary key and a
    short name payload. Tuples are in i.i.d. (hence random) order, matching
    the paper's randomly-ordered-stream assumption for base-table scans.
    """
    dist = ZipfDistribution(
        domain_size, z, variant=variant, seed=seed, shift=variant * peak_stride
    )
    nationkeys = dist.sample(num_rows)
    rows = (
        (k + 1, f"Customer#{k + 1:09d}", int(nationkeys[k]))
        for k in range(num_rows)
    )
    table_name = name or _default_name("customer", {"z": z, "n": domain_size, "v": variant})
    schema = Schema.of("custkey:int", "name:str", "nationkey:int")
    return Table(table_name, schema, rows, block_size)


def _default_name(prefix: str, params: dict[str, object]) -> str:
    """Parameter-encoding table name; dots would collide with qualified
    column syntax, so fractional values use 'p' (z=1.5 -> z1p5)."""
    parts = [f"{k}{str(v).replace('.', 'p')}" for k, v in params.items()]
    return "_".join([prefix] + parts)


def customer_variant_with_custkey(
    nation_z: float,
    custkey_z: float,
    domain_size: int = 25_000,
    variant: int = 0,
    num_rows: int = PAPER_CUSTOMER_ROWS,
    seed: int = 42,
    name: str | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    peak_stride: int = 3,
) -> Table:
    """Figure-6 style customer table: *both* ``custkey`` and ``nationkey``
    are independently skewed over ``[1..domain_size]``.

    Both columns use rank-shifted variant alignment (see
    :func:`customer_variant`); the custkey map is additionally offset so
    the two columns' hot values differ, and their sample streams are
    decorrelated — the two columns are independent, matching the paper's
    column-independence assumption.
    """
    nation_dist = ZipfDistribution(
        domain_size, nation_z, variant=variant, seed=seed,
        shift=variant * peak_stride,
    )
    cust_dist = ZipfDistribution(
        domain_size, custkey_z, variant=variant + 1000, seed=seed,
        shift=variant * peak_stride + peak_stride * 2 + 1,
    )
    nationkeys = nation_dist.sample(num_rows)
    custkeys = cust_dist.sample(num_rows, stream=7)
    rows = (
        (int(custkeys[k]), f"Customer#{k + 1:09d}", int(nationkeys[k]))
        for k in range(num_rows)
    )
    table_name = name or _default_name(
        "customer",
        {"ck": custkey_z, "nk": nation_z, "n": domain_size, "v": variant},
    )
    schema = Schema.of("custkey:int", "name:str", "nationkey:int")
    return Table(table_name, schema, rows, block_size)
