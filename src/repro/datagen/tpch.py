"""TPC-H-shaped table generators at fractional scale factors.

Row counts follow the TPC-H specification scaled by ``sf``: lineitem
6M·sf, orders 1.5M·sf, customer 150K·sf, part 200K·sf, supplier 10K·sf,
partsupp 800K·sf, nation 25, region 5. Foreign keys reference existing
primary keys; ``skew_z > 0`` replaces the uniform foreign-key choice with a
Zipfian one (the paper's "database populated with Zipfian skew 2 data"),
which concentrates orders on few customers, lineitems on few orders/parts/
suppliers, and customers on few nations.

String payloads are short deterministic tags — enough to give rows realistic
width under the byte model without bloating memory.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.datagen.zipf import ZipfDistribution
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema
from repro.storage.table import DEFAULT_BLOCK_SIZE, Table

__all__ = ["TPCH_TABLE_NAMES", "generate_tpch"]

TPCH_TABLE_NAMES = (
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
)

_REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
_ORDER_STATUS = ("F", "O", "P")


def _fk_choice(
    n_keys: int, size: int, skew_z: float, seed: int, label: str
) -> np.ndarray:
    """Draw ``size`` foreign keys from ``1..n_keys``; Zipfian when skewed.

    Skewed keys are *not* rank-permuted: low key values are the hot ones,
    as in Chaudhuri & Narasayya's skewed dbgen. This makes skew visible to
    range predicates (``partkey <= k`` captures the hot parts), which is
    what defeats the optimizer's uniformity assumption in the Q8 workload.
    """
    if skew_z > 0:
        dist = ZipfDistribution(n_keys, skew_z, variant=0, seed=seed, permute=False)
        # Use the label to decorrelate streams between columns.
        return dist.sample(size, stream=hash(label) & 0x7FFFFFFF)
    rng = make_rng(seed, "tpch-fk", label)
    return rng.integers(1, n_keys + 1, size=size)


def generate_tpch(
    sf: float = 0.01,
    seed: int = 42,
    skew_z: float = 0.0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    catalog: Catalog | None = None,
    tables: tuple[str, ...] = TPCH_TABLE_NAMES,
) -> Catalog:
    """Generate the TPC-H-shaped database and register it into a catalog.

    Parameters
    ----------
    sf:
        Scale factor; 1.0 matches TPC-H row counts (6M lineitems). The
        pure-Python executor is typically driven at 0.001-0.05.
    skew_z:
        Zipf skew applied to foreign-key columns (0 = spec-uniform).
    tables:
        Subset of tables to generate (dependencies must be included, e.g.
        ``orders`` needs ``customer``).
    """
    if sf <= 0:
        raise ValueError(f"scale factor must be > 0, got {sf}")
    catalog = catalog if catalog is not None else Catalog()

    n_region = 5
    n_nation = 25
    n_supplier = max(int(10_000 * sf), 1)
    n_customer = max(int(150_000 * sf), 1)
    n_part = max(int(200_000 * sf), 1)
    n_partsupp_per_part = 4
    n_orders = max(int(1_500_000 * sf), 1)
    n_lineitem_avg = 4  # spec averages ~4 lineitems per order

    if "region" in tables:
        rows = [(k + 1, _REGION_NAMES[k]) for k in range(n_region)]
        catalog.register(
            Table("region", Schema.of("regionkey:int", "name:str"), rows, block_size)
        )

    if "nation" in tables:
        rng = make_rng(seed, "nation")
        rows = [
            (k + 1, f"NATION#{k + 1:02d}", int(rng.integers(1, n_region + 1)))
            for k in range(n_nation)
        ]
        catalog.register(
            Table(
                "nation",
                Schema.of("nationkey:int", "name:str", "regionkey:int"),
                rows,
                block_size,
            )
        )

    if "supplier" in tables:
        nkeys = _fk_choice(n_nation, n_supplier, skew_z, seed, "supplier.nationkey")
        rng = make_rng(seed, "supplier")
        bal = rng.uniform(-999.99, 9999.99, size=n_supplier)
        rows = [
            (k + 1, f"Supplier#{k + 1:09d}", int(nkeys[k]), round(float(bal[k]), 2))
            for k in range(n_supplier)
        ]
        catalog.register(
            Table(
                "supplier",
                Schema.of("suppkey:int", "name:str", "nationkey:int", "acctbal:float"),
                rows,
                block_size,
            )
        )

    if "customer" in tables:
        nkeys = _fk_choice(n_nation, n_customer, skew_z, seed, "customer.nationkey")
        rng = make_rng(seed, "customer")
        bal = rng.uniform(-999.99, 9999.99, size=n_customer)
        seg = rng.integers(0, len(_SEGMENTS), size=n_customer)
        rows = [
            (
                k + 1,
                f"Customer#{k + 1:09d}",
                int(nkeys[k]),
                round(float(bal[k]), 2),
                _SEGMENTS[seg[k]],
            )
            for k in range(n_customer)
        ]
        catalog.register(
            Table(
                "customer",
                Schema.of(
                    "custkey:int",
                    "name:str",
                    "nationkey:int",
                    "acctbal:float",
                    "mktsegment:str",
                ),
                rows,
                block_size,
            )
        )

    if "part" in tables:
        rng = make_rng(seed, "part")
        size = rng.integers(1, 51, size=n_part)
        rows = [
            (k + 1, f"Part#{k + 1:09d}", f"TYPE#{(k % 150) + 1}", int(size[k]))
            for k in range(n_part)
        ]
        catalog.register(
            Table(
                "part",
                Schema.of("partkey:int", "name:str", "type:str", "size:int"),
                rows,
                block_size,
            )
        )

    if "partsupp" in tables:
        rng = make_rng(seed, "partsupp")
        rows = []
        for pk in range(1, n_part + 1):
            for j in range(n_partsupp_per_part):
                sk = ((pk + j * (n_supplier // n_partsupp_per_part + 1)) % n_supplier) + 1
                qty = int(rng.integers(1, 10_000))
                rows.append((pk, sk, qty))
        catalog.register(
            Table(
                "partsupp",
                Schema.of("partkey:int", "suppkey:int", "availqty:int"),
                rows,
                block_size,
            )
        )

    if "orders" in tables:
        ckeys = _fk_choice(n_customer, n_orders, skew_z, seed, "orders.custkey")
        rng = make_rng(seed, "orders")
        price = rng.uniform(1_000.0, 500_000.0, size=n_orders)
        status = rng.integers(0, len(_ORDER_STATUS), size=n_orders)
        dates = rng.integers(19920101, 19981231, size=n_orders)
        rows = [
            (
                k + 1,
                int(ckeys[k]),
                _ORDER_STATUS[status[k]],
                round(float(price[k]), 2),
                int(dates[k]),
            )
            for k in range(n_orders)
        ]
        catalog.register(
            Table(
                "orders",
                Schema.of(
                    "orderkey:int",
                    "custkey:int",
                    "orderstatus:str",
                    "totalprice:float",
                    "orderdate:int",
                ),
                rows,
                block_size,
            )
        )

    if "lineitem" in tables:
        n_lineitem = n_orders * n_lineitem_avg
        okeys = _fk_choice(n_orders, n_lineitem, skew_z, seed, "lineitem.orderkey")
        pkeys = _fk_choice(n_part, n_lineitem, skew_z, seed, "lineitem.partkey")
        skeys = _fk_choice(n_supplier, n_lineitem, skew_z, seed, "lineitem.suppkey")
        rng = make_rng(seed, "lineitem")
        qty = rng.integers(1, 51, size=n_lineitem)
        price = rng.uniform(900.0, 105_000.0, size=n_lineitem)
        disc = rng.uniform(0.0, 0.1, size=n_lineitem)
        rows = [
            (
                int(okeys[k]),
                int(pkeys[k]),
                int(skeys[k]),
                k + 1,
                int(qty[k]),
                round(float(price[k]), 2),
                round(float(disc[k]), 4),
            )
            for k in range(n_lineitem)
        ]
        catalog.register(
            Table(
                "lineitem",
                Schema.of(
                    "orderkey:int",
                    "partkey:int",
                    "suppkey:int",
                    "linenumber:int",
                    "quantity:int",
                    "extendedprice:float",
                    "discount:float",
                ),
                rows,
                block_size,
            )
        )

    return catalog
