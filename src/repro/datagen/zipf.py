"""Seeded Zipfian value streams with permuted rank-to-value maps.

A Zipf(z) distribution over a domain of ``n`` values assigns the rank-``i``
value probability proportional to ``1 / i**z`` (``z = 0`` is uniform). The
paper's experiments join two columns that share ``z`` and ``n`` but whose
high-frequency values differ — "the values with a high frequency in one table
may have a low frequency in another table", the adversarial case for
frequency-oblivious estimators. We model this with a *variant id*: each
variant applies an independent seeded permutation mapping ranks to domain
values, so ``ZipfDistribution(n, z, variant=0)`` and ``variant=1`` are
identically skewed but differently aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.common.rng import make_rng

__all__ = ["ZipfDistribution", "zipf_pmf"]


@lru_cache(maxsize=64)
def _zipf_pmf_cached(n: int, z: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-z)
    return weights / weights.sum()


def zipf_pmf(n: int, z: float) -> np.ndarray:
    """Probability mass function of Zipf(z) over ranks ``1..n``.

    Returned array is shared across calls; treat it as read-only.
    """
    if n < 1:
        raise ValueError(f"domain size must be >= 1, got {n}")
    if z < 0:
        raise ValueError(f"skew must be >= 0, got {z}")
    return _zipf_pmf_cached(int(n), float(z))


@dataclass(frozen=True)
class ZipfDistribution:
    """A Zipfian distribution over domain values ``1..domain_size``.

    Parameters
    ----------
    domain_size:
        Number of distinct values in the domain.
    z:
        Zipf skew parameter; 0 means uniform.
    variant:
        Which rank-to-value permutation to use. ``variant=0`` with
        ``permute=False`` maps rank ``i`` to value ``i`` directly.
    seed:
        Base seed; the permutation and sampling streams derive from it.
    permute:
        Whether to permute the rank-to-value map at all. Permutation makes
        variants *fully* decorrelated — for high skew this is stronger than
        the paper's requirement ("peak value frequency corresponds to
        different values") and can make equijoins between variants
        degenerate. For those experiments use ``shift`` instead.
    shift:
        If not None, disables permutation and instead *rotates* the
        rank-to-value map by ``shift`` positions: rank i maps to value
        ``((i + shift) mod n) + 1``. Two distributions with different
        shifts have different peak values but overlapping tails — exactly
        the paper's variant semantics, with non-degenerate join sizes at
        any skew.
    """

    domain_size: int
    z: float
    variant: int = 0
    seed: int = 0
    permute: bool = True
    shift: int | None = None

    @property
    def pmf(self) -> np.ndarray:
        """PMF indexed by rank (rank 1 first)."""
        return zipf_pmf(self.domain_size, self.z)

    def rank_to_value(self) -> np.ndarray:
        """Array mapping rank index (0-based) to domain value (1-based)."""
        if self.shift is not None:
            ranks = np.arange(self.domain_size, dtype=np.int64)
            return (ranks + self.shift) % self.domain_size + 1
        values = np.arange(1, self.domain_size + 1, dtype=np.int64)
        if not self.permute:
            return values
        rng = make_rng(self.seed, "zipf-perm", self.domain_size, self.z, self.variant)
        return rng.permutation(values)

    def value_probabilities(self) -> dict[int, float]:
        """Mapping from domain value to its probability."""
        mapping = self.rank_to_value()
        pmf = self.pmf
        return {int(mapping[i]): float(pmf[i]) for i in range(self.domain_size)}

    def sample(self, size: int, stream: int = 0) -> np.ndarray:
        """Draw ``size`` values i.i.d. from the distribution."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        rng = make_rng(
            self.seed, "zipf-sample", self.domain_size, self.z, self.variant, stream
        )
        mapping = self.rank_to_value()
        if self.z == 0.0:
            ranks = rng.integers(0, self.domain_size, size=size)
        else:
            ranks = rng.choice(self.domain_size, size=size, p=self.pmf)
        return mapping[ranks]

    def expected_join_size(self, other: "ZipfDistribution", rows_self: int, rows_other: int) -> float:
        """Expected equijoin cardinality of two i.i.d. columns drawn from
        ``self`` (``rows_self`` rows) and ``other`` (``rows_other`` rows):
        ``rows_self * rows_other * Σ_v p_self(v) · p_other(v)``."""
        p_self = self.value_probabilities()
        p_other = other.value_probabilities()
        overlap = sum(p * p_other.get(v, 0.0) for v, p in p_self.items())
        return rows_self * rows_other * overlap
