"""Synthetic data generation.

Substitute for the modified TPC-H ``dbgen`` tool the paper uses ([8],
Chaudhuri & Narasayya's skewed TPC-H generator, further modified by the
authors "to be able to vary the number of distinct values in a table
column"). Provides:

* :mod:`repro.datagen.zipf` — seeded Zipfian value streams over an integer
  domain, with independently permuted rank-to-value maps so two columns can
  share a skew parameter while disagreeing on *which* values are frequent
  (the paper's ``C``, ``C¹``, ``C²`` superscript notation).
* :mod:`repro.datagen.tpch` — TPC-H-shaped tables (nation, region, customer,
  orders, lineitem, supplier, part, partsupp) at fractional scale factors.
* :mod:`repro.datagen.skew` — the exact table presets the paper's accuracy
  experiments use (``C_{z,n}`` customer variants and skewed TPC-H columns).
"""

from repro.datagen.skew import customer_variant, customer_variant_with_custkey
from repro.datagen.tpch import TPCH_TABLE_NAMES, generate_tpch
from repro.datagen.zipf import ZipfDistribution, zipf_pmf

__all__ = [
    "TPCH_TABLE_NAMES",
    "ZipfDistribution",
    "customer_variant",
    "customer_variant_with_custkey",
    "generate_tpch",
    "zipf_pmf",
]
