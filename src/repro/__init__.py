"""repro — a lightweight online framework for query progress indicators.

Reproduction of Mishra & Koudas, *A Lightweight Online Framework For Query
Progress Indicators*, ICDE 2007, as a self-contained Python library: a
Volcano-style relational executor with instrumented preprocessing phases,
the paper's ONCE join estimators with pipeline push-down (Algorithm 1), the
GEE/MLE group-count estimators with the adaptive recomputation interval
(Algorithms 2-3) and γ² chooser, the dne and byte baselines, and a
getnext-model progress monitor.

Quickstart::

    from repro import (
        Catalog, ExecutionEngine, HashJoin, ProgressMonitor, SeqScan, TickBus,
        generate_tpch,
    )

    catalog = generate_tpch(sf=0.01, skew_z=1.0)
    join = HashJoin(
        SeqScan(catalog.table("orders")),
        SeqScan(catalog.table("lineitem")),
        "orders.orderkey", "lineitem.orderkey",
    )
    bus = TickBus(interval=1000)
    monitor = ProgressMonitor(join, mode="once", catalog=catalog, bus=bus)
    ExecutionEngine(join, bus=bus, collect_rows=False).run()
    print(monitor.snapshots[-1].progress)
"""

from repro.core import (
    ByteModelEstimator,
    DriverNodeEstimator,
    EstimationManager,
    FrequencyHistogram,
    GEEEstimator,
    GroupFrequencyState,
    HashJoinChainEstimator,
    HybridGroupCountEstimator,
    MLEEstimator,
    OnceJoinEstimator,
    ProgressMonitor,
    ProgressSnapshot,
    attach_once_estimator,
    find_hash_join_chains,
)
from repro.datagen import customer_variant, generate_tpch
from repro.executor import ExecutionEngine, TickBus, col, decompose_pipelines, explain, lit
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TransientFault,
    parse_fault_spec,
)
from repro.executor.operators import (
    AggregateSpec,
    Filter,
    HashAggregate,
    HashJoin,
    IndexNestedLoopsJoin,
    IndexScan,
    Limit,
    Materialize,
    NestedLoopsJoin,
    Project,
    SampleScan,
    SeqScan,
    Sort,
    SortAggregate,
    SortMergeJoin,
)
from repro.optimizer import CardinalityModel, JoinSpec, Planner, annotate_plan
from repro.sql import compile_select, run_query
from repro.storage import Catalog, Column, ColumnType, Schema, Table

__version__ = "1.0.0"

__all__ = [
    "AggregateSpec",
    "ByteModelEstimator",
    "CardinalityModel",
    "Catalog",
    "Column",
    "ColumnType",
    "DriverNodeEstimator",
    "EstimationManager",
    "ExecutionEngine",
    "FaultPlan",
    "FaultSpec",
    "Filter",
    "FrequencyHistogram",
    "GEEEstimator",
    "GroupFrequencyState",
    "HashAggregate",
    "HashJoin",
    "HashJoinChainEstimator",
    "HybridGroupCountEstimator",
    "IndexNestedLoopsJoin",
    "IndexScan",
    "InjectedFault",
    "JoinSpec",
    "Limit",
    "MLEEstimator",
    "Materialize",
    "NestedLoopsJoin",
    "OnceJoinEstimator",
    "Planner",
    "ProgressMonitor",
    "ProgressSnapshot",
    "Project",
    "SampleScan",
    "Schema",
    "SeqScan",
    "Sort",
    "SortAggregate",
    "SortMergeJoin",
    "Table",
    "TickBus",
    "TransientFault",
    "annotate_plan",
    "attach_once_estimator",
    "col",
    "compile_select",
    "customer_variant",
    "decompose_pipelines",
    "explain",
    "find_hash_join_chains",
    "generate_tpch",
    "lit",
    "parse_fault_spec",
    "run_query",
]
