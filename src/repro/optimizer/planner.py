"""A simple heuristic planner producing left-deep join pipelines.

Builds the plan shape the paper studies: a chain of hash joins where each
join's *probe* input is the output of the join below it (Figure 2), fed by
(sample-first) scans, optionally topped by filters and a group-by. Each
newly joined table becomes the *build* side — the usual choice when joining
a fact-table stream against dimension tables — so the whole chain forms one
probe pipeline with one build pipeline per join.

This is deliberately not a cost-based optimizer: join order is the caller's,
methods default to hash join, and estimates come from
:class:`~repro.optimizer.cardinality.CardinalityModel`. It exists so
workloads and benchmarks can state queries declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlanError
from repro.executor.expressions import Expression
from repro.executor.operators.aggregate import AggregateSpec, HashAggregate
from repro.executor.operators.base import Operator
from repro.executor.operators.filter import Filter
from repro.executor.operators.hash_join import HashJoin
from repro.executor.operators.merge_join import SortMergeJoin
from repro.executor.operators.nested_loops import IndexNestedLoopsJoin
from repro.executor.operators.scan import SampleScan, SeqScan
from repro.optimizer.cardinality import annotate_plan
from repro.storage.catalog import Catalog

__all__ = ["JoinSpec", "Planner"]

_METHODS = ("hash", "merge", "index_nl", "auto")


@dataclass(frozen=True)
class JoinSpec:
    """Join one more table onto the current pipeline.

    ``probe_key`` is a column of the pipeline built so far; ``build_key`` a
    column of ``table`` (defaults to ``probe_key``'s bare name). ``where``
    optionally filters the new table's scan before the join.
    """

    table: str
    probe_key: str
    build_key: str | None = None
    method: str = "hash"
    where: Expression | None = None

    def __post_init__(self):
        if self.method not in _METHODS:
            raise PlanError(f"unknown join method {self.method!r}")

    @property
    def resolved_build_key(self) -> str:
        return self.build_key or self.probe_key.split(".")[-1]


class Planner:
    """Assembles physical plans over a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        sample_fraction: float = 0.0,
        seed: int = 0,
        num_partitions: int = 8,
    ):
        self.catalog = catalog
        self.sample_fraction = sample_fraction
        self.seed = seed
        self.num_partitions = num_partitions

    def scan(self, table_name: str, where: Expression | None = None) -> Operator:
        """Scan a table (sample-first when the planner samples), with an
        optional pushed-down filter."""
        table = self.catalog.table(table_name)
        if self.sample_fraction > 0.0:
            op: Operator = SampleScan(table, self.sample_fraction, self.seed)
        else:
            op = SeqScan(table)
        if where is not None:
            op = Filter(op, where)
        return op

    def build(
        self,
        base_table: str,
        joins: list[JoinSpec] | tuple[JoinSpec, ...] = (),
        where: Expression | None = None,
        group_by: list[str] | tuple[str, ...] = (),
        aggregates: list[AggregateSpec] | tuple[AggregateSpec, ...] = (),
        annotate: bool = True,
    ) -> Operator:
        """Build scan -> joins -> [group by] and annotate estimates."""
        plan = self.scan(base_table, where)
        for spec in joins:
            plan = self._join(plan, spec)
        if group_by or aggregates:
            plan = HashAggregate(plan, tuple(group_by), tuple(aggregates))
        if annotate:
            annotate_plan(plan, self.catalog)
        return plan

    def _join(self, probe: Operator, spec: JoinSpec) -> Operator:
        build = self.scan(spec.table, spec.where)
        build_key = spec.resolved_build_key
        if not probe.output_schema.has_column(spec.probe_key):
            raise PlanError(
                f"probe key {spec.probe_key!r} not in pipeline schema "
                f"{probe.output_schema!r}"
            )
        if not build.output_schema.has_column(build_key):
            raise PlanError(
                f"build key {build_key!r} not in table {spec.table!r}"
            )
        method = "hash" if spec.method == "auto" else spec.method
        if method == "hash":
            return HashJoin(
                build, probe, build_key, spec.probe_key, self.num_partitions
            )
        if method == "merge":
            return SortMergeJoin(build, probe, build_key, spec.probe_key)
        return IndexNestedLoopsJoin(probe, build, spec.probe_key, build_key)
