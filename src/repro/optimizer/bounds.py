"""Bound-based refinement of optimizer estimates for future pipelines.

For pipelines that have not begun, the paper follows Chaudhuri et al. [9]:
keep the optimizer estimate but clamp it between an upper and a lower bound
that tighten as upstream cardinalities become known. The bounds we maintain
are the standard worst-case ones for each operator given (possibly refined)
input cardinalities:

* equijoin of inputs ``l`` and ``r``: at least 0, at most ``l * r`` — and at
  most ``l * maxmult_r`` (resp. ``r * maxmult_l``) once a build histogram
  exists and reveals the maximum key multiplicity.
* selection / projection / sort: at most the input cardinality.
* group-by: at most the input cardinality (and at least 1 once any input
  row exists).

A :class:`RefinableEstimate` carries ``(lo, est, hi)``; ``refine`` clamps the
current estimate into the bound interval, so wildly wrong optimizer numbers
get pulled toward feasibility as soon as inputs are pinned down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.executor.operators.aggregate import _AggregateBase
from repro.executor.operators.base import Operator
from repro.executor.operators.distinct import Distinct
from repro.executor.operators.filter import Filter
from repro.executor.operators.hash_join import HashJoin
from repro.executor.operators.limit import Limit
from repro.executor.operators.materialize import Materialize
from repro.executor.operators.merge_join import SortMergeJoin
from repro.executor.operators.nested_loops import IndexNestedLoopsJoin, NestedLoopsJoin
from repro.executor.operators.project import Project
from repro.executor.operators.scan import IndexScan, SampleScan, SeqScan
from repro.executor.operators.sort import Sort

__all__ = ["CardinalityBounds", "RefinableEstimate"]


@dataclass
class RefinableEstimate:
    """A cardinality estimate with lower/upper bounds."""

    lo: float
    est: float
    hi: float

    def clamped(self) -> float:
        return min(max(self.est, self.lo), self.hi)

    def update_bounds(self, lo: float | None = None, hi: float | None = None) -> None:
        if lo is not None:
            self.lo = max(self.lo, lo)
        if hi is not None:
            self.hi = min(self.hi, hi)
        if self.hi < self.lo:  # bounds crossed: trust the newer (tighter) info
            self.lo = self.hi

    @property
    def width(self) -> float:
        return self.hi - self.lo


class CardinalityBounds:
    """Maintains refinable estimates for every operator of a plan.

    ``known`` maps operators whose output cardinality is exactly known
    (finished pipelines, completed preprocessing passes) to that value;
    :meth:`refine` propagates the implied bounds bottom-up.
    """

    def __init__(self, root: Operator):
        self.root = root
        self.estimates: dict[int, RefinableEstimate] = {}
        self._ops: dict[int, Operator] = {}
        self._init(root)

    def _init(self, op: Operator) -> None:
        est = float(op.estimated_cardinality) if op.estimated_cardinality else 1.0
        self.estimates[id(op)] = RefinableEstimate(0.0, est, float("inf"))
        self._ops[id(op)] = op
        for child in op.children():
            self._init(child)

    def of(self, op: Operator) -> RefinableEstimate:
        return self.estimates[id(op)]

    def set_known(self, op: Operator, cardinality: float) -> None:
        """Pin an operator's output cardinality exactly."""
        entry = self.of(op)
        entry.lo = entry.hi = entry.est = float(cardinality)

    def set_estimate(self, op: Operator, estimate: float) -> None:
        """Replace an operator's point estimate (kept inside its bounds)."""
        entry = self.of(op)
        entry.est = float(estimate)

    def refine(self, max_multiplicity: dict[int, float] | None = None) -> None:
        """Propagate bounds bottom-up.

        ``max_multiplicity`` optionally maps a join operator's ``id`` to the
        maximum key multiplicity observed on its build side, enabling the
        tighter ``probe * maxmult`` upper bound.
        """
        max_multiplicity = max_multiplicity or {}
        self._refine(self.root, max_multiplicity)

    def _refine(self, op: Operator, maxmult: dict[int, float]) -> None:
        for child in op.children():
            self._refine(child, maxmult)
        entry = self.of(op)
        if isinstance(op, (SeqScan, SampleScan, IndexScan)):
            entry.update_bounds(lo=float(op.total_rows), hi=float(op.total_rows))
        elif isinstance(op, (Filter, Project, Sort, Materialize)):
            child_hi = self.of(op.children()[0]).hi
            entry.update_bounds(lo=0.0, hi=child_hi)
        elif isinstance(op, Limit):
            entry.update_bounds(hi=float(op.n))
        elif isinstance(op, (HashJoin, SortMergeJoin, IndexNestedLoopsJoin)):
            left, right = op.children()
            l_hi, r_hi = self.of(left).hi, self.of(right).hi
            hi = l_hi * r_hi
            mult = maxmult.get(id(op))
            if mult is not None:
                hi = min(hi, r_hi * mult)
            entry.update_bounds(lo=0.0, hi=hi)
        elif isinstance(op, NestedLoopsJoin):
            left, right = op.children()
            entry.update_bounds(lo=0.0, hi=self.of(left).hi * self.of(right).hi)
        elif isinstance(op, (_AggregateBase, Distinct)):
            child_hi = self.of(op.children()[0]).hi
            entry.update_bounds(lo=1.0 if child_hi > 0 else 0.0, hi=child_hi)
        entry.est = entry.clamped()

    def estimate_of(self, op: Operator) -> float:
        """Current (clamped) point estimate for ``op``."""
        return self.of(op).clamped()
