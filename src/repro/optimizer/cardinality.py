"""Textbook (System-R style) cardinality estimation over physical plans.

Formulas implemented (the standard ones, with the standard failure modes):

* scan:            ``|T|``
* filter:          ``|child| * sel(pred)`` — equality via MCVs + uniform
                   remainder, ranges via equi-width histograms, unknown
                   predicates via the 1/3 default.
* equijoin:        ``|L| * |R| / max(d_L, d_R)`` with distinct counts pulled
                   from base-table statistics (containment assumption) —
                   this is the formula that underestimates skewed joins by
                   large factors.
* group by:        ``min(d_group, |child|)``.
* nested loops:    cross product times per-conjunct default selectivity.

Distinct counts for derived columns are resolved by walking down to the
base scan that contributed the column; when a column's provenance cannot be
traced (computed columns), ``sqrt(|child|)`` is used, as real systems do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.executor.expressions import (
    And,
    Between,
    Col,
    Comparison,
    Const,
    Expression,
    InList,
    IsNull,
    Not,
    Or,
)
from repro.executor.operators.aggregate import _AggregateBase
from repro.executor.operators.base import Operator
from repro.executor.operators.distinct import Distinct
from repro.executor.operators.filter import Filter
from repro.executor.operators.hash_join import HashJoin
from repro.executor.operators.limit import Limit
from repro.executor.operators.materialize import Materialize
from repro.executor.operators.merge_join import SortMergeJoin
from repro.executor.operators.nested_loops import IndexNestedLoopsJoin, NestedLoopsJoin
from repro.executor.operators.project import Project
from repro.executor.operators.scan import IndexScan, SampleScan, SeqScan
from repro.executor.operators.sort import Sort
from repro.storage.catalog import Catalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.statistics import ObservedCardinalities

__all__ = ["CardinalityModel", "annotate_plan"]

_DEFAULT_SELECTIVITY = 1.0 / 3.0
_EQ_DEFAULT_SELECTIVITY = 0.005


class CardinalityModel:
    """Estimates output cardinalities for every node of a physical plan.

    ``use_histograms=True`` upgrades equijoin estimation from the
    containment formula to a histogram-overlap computation (both columns'
    equi-width histograms re-bucketed onto a common grid, per-cell
    ``mass_l·mass_r / max(d_cell)``). Better — but still a *static*
    approximation that cannot see which particular values coincide, which
    is exactly the gap the online framework closes
    (``bench_ablation_optimizer_stats.py``).
    """

    def __init__(
        self,
        catalog: Catalog,
        use_histograms: bool = False,
        observed: "ObservedCardinalities | None" = None,
    ):
        self.catalog = catalog
        self.use_histograms = use_histograms
        #: Observed-cardinality overlay from the robust feedback loop
        #: (:mod:`repro.robust.feedback`): for plan subtrees the system has
        #: executed before, the *observed* output count beats the model —
        #: subject to the overlay's staleness bound.
        self.observed = observed
        self._cache: dict[int, float] = {}

    # -- public API -------------------------------------------------------------

    def estimate(self, op: Operator) -> float:
        """Estimated output cardinality of ``op`` (recursive, memoised)."""
        cached = self._cache.get(id(op))
        if cached is None:
            hit = self._observed_estimate(op)
            cached = self._cache[id(op)] = (
                hit if hit is not None else self._estimate(op)
            )
        return cached

    def _observed_estimate(self, op: Operator) -> float | None:
        """The feedback overlay's count for this subtree, if fresh."""
        if self.observed is None:
            return None
        from repro.executor.plan import walk
        from repro.robust.history import fingerprint_plan

        live_rows: dict[str, int] = {}
        for sub in walk(op):
            table = getattr(sub, "table", None)
            if table is not None:
                name = getattr(table, "base_name", None) or table.name
                live_rows[name] = int(table.num_rows)
        digest = fingerprint_plan(op).digest
        return self.observed.lookup(digest, live_rows)

    def _estimate(self, op: Operator) -> float:
        if isinstance(op, (SeqScan, SampleScan)):
            return float(op.table.num_rows)
        if isinstance(op, IndexScan):
            return float(op.total_rows)
        if isinstance(op, Filter):
            child = self.estimate(op.child)
            return child * self._selectivity(op.predicate, op.child)
        if isinstance(op, (Project, Sort, Materialize)):
            return self.estimate(op.children()[0])
        if isinstance(op, Limit):
            return min(float(op.n), self.estimate(op.child))
        if isinstance(op, HashJoin):
            return self._equijoin(
                op.build_child, op.probe_child, op.build_keys, op.probe_keys
            )
        if isinstance(op, SortMergeJoin):
            return self._equijoin(
                op.left_child, op.right_child, (op.left_key,), (op.right_key,)
            )
        if isinstance(op, IndexNestedLoopsJoin):
            return self._equijoin(
                op.outer_child, op.inner_child, (op.outer_key,), (op.inner_key,)
            )
        if isinstance(op, NestedLoopsJoin):
            cross = self.estimate(op.outer_child) * self.estimate(op.inner_child)
            if op.predicate is None:
                return cross
            # The joined schema spans both children; approximate each
            # conjunct with the default selectivity.
            return cross * _DEFAULT_SELECTIVITY ** self._count_conjuncts(op.predicate)
        if isinstance(op, Distinct):
            child_est = self.estimate(op.child)
            d = 1.0
            for column in op.output_schema.names():
                d *= self._distinct_of(op.child, column)
            return min(d, child_est)
        if isinstance(op, _AggregateBase):
            child_est = self.estimate(op.child)
            d = 1.0
            for g in op.group_by:
                d *= self._distinct_of(op.child, g)
            return min(d, child_est) if op.group_by else 1.0
        raise TypeError(f"no cardinality rule for operator {type(op).__name__}")

    # -- joins -------------------------------------------------------------------

    def _equijoin(self, left: Operator, right: Operator, left_keys, right_keys) -> float:
        l_est = self.estimate(left)
        r_est = self.estimate(right)
        if self.use_histograms and len(left_keys) == 1:
            via_histograms = self._histogram_join_estimate(
                left, right, left_keys[0], right_keys[0], l_est, r_est
            )
            if via_histograms is not None:
                return via_histograms
        sel = 1.0
        for lk, rk in zip(left_keys, right_keys):
            d_l = self._distinct_of(left, lk)
            d_r = self._distinct_of(right, rk)
            sel *= 1.0 / max(d_l, d_r, 1.0)
        return l_est * r_est * sel

    _JOIN_GRID_CELLS = 64

    def _histogram_join_estimate(
        self,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
        l_est: float,
        r_est: float,
    ) -> float | None:
        """Histogram-overlap equijoin estimate, or None if either side
        lacks a numeric equi-width histogram."""
        ls = self._column_stats(left, left_key)
        rs = self._column_stats(right, right_key)
        if (
            ls is None or rs is None
            or not ls.histogram or not rs.histogram
            or ls.min_value is None or rs.min_value is None
        ):
            return None
        lo = min(float(ls.min_value), float(rs.min_value))
        hi = max(float(ls.max_value), float(rs.max_value))
        if hi <= lo:
            # Single-point domains: everything collides (or nothing does).
            return l_est * r_est if ls.min_value == rs.min_value else 0.0
        cells = self._JOIN_GRID_CELLS
        width = (hi - lo) / cells

        def regrid(stats) -> list[float]:
            mass = [0.0] * cells
            b_lo = float(stats.min_value)
            b_hi = float(stats.max_value)
            n_buckets = len(stats.histogram)
            b_width = (b_hi - b_lo) / n_buckets if b_hi > b_lo else 0.0
            for b, count in enumerate(stats.histogram):
                if count == 0:
                    continue
                start = b_lo + b * b_width
                end = start + (b_width or 1e-12)
                first = int((start - lo) / width)
                last = min(int((end - lo) / width), cells - 1)
                span = max(last - first + 1, 1)
                for cell in range(max(first, 0), last + 1):
                    mass[cell] += count / span
            return mass

        mass_l = regrid(ls)
        mass_r = regrid(rs)
        # Distinct values spread uniformly across each column's value range.
        dl_cell = ls.n_distinct * width / max(float(ls.max_value) - float(ls.min_value), width)
        dr_cell = rs.n_distinct * width / max(float(rs.max_value) - float(rs.min_value), width)
        total = 0.0
        for ml, mr in zip(mass_l, mass_r):
            if ml and mr:
                total += ml * mr / max(dl_cell, dr_cell, 1.0)
        # Scale from base-table masses down to the (possibly filtered)
        # subtree cardinalities.
        l_scale = l_est / max(ls.row_count, 1)
        r_scale = r_est / max(rs.row_count, 1)
        return total * l_scale * r_scale

    def _distinct_of(self, op: Operator, column: str) -> float:
        """Distinct count of ``column`` in the output of ``op``.

        Traces provenance down to the base scan owning the column; scales
        down when the subtree's estimated cardinality is below the base
        table's distinct count (you cannot have more distinct values than
        rows).
        """
        base = self._find_base_stats(op, column)
        est_rows = max(self.estimate(op), 1.0)
        if base is None:
            return max(est_rows ** 0.5, 1.0)
        return float(max(min(float(base), est_rows), 1.0))

    def _find_base_stats(self, op: Operator, column: str) -> int | None:
        if isinstance(op, (SeqScan, SampleScan, IndexScan)):
            if op.table.schema.has_column(column):
                bare = column.split(".")[-1]
                table_name = op.table.name
                if table_name in self.catalog:
                    stats = self.catalog.statistics(table_name)
                    if stats.has_column(bare):
                        return stats.column(bare).n_distinct
                # Table not registered: fall back to exact count (cheap for
                # the toy executor, mirrors an index-based estimate).
                return len(set(op.table.column_values(column)))
            return None
        for child in op.children():
            if child.output_schema.has_column(column):
                found = self._find_base_stats(child, column)
                if found is not None:
                    return found
        return None

    # -- selections -----------------------------------------------------------------

    def _selectivity(self, pred: Expression, child: Operator) -> float:
        if isinstance(pred, And):
            return self._selectivity(pred.left, child) * self._selectivity(pred.right, child)
        if isinstance(pred, Or):
            s1 = self._selectivity(pred.left, child)
            s2 = self._selectivity(pred.right, child)
            return min(s1 + s2 - s1 * s2, 1.0)
        if isinstance(pred, Not):
            return 1.0 - self._selectivity(pred.child, child)
        if isinstance(pred, Comparison):
            return self._comparison_selectivity(pred, child)
        if isinstance(pred, InList):
            if isinstance(pred.child, Col):
                stats = self._column_stats(child, pred.child.name)
                if stats is not None:
                    total = sum(stats.selectivity_eq(v) for v in pred.values)
                    return min(total, 1.0)
            return min(_EQ_DEFAULT_SELECTIVITY * len(pred.values), 1.0)
        if isinstance(pred, Between):
            if (
                isinstance(pred.child, Col)
                and isinstance(pred.low, Const)
                and isinstance(pred.high, Const)
                and isinstance(pred.low.value, (int, float))
                and isinstance(pred.high.value, (int, float))
            ):
                stats = self._column_stats(child, pred.child.name)
                if stats is not None:
                    return stats.selectivity_range(
                        float(pred.low.value), float(pred.high.value) + 1e-9
                    )
            return _DEFAULT_SELECTIVITY
        if isinstance(pred, IsNull):
            # The generators produce few NULLs; mirror the small default
            # null fraction real optimizers assume.
            return 0.99 if pred.negated else 0.01
        return _DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, pred: Comparison, child: Operator) -> float:
        col_side, const_side = pred.left, pred.right
        op_str = pred.op
        if isinstance(col_side, Const) and isinstance(const_side, Col):
            col_side, const_side = const_side, col_side
            flips = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}
            op_str = flips.get(op_str, op_str)
        if not (isinstance(col_side, Col) and isinstance(const_side, Const)):
            return _DEFAULT_SELECTIVITY
        stats = self._column_stats(child, col_side.name)
        if stats is None:
            if op_str in ("=", "=="):
                return _EQ_DEFAULT_SELECTIVITY
            return _DEFAULT_SELECTIVITY
        value = const_side.value
        if op_str in ("=", "=="):
            return stats.selectivity_eq(value)
        if op_str in ("!=", "<>"):
            return 1.0 - stats.selectivity_eq(value)
        if not isinstance(value, (int, float)):
            return _DEFAULT_SELECTIVITY
        if op_str == "<":
            return stats.selectivity_range(None, value)
        if op_str == "<=":
            return stats.selectivity_range(None, value + 1e-9)
        if op_str == ">":
            return 1.0 - stats.selectivity_range(None, value + 1e-9)
        if op_str == ">=":
            return 1.0 - stats.selectivity_range(None, value)
        return _DEFAULT_SELECTIVITY

    def _column_stats(self, op: Operator, column: str):
        if isinstance(op, (SeqScan, SampleScan, IndexScan)):
            if op.table.schema.has_column(column) and op.table.name in self.catalog:
                stats = self.catalog.statistics(op.table.name)
                bare = column.split(".")[-1]
                if stats.has_column(bare):
                    return stats.column(bare)
            return None
        for child in op.children():
            if child.output_schema.has_column(column):
                found = self._column_stats(child, column)
                if found is not None:
                    return found
        return None

    @staticmethod
    def _count_conjuncts(pred: Expression) -> int:
        if isinstance(pred, And):
            return CardinalityModel._count_conjuncts(pred.left) + CardinalityModel._count_conjuncts(
                pred.right
            )
        return 1


def annotate_plan(
    root: Operator,
    catalog: Catalog,
    observed: "ObservedCardinalities | None" = None,
) -> dict[Operator, float]:
    """Set ``estimated_cardinality`` on every node; return the estimates.

    ``observed`` threads the robust feedback overlay through: subtrees the
    system has executed before are annotated with their observed counts
    (fresh ones only — see ``ObservedCardinalities``)."""
    model = CardinalityModel(catalog, observed=observed)
    estimates: dict[Operator, float] = {}

    def visit(op: Operator) -> None:
        estimates[op] = model.estimate(op)
        op.estimated_cardinality = estimates[op]
        for child in op.children():
            visit(child)

    visit(root)
    return estimates
