"""Optimizer substrate: textbook cardinality estimation, a simple planner,
and bound-based refinement for future pipelines.

The point of this package is to be *realistically wrong*. The paper's online
framework exists because optimizer estimates — built on uniformity,
independence and containment assumptions — can be off by an order of
magnitude on skewed data (Figure 4(a): "the PostgreSQL cardinality estimates
are off by about a factor of 13"). :class:`CardinalityModel` applies exactly
those textbook formulas, so its errors have the same character; the progress
benchmarks then show the online estimators correcting them.
"""

from repro.optimizer.bounds import CardinalityBounds, RefinableEstimate
from repro.optimizer.cardinality import CardinalityModel, annotate_plan
from repro.optimizer.planner import JoinSpec, Planner

__all__ = [
    "CardinalityBounds",
    "CardinalityModel",
    "JoinSpec",
    "Planner",
    "RefinableEstimate",
    "annotate_plan",
]
