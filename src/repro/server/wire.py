"""Serialize-once snapshot frames and delta encoding for the fan-out path.

The serving layer's hottest path is snapshot fan-out: every session step
publishes one :class:`~repro.server.session.SessionSnapshot`, and every
watcher used to pay its own ``json.dumps`` of that snapshot — O(watchers
× steps) encodes, the exact scaling wall PF-OLA identifies when online
estimates go to many concurrent consumers. This module is the *single*
publish-time encode point (lint rule R007 bans encoding anywhere else in
a server loop): each published snapshot becomes one
:class:`PublishedFrame` carrying

* ``full`` — the pre-encoded ``{"event": "snapshot", ...}`` wire line
  every watcher can write verbatim, and
* ``delta`` — when the frame is not a keyframe, the pre-encoded
  ``{"event": "delta", "seq": n, "base": m, "changed": {...}}`` line
  holding only the fields that changed since the previous published
  frame (``base``).

So N watchers cost at most *two* encodes per step — one full, one delta
— instead of N, and a watcher whose stream is positioned exactly at
``base`` ships the (much smaller) delta line. Keyframes are forced on
the first frame of a session, every ``keyframe_every`` frames, and on
every terminal transition; the per-connection stream logic in
:meth:`ProgressService._stream_watch` additionally sends a full frame
the first time a connection sees a session (which covers ``watch
since=`` resumes), so a delta is only ever written on top of a full
frame the same connection already delivered.

Delta streams are transparently reassembled client-side
(:func:`apply_delta` in :class:`~repro.server.client.ProgressClient`);
callers keep seeing full snapshots, bit-identical to a full-frame
stream.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.server.protocol import encode

if TYPE_CHECKING:  # annotation-only: keeps the module importable by the
    from repro.server.session import SessionSnapshot  # thin stdlib client

__all__ = [
    "DEFAULT_KEYFRAME_EVERY",
    "TERMINAL_WIRE_STATES",
    "PublishedFrame",
    "SessionStreamEncoder",
    "apply_delta",
    "diff_wire",
    "encode_snapshot_event",
]

#: Publish a full keyframe at least every this-many frames per session.
DEFAULT_KEYFRAME_EVERY = 16

#: Wire values of the terminal session states (always sent as keyframes).
TERMINAL_WIRE_STATES = frozenset({"finished", "cancelled", "failed"})


@dataclass(frozen=True)
class PublishedFrame:
    """One published snapshot, encoded exactly once.

    ``wire`` is the full snapshot dict (shared with ``full``'s encoding —
    treat it as immutable); ``base`` is the seq the delta applies to, or
    ``None`` for keyframes (``delta`` is then ``None`` too). The
    ``session_id``/``seq`` attribute pair is what makes frames
    conflatable in a :class:`~repro.server.events.Subscription` mailbox.
    """

    session_id: str
    seq: int
    base: int | None
    state: str
    wire: dict
    full: bytes
    delta: bytes | None

    @property
    def is_keyframe(self) -> bool:
        return self.delta is None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_WIRE_STATES


def encode_snapshot_event(wire: dict) -> bytes:
    """The full-frame wire line for one snapshot dict."""
    return encode({"event": "snapshot", "session": wire})


def diff_wire(prev: dict, curr: dict) -> dict:
    """Fields of ``curr`` that differ from ``prev`` (``seq`` excluded —
    it rides at the top level of the delta event)."""
    return {
        key: value
        for key, value in curr.items()
        if key != "seq" and prev.get(key, _MISSING) != value
    }


_MISSING = object()


def apply_delta(base_wire: dict, event: dict) -> dict:
    """Reassemble the full snapshot dict a delta event stands for.

    ``base_wire`` must be the full snapshot whose ``seq`` equals the
    event's ``base`` — the stream logic guarantees a delta is only sent
    on top of the frame the connection last delivered. Raises
    :class:`ValueError` on a base mismatch so callers can resync via a
    keyframe (reconnect with ``since=``) instead of silently merging
    onto the wrong state.
    """
    base = event.get("base")
    if base is None or int(base_wire.get("seq", -1)) != int(base):
        raise ValueError(
            f"delta base {base!r} does not match cached seq "
            f"{base_wire.get('seq')!r}"
        )
    merged = dict(base_wire)
    merged.update(event.get("changed") or {})
    merged["seq"] = int(event["seq"])
    return merged


class SessionStreamEncoder:
    """Per-session serialize-once frame encoder.

    One instance per session, fed by the service's publish listener —
    which runs on the session's executing worker under its step lock, so
    :meth:`encode` calls for one session never race each other. The lock
    below exists for the *readers*: watch-priming and ``status``/``list``
    threads consume :attr:`latest`/:attr:`latest_frame` concurrently
    with a publish.

    ``encode_calls`` counts wire encodes performed (1 per keyframe, 2
    per delta frame) — the benchmark's proof that encoding is O(steps),
    not O(steps × watchers).
    """

    _guarded_by_ = {
        "_latest": "_lock",
        "_latest_frame": "_lock",
        "_since_keyframe": "_lock",
        "encode_calls": "_lock",
    }

    def __init__(self, keyframe_every: int = DEFAULT_KEYFRAME_EVERY):
        if keyframe_every < 1:
            raise ValueError(f"keyframe_every must be >= 1, got {keyframe_every}")
        self.keyframe_every = keyframe_every
        self._lock = threading.Lock()
        self._latest: SessionSnapshot | None = None
        self._latest_frame: PublishedFrame | None = None
        self._since_keyframe = 0
        self.encode_calls = 0

    @property
    def latest(self) -> SessionSnapshot | None:
        """Most recently published snapshot (cached, never resampled)."""
        with self._lock:
            return self._latest

    @property
    def latest_frame(self) -> PublishedFrame | None:
        """Most recently published frame — pre-encoded, ready to write."""
        with self._lock:
            return self._latest_frame

    def encode(self, snap: SessionSnapshot) -> PublishedFrame:
        """Encode one published snapshot into its shared wire frame(s)."""
        wire = snap.to_wire()
        with self._lock:
            prev = self._latest_frame
            if prev is not None and snap.seq <= prev.seq:
                # Out-of-order publish (defensive; the step lock makes
                # this unreachable in practice): keep the chain intact.
                return prev
            keyframe = (
                prev is None
                or self._since_keyframe + 1 >= self.keyframe_every
                or snap.state in TERMINAL_WIRE_STATES
            )
            full = encode_snapshot_event(wire)
            self.encode_calls += 1
            base: int | None = None
            delta: bytes | None = None
            if not keyframe:
                base = prev.seq
                delta = encode(
                    {
                        "event": "delta",
                        "session_id": snap.session_id,
                        "seq": snap.seq,
                        "base": base,
                        "changed": diff_wire(prev.wire, wire),
                    }
                )
                self.encode_calls += 1
            frame = PublishedFrame(
                session_id=snap.session_id,
                seq=snap.seq,
                base=base,
                state=snap.state,
                wire=wire,
                full=full,
                delta=delta,
            )
            self._latest = snap
            self._latest_frame = frame
            self._since_keyframe = 0 if keyframe else self._since_keyframe + 1
            return frame
