"""Resumable query sessions: one running query under service management.

A :class:`QuerySession` wraps a physical plan, its
:class:`~repro.core.progress.ProgressMonitor` and a
:class:`~repro.executor.engine.PlanCursor` into a *stepper*: each
:meth:`step` call advances the query by one quantum of output rows and
returns, which is what lets a thread-pool scheduler time-slice many
queries over few workers. Between steps the session is entirely passive —
no thread is parked inside it.

State machine::

    PENDING --step--> RUNNING --exhausted--> FINISHED
        \\                |   \\--error------> FAILED
         \\               \\---cancel/deadline--> CANCELLED
          \\--cancel--> CANCELLED

Cancellation is cooperative: :meth:`cancel` only raises a flag, honoured
at the next step boundary (a quantum is the unit of preemption, exactly
like the interleaved executor's turns). A per-session ``timeout_s`` is
enforced the same way, measured from the first step.

Progress reporting never touches executor internals from server threads:
the worker thread publishes a :class:`SessionSnapshot` after every step
*and* from inside blocking phases (via the session's tick-bus callback,
which piggybacks on the monitor's freshly recorded snapshot), so watchers
keep seeing movement during a long hash-join build. Reported per-session
progress is a high-water mark — ``T̂(Q)`` revisions may shrink the
estimate, but a progress bar that moves backwards helps nobody, and the
acceptance bar for streamed snapshots is monotone non-decreasing.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.common.locks import acquires, assert_owned, guarded_by, holds_lock
from repro.core.progress import ProgressMonitor, ProgressSnapshot
from repro.executor.engine import PlanCursor, TickBus
from repro.executor.operators.base import Operator
from repro.faults.plan import FaultPlan, TransientFault
from repro.storage.catalog import Catalog

__all__ = ["QuerySession", "SessionSnapshot", "SessionState", "TERMINAL_STATES"]

_session_ids = itertools.count(1)


class SessionState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    CANCELLED = "cancelled"
    FAILED = "failed"


TERMINAL_STATES = frozenset(
    {SessionState.FINISHED, SessionState.CANCELLED, SessionState.FAILED}
)


@dataclass(frozen=True)
class SessionSnapshot:
    """An immutable, wire-ready view of one session's progress.

    ``degraded`` marks progress running on the dne fallback after a
    runtime estimator demotion (the query itself is fine — only estimate
    quality degraded); ``retries`` counts transient storage faults
    absorbed by the session's retry budget.

    ``ensemble``/``weights``/``prior_source`` carry the robust monitor's
    combined progress estimate, its per-candidate weights and whether the
    weights were history-seeded (``"warm"``/``"cold"``); all None unless
    the session runs with a history store attached.
    """

    session_id: str
    name: str
    state: str
    seq: int
    progress: float
    work_done: float
    work_total_estimate: float
    row_count: int
    elapsed_s: float
    error: str | None = None
    degraded: bool = False
    degraded_reason: str | None = None
    retries: int = 0
    ensemble: float | None = None
    weights: dict[str, float] | None = None
    prior_source: str | None = None

    def to_wire(self) -> dict:
        """The snapshot's wire dict, memoized per instance.

        A snapshot is frozen and uniquely identified by its seq, so the
        dict is built once and shared between the publish-time frame
        encoder and ``status``/``list`` responses — callers must treat
        it as immutable (copy before mutating).
        """
        cached = self.__dict__.get("_wire")
        if cached is None:
            cached = {
                "session_id": self.session_id,
                "name": self.name,
                "state": self.state,
                "seq": self.seq,
                "progress": round(self.progress, 6),
                "work_done": self.work_done,
                "work_total_estimate": self.work_total_estimate,
                "row_count": self.row_count,
                "elapsed_s": round(self.elapsed_s, 6),
                "error": self.error,
                "degraded": self.degraded,
                "degraded_reason": self.degraded_reason,
                "retries": self.retries,
                "ensemble": (
                    round(self.ensemble, 6) if self.ensemble is not None else None
                ),
                "weights": (
                    {k: round(v, 6) for k, v in self.weights.items()}
                    if self.weights is not None
                    else None
                ),
                "prior_source": self.prior_source,
            }
            object.__setattr__(self, "_wire", cached)
        return cached


class QuerySession:
    """A resumable, cancellable execution of one plan.

    Parameters
    ----------
    plan:
        The physical plan to run.
    mode / catalog / tick_interval:
        Forwarded to a freshly built :class:`ProgressMonitor` unless
        ``monitor``/``bus`` are injected (the interleaved executor reuses
        its pre-built per-handle monitors that way).
    quantum_rows:
        Output rows pulled per :meth:`step`.
    row_cap:
        Result spool bound: at most this many rows are retained for
        ``fetch``; production beyond the cap still runs (and counts), the
        spool is just truncated. ``0`` disables spooling.
    timeout_s:
        Cooperative deadline measured from the first step; exceeding it
        cancels the session with a timeout error.
    faults:
        Optional :class:`~repro.faults.FaultPlan` installed on the plan,
        cursor and estimator hooks (see docs/FAULTS.md).
    resilient:
        Harden estimator hooks so a raising hook demotes its estimator
        (snapshots turn ``degraded``) instead of failing the query. On by
        default for sessions — a served query should never die for the
        sake of its own progress bar.
    retry_budget:
        Transient storage faults (:class:`TransientFault`, fired at the
        resumable cursor boundary) absorbed per session before the next
        one is treated as fatal.
    history / observed:
        Optional :class:`~repro.robust.HistoryStore` and
        :class:`~repro.storage.statistics.ObservedCardinalities`. With a
        store attached, the session builds a history-enabled monitor
        (ensemble fields appear on snapshots) and, on FINISHED, scores
        and appends the run record — folding its per-subtree
        cardinalities into ``observed`` for the optimizer's
        observed-over-modeled feedback loop.
    """

    # Lock discipline (machine-checked by repro.analysis.concurrency).
    # ``_step_lock`` serializes execution: every state transition and every
    # piece of run bookkeeping is written only by the thread stepping the
    # quantum. ``_snap_lock`` is the cheap observation lock: snapshot
    # sequencing and the high-water mark are touched by arbitrary reader
    # threads, so they get their own mutex — readers never contend with a
    # running quantum. ``_cancel_reason`` is deliberately unguarded: cancel
    # must take effect without blocking behind a quantum in flight (the
    # Event provides the ordering).
    _guarded_by_ = {
        "_high_water": "_snap_lock",
        "_snap_seq": "_snap_lock",
    }
    # Written only under the lock; read lock-free. Every field below holds
    # either an immutable value (str/float/enum/frozen snapshot/tuple) that
    # is swapped atomically, or — for ``rows`` — a list that only grows and
    # is copied on read.
    _write_guarded_by_ = {
        "state": "_step_lock",
        "row_count": "_step_lock",
        "rows": "_step_lock",
        "error": "_step_lock",
        "started_at": "_step_lock",
        "finished_at": "_step_lock",
        "_deadline": "_step_lock",
        "_ticked_this_quantum": "_step_lock",
        "_last_progress": "_step_lock",
        "_retries_left": "_step_lock",
        "retry_count": "_step_lock",
        "listeners": "_snap_lock",
    }

    def __init__(
        self,
        plan: Operator,
        name: str | None = None,
        session_id: str | None = None,
        mode: str = "once",
        catalog: Catalog | None = None,
        monitor: ProgressMonitor | None = None,
        bus: TickBus | None = None,
        tick_interval: int = 1000,
        quantum_rows: int = 256,
        row_cap: int = 10_000,
        timeout_s: float | None = None,
        faults: FaultPlan | None = None,
        resilient: bool = True,
        retry_budget: int = 3,
        history=None,
        observed=None,
    ):
        if quantum_rows < 1:
            raise ValueError(f"quantum_rows must be >= 1, got {quantum_rows}")
        if row_cap < 0:
            raise ValueError(f"row_cap must be >= 0, got {row_cap}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {retry_budget}")
        self.session_id = session_id or f"s{next(_session_ids):04d}"
        self.name = name or self.session_id
        self.plan = plan
        self.quantum_rows = quantum_rows
        self.row_cap = row_cap
        self.timeout_s = timeout_s
        self.bus = bus if bus is not None else TickBus(interval=tick_interval)
        self.faults = faults
        self.retry_budget = retry_budget
        self.history = history
        self.observed = observed
        self.monitor = (
            monitor
            if monitor is not None
            else ProgressMonitor(
                plan,
                mode=mode,
                catalog=catalog,
                bus=self.bus,
                resilient=resilient,
                faults=faults,
                history=history,
            )
        )
        self.cursor = PlanCursor(plan, bus=self.bus, faults=faults)
        self.state = SessionState.PENDING
        self.row_count = 0
        self.rows: list[tuple] = []
        self.error: str | None = None
        self.created_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.listeners: tuple[Callable[["QuerySession", SessionSnapshot], None], ...] = ()
        self._step_lock = threading.RLock()
        self._snap_lock = threading.Lock()
        self._cancel = threading.Event()
        self._cancel_reason: str | None = None
        self._deadline: float | None = None
        self._snap_seq = 0
        self._last_progress: ProgressSnapshot | None = None
        self._high_water = 0.0
        self._ticked_this_quantum = False
        self._retries_left = retry_budget
        self.retry_count = 0
        self.bus.subscribe(self._on_bus_tick)

    # -- observation -------------------------------------------------------------

    @acquires("_snap_lock")
    def add_listener(
        self, listener: Callable[["QuerySession", SessionSnapshot], None]
    ) -> None:
        """Register a callback invoked with every published snapshot.

        The listener tuple is swapped under ``_snap_lock`` and iterated
        lock-free by :meth:`_publish` — a listener attached mid-run joins
        at the next publish, and publishing never blocks on registration.
        """
        with self._snap_lock:
            self.listeners = (*self.listeners, listener)

    @holds_lock("bus.lock", "_step_lock")
    def _on_bus_tick(self, _count: int) -> None:
        # Fired by the executing thread, including from deep inside
        # blocking phases — for a session, every pull happens in step(),
        # so the tick arrives with both the sampling lock and the step
        # lock held by construction. The monitor's own subscription ran
        # first (it subscribed in its constructor), so its freshest
        # snapshot is the last list entry — reuse it instead of sampling
        # twice.
        assert_owned(self.bus.lock, "bus sampling lock")
        assert_owned(self._step_lock, "session step lock")
        if self.monitor.snapshots:
            self._ticked_this_quantum = True
            self._last_progress = self.monitor.snapshots[-1]
            self._publish()

    @guarded_by("_step_lock")
    @acquires("_snap_lock")
    def _publish(self) -> None:
        snap = self.snapshot()
        dead: list[Callable] = []
        for listener in self.listeners:
            try:
                listener(self, snap)
            except Exception:  # noqa: BLE001 - a broken watcher must not kill the query
                dead.append(listener)
        if dead:
            # Detach, don't die: the erroring subscriber stops receiving
            # snapshots, every other watcher and the query itself carry on.
            with self._snap_lock:
                self.listeners = tuple(
                    fn for fn in self.listeners if not any(fn is d for d in dead)
                )

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def elapsed_s(self) -> float:
        start = self.started_at if self.started_at is not None else self.created_at
        end = self.finished_at if self.finished_at is not None else time.monotonic()
        return max(end - start, 0.0)

    @acquires("_step_lock")
    def remaining_work(self) -> float:
        """Live ``T̂(Q) − C(Q)``: the scheduler's shortest-expected-
        remaining-work key. Terminal sessions report 0.

        Takes the step lock: the not-yet-started branch below *writes*
        ``_last_progress``, and the scheduler calls this from its policy
        loop. Uncontended in practice — the scheduler only ranks sessions
        that are queued, never one a worker is currently stepping.
        """
        if self.state in TERMINAL_STATES:
            return 0.0
        with self._step_lock:
            progress = self._last_progress
            if progress is None:
                # Not yet started: prime from optimizer estimates. Safe — no
                # thread is executing this plan before its first step.
                progress = self.monitor.snapshot()
                self._last_progress = progress
        return max(progress.work_total_estimate - progress.work_done, 0.0)

    @acquires("_snap_lock")
    def snapshot(self) -> SessionSnapshot:
        """Current progress view, safe from any thread (never samples the
        live plan; reads the last snapshot the executing thread published).

        Lock order: the finished-session pinning below takes the bus
        sampling lock (inside ``true_total``) *before* ``_snap_lock`` is
        acquired, keeping the acquisition order acyclic against the
        publish path, which reaches here already holding the sampling
        lock.
        """
        state = self.state
        progress = self._last_progress
        degraded = progress is not None and progress.degraded
        if state is SessionState.FINISHED:
            # C(Q) is now the exact T(Q): pin to 1.0 with matching totals
            # so aggregates over finished sessions cannot drift or regress.
            done = total = self.monitor.true_total()
            frac = 1.0
        elif progress is not None:
            done = progress.work_done
            total = progress.work_total_estimate
            frac = progress.progress
        else:
            done = total = 0.0
            frac = 0.0
        with self._snap_lock:
            self._high_water = max(self._high_water, frac)
            self._snap_seq += 1
            seq = self._snap_seq
            high_water = self._high_water
        return SessionSnapshot(
            session_id=self.session_id,
            name=self.name,
            state=state.value,
            seq=seq,
            progress=high_water if state is not SessionState.FINISHED else 1.0,
            work_done=done,
            work_total_estimate=total,
            row_count=self.row_count,
            elapsed_s=self.elapsed_s(),
            error=self.error,
            degraded=degraded,
            degraded_reason=progress.degraded_reason if degraded else None,
            retries=self.retry_count,
            ensemble=progress.ensemble if progress is not None else None,
            weights=progress.weights if progress is not None else None,
            prior_source=progress.prior_source if progress is not None else None,
        )

    def results(self) -> tuple[list[str], list[tuple], bool]:
        """``(columns, spooled rows, truncated?)`` for the fetch op."""
        columns = self.plan.output_schema.names()
        return columns, list(self.rows), self.row_count > len(self.rows)

    # -- control -----------------------------------------------------------------

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Request cooperative cancellation; honoured at the next step."""
        self._cancel_reason = reason
        self._cancel.set()

    @acquires("_step_lock")
    def step(self, quantum_rows: int | None = None) -> bool:
        """Advance by one quantum. Returns True while more work remains.

        Terminal transitions (FINISHED / CANCELLED / FAILED) happen inside
        this call: the plan is closed, the final snapshot published, and
        False returned — at which point the scheduler drops the session
        and the worker is free.
        """
        with self._step_lock:
            assert_owned(self._step_lock, "session step lock")
            if self.state in TERMINAL_STATES:
                return False
            if self._cancel.is_set():
                self._finalize(SessionState.CANCELLED, self._cancel_reason)
                return False
            if self.state is SessionState.PENDING:
                self.started_at = time.monotonic()
                if self.timeout_s is not None:
                    self._deadline = self.started_at + self.timeout_s
                try:
                    self.cursor.open()
                except Exception as exc:  # noqa: BLE001 - reported as FAILED
                    self._finalize(SessionState.FAILED, _describe_error(exc))
                    return False
                self.state = SessionState.RUNNING
            if self._deadline is not None and time.monotonic() >= self._deadline:
                self._finalize(
                    SessionState.CANCELLED,
                    f"deadline exceeded (timeout_s={self.timeout_s:g})",
                )
                return False
            try:
                batch = self._fetch_with_retry(quantum_rows or self.quantum_rows)
            except Exception as exc:  # noqa: BLE001 - reported as FAILED
                self._finalize(SessionState.FAILED, _describe_error(exc))
                return False
            if batch:
                self.row_count += len(batch)
                room = self.row_cap - len(self.rows)
                if room > 0:
                    self.rows.extend(batch[:room])
            if self.cursor.exhausted or not batch:
                self._finalize(SessionState.FINISHED, None)
                return False
            if not self._ticked_this_quantum:
                # The tick bus stayed quiet this quantum (tick_interval >
                # quantum); publish from the step boundary so watchers
                # still see movement.
                self._last_progress = self.monitor.snapshot()
                self._publish()
            self._ticked_this_quantum = False
            return True

    @guarded_by("_step_lock")
    def _fetch_with_retry(self, max_rows: int) -> list[tuple]:
        """Pull one quantum, absorbing retryable storage faults.

        :class:`TransientFault` fires at the cursor boundary *before* the
        pull enters the plan, so no operator or estimator state is
        mid-flight when it unwinds — reissuing the fetch is sound. Each
        retry consumes the bounded per-session budget; once exhausted, the
        next transient fault propagates and fails the session. Anything
        raised from inside the plan (including non-retryable injected
        faults) propagates immediately: a generator-driven operator cannot
        resume across an unwound exception, so "retrying" would silently
        lose rows.
        """
        while True:
            try:
                return self.cursor.fetch(max_rows)
            except TransientFault:
                if self._retries_left <= 0:
                    raise
                self._retries_left -= 1
                self.retry_count += 1

    @guarded_by("_step_lock")
    def _finalize(self, state: SessionState, error: str | None) -> None:
        assert_owned(self._step_lock, "session step lock")
        self.error = error
        if self.cursor.opened and not self.cursor.closed:
            # Sample *before* close: closing marks every pipeline finished,
            # which would make a cancelled mid-flight session read as 1.0.
            self._last_progress = self.monitor.snapshot()
        try:
            self.cursor.close()
        except Exception as exc:  # noqa: BLE001 - close failure must not mask state
            if self.error is None:
                self.error = _describe_error(exc)
        self.state = state
        self.finished_at = time.monotonic()
        if state is SessionState.FINISHED and self.history is not None:
            # Statistics feedback: score the ensemble trajectory against the
            # now-known true total and persist the run. A store fault here
            # degrades the session's history, never the (already complete)
            # query — append_run absorbs it and sets degraded_reason.
            from repro.robust.feedback import record_run

            record_run(
                self.monitor,
                self.history,
                self.elapsed_s(),
                self.row_count,
                observed=self.observed,
            )
        self.bus.unsubscribe(self._on_bus_tick)
        self._publish()


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"
