"""Thread-pool scheduling of query sessions with pluggable policies.

The scheduler owns a pool of worker threads and a ready queue of
:class:`~repro.server.session.QuerySession` objects. A worker's loop is a
single primitive: pick a session per policy, run ``session.step()`` (one
quantum), requeue it if it still has work. Everything interesting —
cancellation, deadlines, failure — happens inside the step, so a worker
can never be captured by a dying session.

Policies
--------
``fair``
    Round-robin: FIFO over the ready queue, the multi-backend analogue of
    :class:`~repro.core.multi_query.InterleavedExecutor`'s turn order.
``serw``
    Shortest expected remaining work: pick the ready session with the
    smallest live ``T̂(Q) − C(Q)``. This is the progress framework feeding
    *back into* execution — the same online estimates that drive the
    progress bars order the queue, so short queries slip past long ones
    (shortest-remaining-processing-time approximated online). Estimates
    refine as queries run, so the ordering self-corrects.

Admission control
-----------------
The scheduler owns at most ``max_pending`` non-terminal sessions; further
submissions raise :class:`AdmissionError` immediately rather than building
an unbounded backlog (the overload answer a service needs: reject fast).
"""

from __future__ import annotations

import collections
import threading
from typing import Callable

from repro.common.locks import acquires, guarded_by
from repro.server.session import QuerySession

__all__ = ["AdmissionError", "POLICIES", "Scheduler"]

POLICIES = ("fair", "serw")


class AdmissionError(RuntimeError):
    """Submission rejected: the scheduler is full or shut down."""


class Scheduler:
    """Run many sessions over few threads, one quantum at a time."""

    # Every piece of scheduler state lives under the one condition
    # variable: queue, counters, worker table and the stop flag all change
    # together at pick/requeue boundaries, and the waits below predicate
    # on combinations of them.
    _guarded_by_ = {
        "_ready": "_cond",
        "_pending": "_cond",
        "_stepping": "_cond",
        "_stop": "_cond",
        "_threads": "_cond",
        "steps_taken": "_cond",
    }

    def __init__(
        self,
        workers: int = 4,
        policy: str = "fair",
        max_pending: int = 64,
        quantum_rows: int | None = None,
        on_step: Callable[[QuerySession], None] | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.workers = workers
        self.policy = policy
        self.max_pending = max_pending
        self.quantum_rows = quantum_rows
        self.on_step = on_step
        self.steps_taken = 0
        self._cond = threading.Condition()
        self._ready: collections.deque[QuerySession] = collections.deque()
        self._stepping = 0  # sessions currently inside step()
        self._pending = 0  # non-terminal sessions owned by the scheduler
        self._threads: list[threading.Thread] = []
        self._stop = False

    # -- lifecycle ---------------------------------------------------------------

    @acquires("_cond")
    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        with self._cond:
            if self._stop:
                raise AdmissionError("scheduler is shut down")
            missing = self.workers - len(self._threads)
            for i in range(missing):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-sched-{len(self._threads) + 1}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    @acquires("_cond")
    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers. Queued sessions are left unstepped; running
        quanta complete (a quantum is the preemption unit here too)."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
            # Copy under the lock: a concurrent start() may still be
            # appending worker threads, and joining must iterate a stable
            # list (the joins themselves happen outside the lock so a
            # draining worker can re-enter the condition).
            threads = list(self._threads)
        if wait:
            for thread in threads:
                thread.join(timeout=30.0)

    def __enter__(self) -> "Scheduler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # -- submission --------------------------------------------------------------

    @acquires("_cond")
    def submit(self, session: QuerySession) -> QuerySession:
        """Admit ``session`` for execution, or raise :class:`AdmissionError`."""
        with self._cond:
            if self._stop:
                raise AdmissionError("scheduler is shut down")
            if self._pending >= self.max_pending:
                raise AdmissionError(
                    f"scheduler is full ({self._pending} pending sessions, "
                    f"max_pending={self.max_pending})"
                )
            self._pending += 1
            self._ready.append(session)
            self._cond.notify()
        self.start()
        return session

    @acquires("_cond")
    def join(self, timeout: float | None = None) -> bool:
        """Block until every admitted session reached a terminal state."""
        with self._cond:
            return self._cond.wait_for(lambda: self._pending == 0, timeout)

    def run_until_complete(self, timeout: float | None = None) -> bool:
        """Convenience: start workers and wait for the backlog to drain."""
        self.start()
        return self.join(timeout)

    @property
    @acquires("_cond")
    def pending(self) -> int:
        with self._cond:
            return self._pending

    # -- the worker loop ---------------------------------------------------------

    @guarded_by("_cond")
    def _pick_locked(self) -> QuerySession:
        if self.policy == "fair" or len(self._ready) == 1:
            return self._ready.popleft()
        best_idx = min(
            range(len(self._ready)),
            key=lambda i: self._ready[i].remaining_work(),
        )
        self._ready.rotate(-best_idx)
        session = self._ready.popleft()
        self._ready.rotate(best_idx)
        return session

    @acquires("_cond")
    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._ready and not self._stop:
                    self._cond.wait()
                if self._stop:
                    return
                session = self._pick_locked()
                self._stepping += 1
            more = False
            try:
                more = session.step(self.quantum_rows)
            finally:
                with self._cond:
                    self._stepping -= 1
                    self.steps_taken += 1
                    if more:
                        self._ready.append(session)
                    else:
                        self._pending -= 1
                    self._cond.notify_all()
            callback = self.on_step
            if callback is not None:
                callback(session)
