"""The JSON-lines wire protocol.

One UTF-8 JSON object per ``\\n``-terminated line, both directions. A
connection carries any number of requests in sequence; ``watch`` turns
the response side into a stream of event lines that ends with an ``end``
event, after which the connection is ready for the next request.

Requests::

    {"op": "submit", "sql": "...", "mode": "once", "name": "...",
     "timeout_s": 30.0, "parallel": 4}       -> {"ok": true, "session": {...}}
    {"op": "status", "session_id": "s0001"}  -> {"ok": true, "session": {...}}
    {"op": "list"}                           -> {"ok": true, "sessions": [...],
                                                 "workload": {...}}
    {"op": "watch", "session_id": "s0001"}   -> stream (see below)
    {"op": "watch", "session_id": "s0001",
     "since": 17}                            -> stream, resumed: snapshots
                                                with seq <= 17 suppressed
    {"op": "watch", "until_idle": true}      -> aggregate stream
    {"op": "cancel", "session_id": "s0001"}  -> {"ok": true, "session": {...}}
    {"op": "fetch", "session_id": "s0001"}   -> {"ok": true, "columns": [...],
                                                 "rows": [...], "truncated": false}
    {"op": "ping"}                           -> {"ok": true, "pong": true}
    {"op": "shutdown"}                       -> {"ok": true} (server then stops)

Stream lines are ``{"event": "snapshot", "session": {...}}``,
``{"event": "delta", "session_id": "...", "seq": n, "base": m,
"changed": {...}}`` (only when the watch opted in with ``"delta": true``
— a compact frame holding just the snapshot fields that changed since
the full snapshot with ``seq == base``, reassembled client-side),
``{"event": "workload", "workload": {...}}`` and finally
``{"event": "end", "reason": "..."}``. Errors are
``{"ok": false, "error": {"code": "...", "message": "..."}}``; unknown
ops, oversized lines and malformed JSON all produce an error response
rather than a dropped connection.

``since`` is the watch resume cursor: a reconnecting client sends the
last snapshot ``seq`` it saw (per-session sequences are strictly
increasing), and the server suppresses anything at or below it — so a
stream re-attached after a network fault neither replays nor regresses.
A resumed delta stream always restarts each session with a full
keyframe, never a delta against state the connection has not seen.
"""

from __future__ import annotations

import json
from typing import IO

__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "ProtocolError",
    "decode",
    "encode",
    "error_response",
    "ok_response",
    "read_message",
    "write_frame",
    "write_message",
]

#: Upper bound on one wire line; longer lines are a protocol error.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Every operation the service understands.
OPS = frozenset(
    {"submit", "status", "watch", "cancel", "list", "fetch", "ping", "shutdown"}
)


class ProtocolError(ValueError):
    """Malformed frame: not JSON, not an object, or over the line limit."""


# One shared compact encoder for every wire line. Building a JSONEncoder
# per call (what ``json.dumps`` with non-default options does) costs an
# allocation + option validation on the hottest path in the repo; a single
# configured instance is reused process-wide (encode() is pure).
_ENCODER = json.JSONEncoder(
    ensure_ascii=False, separators=(",", ":"), default=str
)


def encode(message: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return _ENCODER.encode(message).encode() + b"\n"


def decode(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}"
        )
    return message


def read_message(stream: IO[bytes]) -> dict | None:
    """Read one frame from a binary stream; ``None`` on clean EOF."""
    line = stream.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    if not line.strip():
        return read_message(stream)
    return decode(line)


def write_message(stream: IO[bytes], message: dict) -> None:
    stream.write(encode(message))
    stream.flush()


def write_frame(stream: IO[bytes], frame: bytes) -> None:
    """Write one *pre-encoded* wire line (already newline-terminated).

    The serialize-once fan-out path: watch streams ship frames encoded
    exactly once at publish time, so writing to N watchers never
    re-encodes (R007 bans per-watcher ``encode`` calls outright).
    """
    stream.write(frame)
    stream.flush()


def ok_response(**fields) -> dict:
    return {"ok": True, **fields}


def error_response(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}
