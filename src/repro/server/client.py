"""Client library for the progress service.

Thin and stdlib-only, mirroring the protocol one method per op. Simple
request/response ops open a short-lived connection each (no client-side
locking needed, any thread may call any method); :meth:`watch` keeps its
connection open and yields decoded events until the stream ends.

    client = ProgressClient("127.0.0.1", 7661)
    session = client.submit("SELECT ... ")
    for event in client.watch(session["session_id"]):
        print(event["session"]["progress"])
"""

from __future__ import annotations

import socket
import time
from typing import Iterator

from repro.server.protocol import decode, encode, read_message

__all__ = ["ProgressClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service answered ``{"ok": false, ...}``."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


def _raise_if_error(response: dict) -> dict:
    if not response.get("ok", False):
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("code", "unknown")), str(error.get("message", response))
        )
    return response


class ProgressClient:
    """Speaks the JSON-lines protocol to one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7661, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------------

    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _roundtrip(self, request: dict) -> dict:
        with self._connect() as conn:
            conn.sendall(encode(request))
            with conn.makefile("rb") as stream:
                response = read_message(stream)
        if response is None:
            raise ServiceError("closed", "connection closed before a response")
        return _raise_if_error(response)

    # -- operations -------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def submit(
        self,
        sql: str,
        mode: str | None = None,
        name: str | None = None,
        timeout_s: float | None = None,
        quantum_rows: int | None = None,
    ) -> dict:
        """Submit SQL; returns the session's snapshot (incl. ``session_id``)."""
        request: dict = {"op": "submit", "sql": sql}
        if mode is not None:
            request["mode"] = mode
        if name is not None:
            request["name"] = name
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        if quantum_rows is not None:
            request["quantum_rows"] = quantum_rows
        return self._roundtrip(request)["session"]

    def status(self, session_id: str) -> dict:
        return self._roundtrip({"op": "status", "session_id": session_id})["session"]

    def list_sessions(self) -> dict:
        """``{"sessions": [...], "workload": {...}}``."""
        response = self._roundtrip({"op": "list"})
        return {"sessions": response["sessions"], "workload": response["workload"]}

    def cancel(self, session_id: str, reason: str | None = None) -> dict:
        request: dict = {"op": "cancel", "session_id": session_id}
        if reason is not None:
            request["reason"] = reason
        return self._roundtrip(request)["session"]

    def fetch(self, session_id: str) -> dict:
        """``{"columns": [...], "rows": [...], "truncated": bool, ...}``."""
        response = self._roundtrip({"op": "fetch", "session_id": session_id})
        response.pop("ok", None)
        return response

    def shutdown_server(self) -> None:
        self._roundtrip({"op": "shutdown"})

    def watch(
        self, session_id: str | None = None, until_idle: bool = False
    ) -> Iterator[dict]:
        """Stream watch events until the server ends the stream.

        Yields every event line including the final ``end`` event. Closing
        the generator closes the connection, which detaches the server-side
        subscription.
        """
        request: dict = {"op": "watch", "until_idle": until_idle}
        if session_id is not None:
            request["session_id"] = session_id
        conn = self._connect()
        try:
            conn.sendall(encode(request))
            with conn.makefile("rb") as stream:
                while True:
                    line = stream.readline()
                    if not line:
                        return
                    event = decode(line)
                    if not event.get("ok", True):
                        _raise_if_error(event)
                    yield event
                    if event.get("event") == "end":
                        return
        finally:
            conn.close()

    def wait(
        self, session_id: str, timeout: float = 120.0, poll_s: float = 0.05
    ) -> dict:
        """Poll ``status`` until the session is terminal; returns the final
        snapshot. Raises :class:`TimeoutError` when ``timeout`` elapses."""
        deadline = time.monotonic() + timeout
        while True:
            snap = self.status(session_id)
            if snap["state"] in ("finished", "cancelled", "failed"):
                return snap
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"session {session_id} still {snap['state']} after {timeout}s"
                )
            time.sleep(poll_s)
