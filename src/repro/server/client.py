"""Client library for the progress service.

Thin and stdlib-only, mirroring the protocol one method per op. Simple
request/response ops open a short-lived connection each (no client-side
locking needed, any thread may call any method); :meth:`watch` keeps its
connection open and yields decoded events until the stream ends.

    client = ProgressClient("127.0.0.1", 7661)
    session = client.submit("SELECT ... ")
    for event in client.watch(session["session_id"]):
        print(event["session"]["progress"])

Failure handling: every transport-level failure surfaces as a
:class:`ServiceError` with a stable code — ``connection`` (socket error /
reset / timeout), ``closed`` (EOF before a reply), ``protocol`` (truncated
or malformed frame) — never a raw ``ConnectionResetError`` or
``json.JSONDecodeError``. :meth:`watch` and :meth:`wait` additionally
retry those transient codes with bounded exponential backoff; a resumed
watch passes the last seen snapshot ``seq`` as the protocol's
``since`` cursor, so the re-attached stream never replays or regresses.
"""

from __future__ import annotations

import socket
import time
from typing import Iterator

from repro.server.protocol import ProtocolError, decode, encode, read_message
from repro.server.wire import apply_delta

__all__ = ["ProgressClient", "ServiceError"]

#: ServiceError codes that describe transport trouble rather than a server
#: verdict — the only ones watch/wait reconnect on (a server-sent error
#: like ``unknown_session`` will not get better by retrying).
TRANSIENT_CODES = frozenset({"connection", "closed", "protocol"})


class ServiceError(RuntimeError):
    """The service answered ``{"ok": false, ...}`` — or could not answer.

    ``code`` distinguishes server verdicts (``unknown_session``,
    ``admission``, ...) from transport failures (:data:`TRANSIENT_CODES`).
    """

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def _raise_if_error(response: dict) -> dict:
    if not response.get("ok", False):
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("code", "unknown")), str(error.get("message", response))
        )
    return response


def _backoff_s(attempt: int, base_s: float, cap_s: float) -> float:
    """Bounded exponential backoff: base * 2^(attempt-1), capped."""
    return min(base_s * (2 ** max(attempt - 1, 0)), cap_s)


class ProgressClient:
    """Speaks the JSON-lines protocol to one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7661, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------------

    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _roundtrip(self, request: dict) -> dict:
        try:
            with self._connect() as conn:
                conn.sendall(encode(request))
                with conn.makefile("rb") as stream:
                    response = read_message(stream)
        except ProtocolError as exc:
            # Truncated or malformed reply: surface a typed error, never a
            # raw JSONDecodeError, so callers can tell "bad wire" from
            # "server said no".
            raise ServiceError("protocol", f"malformed server reply: {exc}") from None
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ServiceError(
                "connection", f"{type(exc).__name__}: {exc}"
            ) from None
        if response is None:
            raise ServiceError("closed", "connection closed before a response")
        return _raise_if_error(response)

    # -- operations -------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("pong"))

    def submit(
        self,
        sql: str,
        mode: str | None = None,
        name: str | None = None,
        timeout_s: float | None = None,
        quantum_rows: int | None = None,
        parallel: int | None = None,
    ) -> dict:
        """Submit SQL; returns the session's snapshot (incl. ``session_id``).

        ``parallel=P`` requests partitioned multi-process execution; the
        server clamps it to its ``max_parallel`` ceiling and silently
        falls back to serial execution for unfragmentable queries.
        """
        request: dict = {"op": "submit", "sql": sql}
        if mode is not None:
            request["mode"] = mode
        if name is not None:
            request["name"] = name
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        if quantum_rows is not None:
            request["quantum_rows"] = quantum_rows
        if parallel is not None:
            request["parallel"] = parallel
        return self._roundtrip(request)["session"]

    def status(self, session_id: str) -> dict:
        return self._roundtrip({"op": "status", "session_id": session_id})["session"]

    def list_sessions(self) -> dict:
        """``{"sessions": [...], "workload": {...}}``."""
        response = self._roundtrip({"op": "list"})
        return {"sessions": response["sessions"], "workload": response["workload"]}

    def cancel(self, session_id: str, reason: str | None = None) -> dict:
        request: dict = {"op": "cancel", "session_id": session_id}
        if reason is not None:
            request["reason"] = reason
        return self._roundtrip(request)["session"]

    def fetch(self, session_id: str) -> dict:
        """``{"columns": [...], "rows": [...], "truncated": bool, ...}``."""
        response = self._roundtrip({"op": "fetch", "session_id": session_id})
        response.pop("ok", None)
        return response

    def shutdown_server(self) -> None:
        self._roundtrip({"op": "shutdown"})

    def watch(
        self,
        session_id: str | None = None,
        until_idle: bool = False,
        since: int | None = None,
        max_reconnects: int = 5,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        delta: bool = True,
    ) -> Iterator[dict]:
        """Stream watch events until the server ends the stream.

        Yields every event line including the final ``end`` event. Closing
        the generator closes the connection, which detaches the server-side
        subscription.

        By default the client asks for a *delta* stream: the server sends
        each session a periodic full keyframe and, in between, compact
        ``delta`` frames holding only the changed fields. Reassembly is
        transparent — callers always see full ``snapshot`` events,
        bit-identical to a ``delta=False`` stream. A delta that cannot be
        applied (base state lost) forces a reconnect, which resyncs via a
        fresh keyframe. ``delta=False`` requests plain full snapshots
        (compatibility with pre-delta servers, which simply ignore the
        flag either way).

        A stream that dies *without* an ``end`` event (reset, truncated
        frame, EOF) is re-attached with bounded exponential backoff, up to
        ``max_reconnects`` consecutive failures. Single-session watches
        resume exactly: the last seen snapshot ``seq`` rides along as the
        protocol's ``since`` cursor, so the server suppresses anything the
        client already saw and the merged stream keeps its strictly
        increasing ``seq`` / non-regressing progress guarantees. ``since``
        can also be seeded explicitly to continue from an earlier watch.
        """
        last_seq = since
        failures = 0
        # Per-session reassembly bases: the last full snapshot dict seen for
        # each session, which the next delta frame merges onto.
        bases: dict[str, dict] = {}
        while True:
            request: dict = {"op": "watch", "until_idle": until_idle}
            if delta:
                request["delta"] = True
            if session_id is not None:
                request["session_id"] = session_id
                if last_seq is not None:
                    request["since"] = last_seq
            try:
                conn = self._connect()
            except (ConnectionError, TimeoutError, OSError) as exc:
                failures += 1
                if failures > max_reconnects:
                    raise ServiceError(
                        "connection",
                        f"watch reconnect gave up after {max_reconnects} attempts: {exc}",
                    ) from None
                time.sleep(_backoff_s(failures, backoff_s, max_backoff_s))
                continue
            try:
                conn.sendall(encode(request))  # noqa: R007 - once per (re)connect
                with conn.makefile("rb") as stream:
                    while True:
                        line = stream.readline()
                        if not line:
                            break  # dropped without "end": reconnect below
                        event = decode(line)
                        if not event.get("ok", True):
                            code = str((event.get("error") or {}).get("code", ""))
                            if code in TRANSIENT_CODES:
                                # The server judged *our request* garbled —
                                # which, under socket faults, means the wire
                                # truncated it in flight. Re-send, don't die.
                                break
                            _raise_if_error(event)  # a real verdict: no retry
                        if event.get("event") == "delta":
                            sid = str(event.get("session_id", ""))
                            base = bases.get(sid)
                            try:
                                if base is None:
                                    raise ValueError(f"no base snapshot for {sid}")
                                merged = apply_delta(base, event)
                            except (ValueError, KeyError, TypeError):
                                # Base state lost (shouldn't happen on a
                                # healthy stream): resync via a keyframe on
                                # a fresh connection instead of guessing.
                                break
                            event = {"event": "snapshot", "session": merged}
                        if event.get("event") == "snapshot":
                            wire = event.get("session", {})
                            bases[str(wire.get("session_id", ""))] = wire
                            if session_id is not None:
                                seq = int(wire.get("seq", 0))
                                if last_seq is not None and seq <= last_seq:
                                    continue  # duplicate across a reconnect seam
                                last_seq = seq
                        failures = 0  # the stream is demonstrably alive
                        yield event
                        if event.get("event") == "end":
                            return
            except ProtocolError:
                pass  # truncated/garbled frame: treat as a dead stream
            except (ConnectionError, TimeoutError, OSError):
                pass
            finally:
                conn.close()
            failures += 1
            if failures > max_reconnects:
                raise ServiceError(
                    "connection",
                    f"watch stream lost after {max_reconnects} reconnect attempts",
                )
            time.sleep(_backoff_s(failures, backoff_s, max_backoff_s))

    def wait(
        self,
        session_id: str,
        timeout: float = 120.0,
        poll_s: float = 0.05,
        max_retries: int = 5,
        backoff_s: float = 0.05,
        max_backoff_s: float = 1.0,
    ) -> dict:
        """Poll ``status`` until the session is terminal; returns the final
        snapshot. Raises :class:`TimeoutError` when ``timeout`` elapses.

        Transport-level :class:`ServiceError`\\ s (:data:`TRANSIENT_CODES`)
        are retried with bounded exponential backoff — up to ``max_retries``
        *consecutive* failures — since the session keeps executing
        server-side regardless of how many status polls get through.
        """
        deadline = time.monotonic() + timeout
        failures = 0
        while True:
            try:
                snap = self.status(session_id)
            except ServiceError as exc:
                if exc.code not in TRANSIENT_CODES:
                    raise
                failures += 1
                if failures > max_retries:
                    raise
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"session {session_id} status unreachable after {timeout}s"
                    ) from None
                time.sleep(_backoff_s(failures, backoff_s, max_backoff_s))
                continue
            failures = 0
            if snap["state"] in ("finished", "cancelled", "failed"):
                return snap
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"session {session_id} still {snap['state']} after {timeout}s"
                )
            time.sleep(poll_s)
