"""Thread-safe session registry and workload-level aggregation.

The registry is the service's source of truth for "what queries exist",
and the one place aggregate (workload) progress is computed. Aggregation
uses the gnm measure over published per-session snapshots —
``Σ_q C(Q_q) / Σ_q T̂(Q_q)`` — with the terminal-session rule of
:class:`~repro.core.multi_query.MultiQueryProgressMonitor`: a session
that reached a terminal state contributes its *final observed* work for
both numerator and denominator, so a finished query whose estimator
undershot ``T̂(Q)`` cannot drag the workload below 1.0, and aggregate
progress never regresses when a query completes or is cancelled.

Reads never sample live executor state: they consume the immutable
:class:`~repro.server.session.SessionSnapshot` each session last
published, which is what makes ``list``/``status`` safe at any request
rate while 16 workers are mid-quantum.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.locks import acquires
from repro.server.session import SessionSnapshot, SessionState, QuerySession

__all__ = ["SessionRegistry", "WorkloadView"]

_TERMINAL_VALUES = frozenset(
    {
        SessionState.FINISHED.value,
        SessionState.CANCELLED.value,
        SessionState.FAILED.value,
    }
)


@dataclass(frozen=True)
class WorkloadView:
    """Aggregate progress across every registered session."""

    work_done: float
    work_total_estimate: float
    sessions: int
    states: dict[str, int] = field(default_factory=dict)
    per_session: dict[str, float] = field(default_factory=dict)

    @property
    def progress(self) -> float:
        if self.work_total_estimate <= 0:
            return 0.0
        return min(self.work_done / self.work_total_estimate, 1.0)

    @property
    def idle(self) -> bool:
        """True when every session is terminal (or none exist)."""
        active = sum(
            count
            for state, count in self.states.items()
            if state in (SessionState.PENDING.value, SessionState.RUNNING.value)
        )
        return active == 0

    def to_wire(self) -> dict:
        return {
            "progress": round(self.progress, 6),
            "work_done": self.work_done,
            "work_total_estimate": self.work_total_estimate,
            "sessions": self.sessions,
            "states": dict(self.states),
            "per_session": {k: round(v, 6) for k, v in self.per_session.items()},
            "idle": self.idle,
        }


class SessionRegistry:
    """Registry of every session the service has accepted."""

    # The session table is the only mutable state; every access goes
    # through ``_lock``, and readers get fresh list copies (never the
    # dict itself), so callers cannot race a concurrent submit/remove.
    _guarded_by_ = {"_sessions": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, QuerySession] = {}

    @acquires("_lock")
    def add(self, session: QuerySession) -> QuerySession:
        with self._lock:
            if session.session_id in self._sessions:
                raise ValueError(f"duplicate session id {session.session_id!r}")
            self._sessions[session.session_id] = session
        return session

    @acquires("_lock")
    def get(self, session_id: str) -> QuerySession | None:
        with self._lock:
            return self._sessions.get(session_id)

    @acquires("_lock")
    def remove(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    @acquires("_lock")
    def sessions(self) -> list[QuerySession]:
        with self._lock:
            return list(self._sessions.values())

    def snapshots(self) -> list[SessionSnapshot]:
        return [session.snapshot() for session in self.sessions()]

    @acquires("_lock")
    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def workload(self) -> WorkloadView:
        """Aggregate gnm progress over all sessions (see module docstring)."""
        return self.workload_from(self.snapshots())

    @staticmethod
    def workload_from(snapshots: list[SessionSnapshot]) -> WorkloadView:
        """Aggregate a given snapshot set — the registry's gnm fold made
        reusable, so the service can aggregate over *cached* published
        snapshots without resampling every session per request."""
        work_done = 0.0
        work_total = 0.0
        states: dict[str, int] = {}
        per_session: dict[str, float] = {}
        for snap in snapshots:
            states[snap.state] = states.get(snap.state, 0) + 1
            per_session[snap.session_id] = snap.progress
            if snap.state in _TERMINAL_VALUES:
                # Terminal: freeze the contribution at observed work so the
                # aggregate reflects completion/cancellation immediately.
                work_done += snap.work_done
                work_total += snap.work_done
            else:
                work_done += snap.work_done
                work_total += max(snap.work_total_estimate, snap.work_done)
        return WorkloadView(
            work_done=work_done,
            work_total_estimate=work_total,
            sessions=len(snapshots),
            states=states,
            per_session=per_session,
        )
