"""The serving layer: a concurrent query-progress service.

The paper's framework estimates progress for one query inside one
executor; this package is where those estimates meet *clients*: many
queries time-sliced over a worker pool, each one observable while it
runs, cancellable, and streamable to any number of watchers.

* :mod:`~repro.server.session` — resumable, cancellable query sessions;
* :mod:`~repro.server.scheduler` — thread-pool scheduling (round-robin or
  shortest-expected-remaining-work, driven by the live estimates);
* :mod:`~repro.server.registry` / :mod:`~repro.server.events` — snapshot
  registry and pub/sub fan-out for watchers;
* :mod:`~repro.server.protocol` / :mod:`~repro.server.wire` /
  :mod:`~repro.server.service` / :mod:`~repro.server.client` — a
  JSON-lines TCP protocol, serialize-once frame + delta encoding, the
  stdlib ``socketserver`` service, and the matching client library.

See ``docs/SERVER.md`` for the architecture and protocol reference.
"""

from repro.server.client import ProgressClient, ServiceError
from repro.server.events import EventBus, Subscription
from repro.server.registry import SessionRegistry, WorkloadView
from repro.server.scheduler import AdmissionError, Scheduler
from repro.server.service import ProgressService
from repro.server.session import (
    QuerySession,
    SessionSnapshot,
    SessionState,
    TERMINAL_STATES,
)
from repro.server.wire import PublishedFrame, SessionStreamEncoder

__all__ = [
    "AdmissionError",
    "EventBus",
    "ProgressClient",
    "ProgressService",
    "PublishedFrame",
    "QuerySession",
    "Scheduler",
    "ServiceError",
    "SessionRegistry",
    "SessionSnapshot",
    "SessionState",
    "SessionStreamEncoder",
    "Subscription",
    "TERMINAL_STATES",
    "WorkloadView",
]
