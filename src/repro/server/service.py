"""The query-progress service: sessions + scheduler + events over TCP.

:class:`ProgressService` composes the server subsystem into one object:

* SQL arrives over :mod:`repro.server.protocol`, is compiled against the
  service's catalog, wrapped in a
  :class:`~repro.server.session.QuerySession` and admitted to the
  :class:`~repro.server.scheduler.Scheduler`;
* every session publishes snapshots into the service's
  :class:`~repro.server.events.EventBus` and is listed in the
  :class:`~repro.server.registry.SessionRegistry`;
* a stdlib :class:`socketserver.ThreadingTCPServer` serves the protocol —
  one daemon thread per connection, ``watch`` connections parked on their
  event subscriptions, everything else answered from published snapshots.

Fan-out is serialize-once: each published snapshot is encoded to its
wire frame(s) exactly once by a per-session
:class:`~repro.server.wire.SessionStreamEncoder`, and the bus carries
the resulting :class:`~repro.server.wire.PublishedFrame` — watch
streams write pre-encoded bytes (a delta frame when the watcher opted in
and its stream is positioned exactly on the frame's base, the full
keyframe otherwise), and ``status``/``list`` answer from the cached
latest published snapshot instead of resampling. N watchers therefore
cost one encode per step, not N (lint rule R007 bans per-watcher
encodes mechanically).

Server threads never drive or mutate executor state (lint rule R001
enforces this mechanically for the whole ``repro.server`` package): the
only threads inside operators are scheduler workers, and the only
mutation path is ``Operator.next``/``next_batch`` under the bus lock.
"""

from __future__ import annotations

import socketserver
import threading

from repro.faults.plan import (
    SHORT_READ,
    SITE_SERVER_READ,
    SITE_SERVER_WRITE,
    FaultPlan,
    InjectedFault,
    plan_from_env,
)
from repro.common.locks import acquires
from repro.server.events import EventBus, Subscription
from repro.server.protocol import (
    OPS,
    ProtocolError,
    error_response,
    ok_response,
    read_message,
    write_frame,
    write_message,
)
from repro.server.registry import SessionRegistry, WorkloadView
from repro.server.scheduler import AdmissionError, Scheduler
from repro.server.session import QuerySession, SessionSnapshot
from repro.server.wire import PublishedFrame, SessionStreamEncoder
from repro.storage.catalog import Catalog

__all__ = ["ProgressService"]

#: How long a watch loop waits for the next event before re-checking the
#: end conditions (server shutdown, watched session already terminal).
_WATCH_POLL_S = 0.25


class ProgressService:
    """A multi-session query-progress service over one catalog."""

    # The encoder table is the only service-level mutable state beyond the
    # composed subsystems (each of which guards its own): every access to
    # it goes through ``_enc_lock``. Encoder *contents* have their own
    # internal lock, so holding ``_enc_lock`` never nests into frame
    # encoding.
    _guarded_by_ = {"_encoders": "_enc_lock"}

    def __init__(
        self,
        catalog: Catalog,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        policy: str = "fair",
        quantum_rows: int = 512,
        tick_interval: int = 2000,
        row_cap: int = 10_000,
        max_pending: int = 64,
        default_mode: str = "once",
        sample_fraction: float = 0.0,
        default_timeout_s: float | None = None,
        faults: FaultPlan | None = None,
        retry_budget: int = 3,
        max_parallel: int = 0,
        parallel_backend: str = "process",
        history_path=None,
    ):
        if max_parallel < 0:
            raise ValueError(f"max_parallel must be >= 0, got {max_parallel}")
        self.catalog = catalog
        self.host = host
        self.port = port
        self.quantum_rows = quantum_rows
        self.tick_interval = tick_interval
        self.row_cap = row_cap
        self.default_mode = default_mode
        self.sample_fraction = sample_fraction
        self.default_timeout_s = default_timeout_s
        # Deterministic fault injection: explicit plan, else the
        # REPRO_FAULTS env spec (so a deployed server can be chaos-tested
        # from outside), else None — in which case every injection site in
        # the stack stays a zero-cost no-op.
        self.faults = faults if faults is not None else plan_from_env()
        self.retry_budget = retry_budget
        # Robust subsystem: a run-history store shared by every session
        # (priors in, run records out) plus the observed-cardinality
        # overlay the compiler consults. Built after ``faults`` so the
        # store's history.read/write sites are armed; a read fault here
        # degrades the store to cold-start priors, never the service.
        self.history = None
        self.observed = None
        if history_path is not None:
            from repro.robust import HistoryStore, observed_view

            self.history = HistoryStore(history_path, faults=self.faults)
            self.observed = observed_view(self.history)
        # Parallel admission: 0 disables parallel execution entirely;
        # otherwise per-query parallelism is clamped to this ceiling.
        self.max_parallel = max_parallel
        self.parallel_backend = parallel_backend
        self.registry = SessionRegistry()
        self.events = EventBus()
        self._enc_lock = threading.Lock()
        self._encoders: dict[str, SessionStreamEncoder] = {}
        self.scheduler = Scheduler(
            workers=workers,
            policy=policy,
            max_pending=max_pending,
        )
        self._server: _ProtocolServer | None = None
        self._server_thread: threading.Thread | None = None
        self._stopped = threading.Event()

    # -- session operations (usable in-process, no TCP required) -----------------

    def submit_sql(
        self,
        sql: str,
        mode: str | None = None,
        name: str | None = None,
        timeout_s: float | None = None,
        quantum_rows: int | None = None,
        parallel: int | None = None,
    ) -> QuerySession:
        """Compile ``sql``, admit it for execution, return the session.

        ``parallel=P`` (P > 1, clamped to the service's ``max_parallel``
        ceiling) asks for partitioned multi-process execution; queries the
        fragmenter cannot split — and any request when ``max_parallel`` is
        0 — run as ordinary serial sessions.
        """
        from repro.sql import compile_select

        compiled = compile_select(
            self.catalog,
            sql,
            sample_fraction=self.sample_fraction,
            observed=self.observed,
        )
        session = None
        requested = min(int(parallel or 0), self.max_parallel)
        if requested > 1:
            from repro.parallel.fragments import try_compile
            from repro.parallel.session import ParallelQuerySession

            fragments = try_compile(compiled.plan, requested)
            if fragments is not None:
                session = ParallelQuerySession(
                    compiled.plan,
                    fragments,
                    name=name,
                    mode=mode or self.default_mode,
                    backend=self.parallel_backend,
                    tick_interval=self.tick_interval,
                    row_cap=self.row_cap,
                    timeout_s=(
                        timeout_s if timeout_s is not None else self.default_timeout_s
                    ),
                    faults=self.faults,
                    history=self.history,
                    observed=self.observed,
                )
        if session is None:
            session = QuerySession(
                compiled.plan,
                name=name,
                mode=mode or self.default_mode,
                tick_interval=self.tick_interval,
                quantum_rows=quantum_rows or self.quantum_rows,
                row_cap=self.row_cap,
                timeout_s=(
                    timeout_s if timeout_s is not None else self.default_timeout_s
                ),
                faults=self.faults,
                retry_budget=self.retry_budget,
                history=self.history,
                observed=self.observed,
            )
        # The frame encoder must exist before the listener can fire: the
        # first published snapshot already goes through it.
        with self._enc_lock:
            self._encoders[session.session_id] = SessionStreamEncoder()
        session.add_listener(self._on_session_event)
        self.registry.add(session)
        try:
            self.scheduler.submit(session)
        except AdmissionError:
            self.registry.remove(session.session_id)
            with self._enc_lock:
                self._encoders.pop(session.session_id, None)
            raise
        return session

    def cancel(self, session_id: str, reason: str = "cancelled by client") -> bool:
        session = self.registry.get(session_id)
        if session is None:
            return False
        session.cancel(reason)
        return True

    @acquires("_enc_lock")
    def _encoder_for(self, session_id: str) -> SessionStreamEncoder:
        with self._enc_lock:
            encoder = self._encoders.get(session_id)
            if encoder is None:
                # Sessions registered outside submit_sql (tests, embedders)
                # still get serialize-once frames.
                encoder = self._encoders[session_id] = SessionStreamEncoder()
            return encoder

    def _on_session_event(self, session: QuerySession, snap: SessionSnapshot) -> None:
        # The one encode point of the fan-out path: the executing worker
        # turns its snapshot into a pre-encoded frame, and every watcher
        # downstream only ever copies bytes.
        frame = self._encoder_for(session.session_id).encode(snap)
        self.events.publish(frame)

    def _cached_snapshot(self, session: QuerySession) -> SessionSnapshot:
        """The session's latest *published* snapshot — no resampling.

        Falls back to a fresh snapshot only for sessions that have never
        published (still pending admission/first step), where there is no
        cached state to serve.
        """
        snap = self._encoder_for(session.session_id).latest
        return snap if snap is not None else session.snapshot()

    def _cached_snapshots(self) -> list[SessionSnapshot]:
        return [self._cached_snapshot(s) for s in self.registry.sessions()]

    def _workload_view(self) -> WorkloadView:
        return SessionRegistry.workload_from(self._cached_snapshots())

    def _prime_frame(self, session: QuerySession) -> PublishedFrame:
        """The pre-encoded frame a fresh watch primes its stream with.

        For a session that has never published, one snapshot is taken and
        pushed through the session's encoder — a once-per-connection cost
        that also seeds the delta chain's first keyframe.
        """
        encoder = self._encoder_for(session.session_id)
        frame = encoder.latest_frame
        if frame is None:
            frame = encoder.encode(session.snapshot())
        return frame

    # -- TCP lifecycle ------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind and serve in a background thread; returns (host, port)."""
        if self._server is not None:
            return self.host, self.port
        self.scheduler.start()
        self._server = _ProtocolServer((self.host, self.port), self)
        self.host, self.port = self._server.server_address[:2]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._server_thread.start()
        return self.host, self.port

    def serve_forever(self) -> None:
        """Start and block until :meth:`shutdown` (for the CLI)."""
        self.start()
        self._stopped.wait()

    def shutdown(self) -> None:
        """Stop accepting connections, end watch streams, stop workers."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.events.close()
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(timeout=10.0)
            self._server_thread = None
        self.scheduler.shutdown(wait=True)

    def __enter__(self) -> "ProgressService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- request handling ---------------------------------------------------------

    def handle_request(self, request: dict, wfile) -> bool:
        """Answer one request on ``wfile``; returns False to drop the
        connection (only after ``shutdown``)."""
        op = request.get("op")
        if op not in OPS:
            write_message(
                wfile, error_response("bad_op", f"unknown op {op!r}; ops: {sorted(OPS)}")
            )
            return True
        try:
            handler = getattr(self, f"_op_{op}")
            return handler(request, wfile)
        except (BrokenPipeError, ConnectionResetError):
            raise
        except Exception as exc:  # noqa: BLE001 - the wire gets a typed error
            write_message(
                wfile, error_response(type(exc).__name__.lower(), str(exc))
            )
            return True

    def _session_or_error(self, request: dict, wfile) -> QuerySession | None:
        session_id = request.get("session_id")
        session = self.registry.get(session_id) if session_id else None
        if session is None:
            write_message(
                wfile,
                error_response("unknown_session", f"no session {session_id!r}"),
            )
        return session

    def _op_ping(self, request: dict, wfile) -> bool:
        write_message(wfile, ok_response(pong=True))
        return True

    def _op_submit(self, request: dict, wfile) -> bool:
        sql = request.get("sql")
        if not sql or not isinstance(sql, str):
            write_message(wfile, error_response("bad_request", "submit needs 'sql'"))
            return True
        try:
            session = self.submit_sql(
                sql,
                mode=request.get("mode"),
                name=request.get("name"),
                timeout_s=request.get("timeout_s"),
                quantum_rows=request.get("quantum_rows"),
                parallel=request.get("parallel"),
            )
        except AdmissionError as exc:
            write_message(wfile, error_response("admission", str(exc)))
            return True
        write_message(
            wfile, ok_response(session=self._cached_snapshot(session).to_wire())
        )
        return True

    def _op_status(self, request: dict, wfile) -> bool:
        session = self._session_or_error(request, wfile)
        if session is not None:
            write_message(
                wfile, ok_response(session=self._cached_snapshot(session).to_wire())
            )
        return True

    def _op_list(self, request: dict, wfile) -> bool:
        # Served entirely from cached published snapshots: a list request
        # never samples live sessions, whatever the request rate.
        snapshots = self._cached_snapshots()
        write_message(
            wfile,
            ok_response(
                sessions=[snap.to_wire() for snap in snapshots],
                workload=SessionRegistry.workload_from(snapshots).to_wire(),
            ),
        )
        return True

    def _op_cancel(self, request: dict, wfile) -> bool:
        session = self._session_or_error(request, wfile)
        if session is not None:
            session.cancel(str(request.get("reason") or "cancelled by client"))
            write_message(
                wfile, ok_response(session=self._cached_snapshot(session).to_wire())
            )
        return True

    def _op_fetch(self, request: dict, wfile) -> bool:
        session = self._session_or_error(request, wfile)
        if session is not None:
            columns, rows, truncated = session.results()
            write_message(
                wfile,
                ok_response(
                    columns=columns,
                    rows=[list(row) for row in rows],
                    truncated=truncated,
                    row_count=session.row_count,
                    state=session.state.value,
                ),
            )
        return True

    def _op_shutdown(self, request: dict, wfile) -> bool:
        write_message(wfile, ok_response())
        # Shut down from a helper thread: shutdown() joins the serve loop,
        # which would deadlock if called from a handler thread directly.
        threading.Thread(target=self.shutdown, daemon=True).start()
        return False

    def _op_watch(self, request: dict, wfile) -> bool:
        session_id = request.get("session_id")
        until_idle = bool(request.get("until_idle"))
        use_delta = bool(request.get("delta"))
        since = request.get("since")
        if since is not None:
            try:
                since = int(since)
            except (TypeError, ValueError):
                write_message(
                    wfile,
                    error_response("bad_request", f"since must be an int, got {since!r}"),
                )
                return True
            if session_id is None:
                write_message(
                    wfile,
                    error_response(
                        "bad_request", "since requires a session_id (per-session seq)"
                    ),
                )
                return True
        if session_id is not None and self.registry.get(session_id) is None:
            write_message(
                wfile,
                error_response("unknown_session", f"no session {session_id!r}"),
            )
            return True
        subscription = self.events.subscribe()
        try:
            self._stream_watch(
                subscription, session_id, until_idle, wfile, since, use_delta
            )
        finally:
            # Detach whether the stream ended or the client dropped —
            # otherwise every dead watcher would keep receiving forever.
            subscription.close()
        return True

    def _stream_watch(
        self,
        subscription: Subscription,
        session_id: str | None,
        until_idle: bool,
        wfile,
        since: int | None = None,
        use_delta: bool = False,
    ) -> None:
        # Per-session high-water snapshot sequence: frames queued before the
        # priming frame was emitted are stale and must not be re-emitted
        # after it (they would make the stream regress). ``since`` seeds the
        # mark from a reconnecting client's last seen seq, so a resumed
        # watch never replays or regresses past what the client already has.
        #
        # ``keyframed`` tracks which sessions *this connection* has shipped
        # a full snapshot for: a delta frame is only ever written on top of
        # a full frame the same connection already delivered, so the first
        # frame per session — including the first after a ``since`` resume —
        # is always a keyframe, never a delta against unseen state.
        last_seq: dict[str, int] = {}
        keyframed: set[str] = set()
        if since is not None and session_id is not None:
            last_seq[session_id] = since

        def emit_frame(frame: PublishedFrame) -> bool:
            sid = frame.session_id
            if frame.seq <= last_seq.get(sid, -1):
                return False
            if (
                use_delta
                and frame.delta is not None
                and sid in keyframed
                and frame.base == last_seq.get(sid)
            ):
                payload = frame.delta
            else:
                payload = frame.full
                keyframed.add(sid)
            last_seq[sid] = frame.seq
            write_frame(wfile, payload)
            return True

        def emit_workload() -> None:
            # O(state transitions), not O(steps): workload lines only ride
            # along on priming and terminal events, built from cached
            # published snapshots.
            write_message(
                wfile,
                {"event": "workload", "workload": self._workload_view().to_wire()},
            )

        def end(reason: str) -> None:
            write_message(wfile, {"event": "end", "reason": reason})

        # Prime the stream with current state so watchers render instantly.
        if session_id is not None:
            session = self.registry.get(session_id)
            frame = self._prime_frame(session)
            emit_frame(frame)
            if frame.terminal:
                end("session terminal")
                return
        else:
            for session in self.registry.sessions():
                emit_frame(self._prime_frame(session))
            emit_workload()
            if until_idle and self._workload_view().idle:
                end("workload idle")
                return
        while True:
            try:
                event = subscription.get(timeout=_WATCH_POLL_S)
            except TimeoutError:
                if self._stopped.is_set():
                    end("server shutdown")
                    return
                continue
            if event is None:
                end("server shutdown")
                return
            if not isinstance(event, PublishedFrame):
                continue  # foreign bus traffic (tests, embedders)
            if session_id is not None:
                if event.session_id != session_id:
                    continue
                emit_frame(event)
                if event.terminal:
                    end("session terminal")
                    return
            else:
                emit_frame(event)
                if event.terminal:
                    emit_workload()
                    if until_idle and self._workload_view().idle:
                        end("workload idle")
                        return


class _FaultyStream:
    """Socket-file wrapper arming the ``server.read``/``server.write`` sites.

    Injected faults surface as the failure modes a real network produces:
    ``error`` becomes a dropped connection (:class:`ConnectionResetError`,
    which the handler's normal disconnect path absorbs), ``stall`` a
    latency spike, and ``short_read`` a truncated frame — half the line on
    reads, half the bytes then a broken pipe on writes, which is exactly
    the malformed/truncated-reply case clients must survive.
    """

    def __init__(self, raw, faults: FaultPlan, site: str):
        self._raw = raw
        self._faults = faults
        self._site = site

    def _probe(self):
        try:
            return self._faults.fire(self._site)
        except InjectedFault as exc:
            raise ConnectionResetError(str(exc)) from None

    def readline(self, limit: int = -1) -> bytes:
        spec = self._probe()
        line = self._raw.readline(limit)
        if spec is not None and spec.kind == SHORT_READ and len(line) > 1:
            return line[: len(line) // 2]
        return line

    def write(self, data: bytes) -> int:
        spec = self._probe()
        if spec is not None and spec.kind == SHORT_READ and len(data) > 1:
            self._raw.write(data[: len(data) // 2])
            self._raw.flush()
            raise BrokenPipeError(f"injected short write at {self._site}")
        return self._raw.write(data)

    def flush(self) -> None:
        self._raw.flush()


class _ProtocolHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: ProgressService = self.server.service  # type: ignore[attr-defined]
        rfile, wfile = self.rfile, self.wfile
        faults = service.faults
        if faults is not None:
            if faults.has_site(SITE_SERVER_READ):
                rfile = _FaultyStream(rfile, faults, SITE_SERVER_READ)
            if faults.has_site(SITE_SERVER_WRITE):
                wfile = _FaultyStream(wfile, faults, SITE_SERVER_WRITE)
        try:
            while True:
                try:
                    request = read_message(rfile)
                except ProtocolError as exc:
                    # One error reply per garbled request, then the
                    # connection drops — not a fan-out encode.
                    write_message(  # noqa: R007
                        wfile, error_response("protocol", str(exc))
                    )
                    return
                if request is None:
                    return
                if not service.handle_request(request, wfile):
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away; watch subscriptions were detached


class _ProtocolServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ProgressService):
        self.service = service
        super().__init__(address, _ProtocolHandler)
