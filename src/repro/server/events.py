"""Pub/sub event bus: N watchers over one stream of progress events.

The service publishes one small dict per session step / state transition;
watchers (``watch`` connections, dashboards, tests) each get their own
bounded mailbox. Design constraints, in order:

* **publishers never block** — a slow or stalled watcher must not be able
  to hold up a scheduler worker, so mailboxes are bounded deques that drop
  their *oldest* event on overflow (progress events are snapshots; the
  latest one supersedes the rest, so dropping old ones loses nothing a
  watcher can act on). ``Subscription.dropped`` counts the losses.
* **detach is first-class** — a watcher whose connection dies unsubscribes
  and is immediately forgotten; the bus holds no reference afterwards
  (the event-layer twin of :meth:`TickBus.unsubscribe`).
* **no executor coupling** — events are plain dicts produced *outside* the
  execution lock; the bus never touches operator or estimator state.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.common.locks import acquires

__all__ = ["EventBus", "Subscription"]


class Subscription:
    """One watcher's bounded mailbox of events.

    Iterate it (``for event in sub:``) or call :meth:`get`. Iteration ends
    when the subscription is closed (by :meth:`close`, or the bus shutting
    down) and the mailbox has drained.
    """

    # The mailbox and drop counter live under the condition's lock;
    # ``_closed`` is a write-guarded latch (bool swap) that ``closed`` may
    # read lock-free — it only ever goes False -> True, and a stale False
    # just means one extra get() round-trip.
    _guarded_by_ = {"_events": "_cond", "dropped": "_cond"}
    _write_guarded_by_ = {"_closed": "_cond"}

    def __init__(self, bus: "EventBus", maxlen: int):
        self._bus = bus
        self._cond = threading.Condition()
        self._events: deque[dict] = deque(maxlen=maxlen)
        self._closed = False
        self.dropped = 0

    @acquires("_cond")
    def _push(self, event: dict) -> None:
        with self._cond:
            if self._closed:
                return
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(event)
            self._cond.notify()

    @acquires("_cond")
    def _mark_closed(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @acquires("_cond")
    def get(self, timeout: float | None = None) -> dict | None:
        """Next event; ``None`` once closed and drained.

        Raises :class:`TimeoutError` if ``timeout`` elapses with the
        subscription still live but empty.
        """
        with self._cond:
            got = self._cond.wait_for(
                lambda: self._events or self._closed, timeout
            )
            if self._events:
                return self._events.popleft()
            if self._closed:
                return None
            if not got:
                raise TimeoutError("no event within timeout")
            return None  # pragma: no cover - unreachable

    def __iter__(self):
        while True:
            event = self.get()
            if event is None:
                return
            yield event

    def close(self) -> None:
        """Detach from the bus and wake any blocked :meth:`get`."""
        self._bus.unsubscribe(self)


class EventBus:
    """Fan-out of progress events to any number of subscriptions."""

    # Subscription tuple + closed latch are swapped under ``_lock`` and
    # read lock-free (the immutable-snapshot pattern): publish() iterates
    # whatever tuple it sees, so a subscriber detaching mid-fire is
    # harmless and publishers never contend with subscribe/unsubscribe.
    _write_guarded_by_ = {"_subs": "_lock", "_closed": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subs: tuple[Subscription, ...] = ()
        self._closed = False

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    @acquires("_lock")
    def subscribe(self, maxlen: int = 256) -> Subscription:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        sub = Subscription(self, maxlen)
        with self._lock:
            if self._closed:
                sub._mark_closed()
            else:
                self._subs = (*self._subs, sub)
        return sub

    @acquires("_lock")
    def unsubscribe(self, sub: Subscription) -> None:
        """Detach ``sub``; unknown subscriptions are ignored."""
        with self._lock:
            self._subs = tuple(s for s in self._subs if s is not sub)
        sub._mark_closed()

    def publish(self, event: dict) -> None:
        """Deliver ``event`` to every live subscription without blocking."""
        for sub in self._subs:
            sub._push(event)

    @acquires("_lock")
    def close(self) -> None:
        """Shut the bus down; all subscriptions drain and then end."""
        with self._lock:
            subs, self._subs = self._subs, ()
            self._closed = True
        for sub in subs:
            sub._mark_closed()
