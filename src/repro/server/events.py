"""Pub/sub event bus: N watchers over one stream of progress events.

The service publishes one small dict per session step / state transition;
watchers (``watch`` connections, dashboards, tests) each get their own
bounded mailbox. Design constraints, in order:

* **publishers never block** — a slow or stalled watcher must not be able
  to hold up a scheduler worker, so mailboxes are bounded. On overflow
  the mailbox first *conflates*: progress snapshots are cumulative, so
  the oldest queued event that a newer same-session event supersedes is
  evicted (``Subscription.conflated`` counts these — bounded staleness,
  the watcher still sees a strictly increasing per-session seq with the
  latest state). Only when nothing is superseded — every queued event is
  the newest of its session, or has no session at all — does the mailbox
  fall back to dropping its oldest event (``Subscription.dropped``).
  The conflation-aware policy also closes the resume-cursor gap of plain
  drop-oldest: a watcher can no longer observe a stale frame whose newer
  replacement was the one dropped.
* **detach is first-class** — a watcher whose connection dies unsubscribes
  and is immediately forgotten; the bus holds no reference afterwards
  (the event-layer twin of :meth:`TickBus.unsubscribe`).
* **no executor coupling** — events are plain dicts produced *outside* the
  execution lock; the bus never touches operator or estimator state.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.common.locks import acquires, guarded_by

__all__ = ["EventBus", "Subscription", "conflation_key"]


def conflation_key(event: Any) -> str | None:
    """The session identity an event can be conflated on, if any.

    Pre-encoded published frames carry ``session_id`` as an attribute;
    legacy snapshot dicts nest it under ``session``. Events without a
    session identity (workload aggregates, arbitrary test dicts) return
    ``None`` and are never conflated — they keep plain drop-oldest.
    """
    key = getattr(event, "session_id", None)
    if key is not None:
        return key
    if isinstance(event, dict):
        session = event.get("session")
        if isinstance(session, dict):
            return session.get("session_id")
    return None


class Subscription:
    """One watcher's bounded mailbox of events.

    Iterate it (``for event in sub:``) or call :meth:`get`. Iteration ends
    when the subscription is closed (by :meth:`close`, or the bus shutting
    down) and the mailbox has drained.
    """

    # The mailbox and overflow counters live under the condition's lock;
    # ``_closed`` is a write-guarded latch (bool swap) that ``closed`` may
    # read lock-free — it only ever goes False -> True, and a stale False
    # just means one extra get() round-trip.
    _guarded_by_ = {
        "_events": "_cond",
        "dropped": "_cond",
        "conflated": "_cond",
    }
    _write_guarded_by_ = {"_closed": "_cond"}

    def __init__(self, bus: "EventBus", maxlen: int):
        self._bus = bus
        self._cond = threading.Condition()
        self._events: deque[Any] = deque(maxlen=maxlen)
        self._closed = False
        self.dropped = 0
        self.conflated = 0

    @acquires("_cond")
    def _push(self, event: Any) -> None:
        with self._cond:
            if self._closed:
                return
            if len(self._events) == self._events.maxlen:
                if not self._conflate(conflation_key(event)):
                    self.dropped += 1
            self._events.append(event)
            self._cond.notify()

    @guarded_by("_cond")
    def _conflate(self, incoming_key: str | None) -> bool:
        """Evict the oldest queued event superseded by a newer one.

        Called under ``_cond`` when the mailbox is full. An event is
        superseded when a newer event for the same session sits behind it
        in the queue (or is the incoming event itself) — progress
        snapshots are cumulative, so the newer frame carries everything
        the older one did. Returns True when a victim was evicted (the
        append then fits without loss); False means nothing is
        superseded and the caller falls back to drop-oldest.
        """
        last_index: dict[str, int] = {}
        for i, queued in enumerate(self._events):
            key = conflation_key(queued)
            if key is not None:
                last_index[key] = i
        for i, queued in enumerate(self._events):
            key = conflation_key(queued)
            if key is None:
                continue
            if last_index[key] > i or key == incoming_key:
                del self._events[i]
                self.conflated += 1
                return True
        return False

    @acquires("_cond")
    def _mark_closed(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @acquires("_cond")
    def get(self, timeout: float | None = None) -> Any | None:
        """Next event; ``None`` once closed and drained.

        Raises :class:`TimeoutError` if ``timeout`` elapses with the
        subscription still live but empty.
        """
        with self._cond:
            got = self._cond.wait_for(
                lambda: self._events or self._closed, timeout
            )
            if self._events:
                return self._events.popleft()
            if self._closed:
                return None
            if not got:
                raise TimeoutError("no event within timeout")
            return None  # pragma: no cover - unreachable

    def __iter__(self):
        while True:
            event = self.get()
            if event is None:
                return
            yield event

    def close(self) -> None:
        """Detach from the bus and wake any blocked :meth:`get`."""
        self._bus.unsubscribe(self)


class EventBus:
    """Fan-out of progress events to any number of subscriptions."""

    # Subscription tuple + closed latch are swapped under ``_lock`` and
    # read lock-free (the immutable-snapshot pattern): publish() iterates
    # whatever tuple it sees, so a subscriber detaching mid-fire is
    # harmless and publishers never contend with subscribe/unsubscribe.
    _write_guarded_by_ = {"_subs": "_lock", "_closed": "_lock"}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subs: tuple[Subscription, ...] = ()
        self._closed = False

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    @acquires("_lock")
    def subscribe(self, maxlen: int = 256) -> Subscription:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        sub = Subscription(self, maxlen)
        with self._lock:
            if self._closed:
                sub._mark_closed()
            else:
                self._subs = (*self._subs, sub)
        return sub

    @acquires("_lock")
    def unsubscribe(self, sub: Subscription) -> None:
        """Detach ``sub``; unknown subscriptions are ignored."""
        with self._lock:
            self._subs = tuple(s for s in self._subs if s is not sub)
        sub._mark_closed()

    def publish(self, event: Any) -> None:
        """Deliver ``event`` to every live subscription without blocking.

        Events are opaque to the bus: plain dicts or pre-encoded
        :class:`~repro.server.wire.PublishedFrame` objects — the bus
        never encodes, it only fans references out.
        """
        for sub in self._subs:
            sub._push(event)

    @acquires("_lock")
    def close(self) -> None:
        """Shut the bus down; all subscriptions drain and then end."""
        with self._lock:
            subs, self._subs = self._subs, ()
            self._closed = True
        for sub in subs:
            sub._mark_closed()
