"""Push-down estimation for pipelines of hash joins (Section 4.1.4, Algorithm 1).

Consider a chain of hash joins J0 (lowest) .. J(k-1) (topmost) where each
join's probe input is the output of the join below and J0's probe input is a
base tuple stream C. In Volcano order the *upper* builds complete first
(J(k-1)'s build, then J(k-2)'s, ..., then J0's) and only then does C stream
through J0's probe pass. The paper pushes the estimation of **every** join
in the chain down to that single probe pass:

* **Same attribute / Case 1** — Ji's probe key traces to a column of C
  itself: each C tuple r contributes ``Π_m H_m[r.c_m]`` output tuples at
  level i, where ``H_m`` are the exact build histograms.
* **Case 2** — Ji's probe key traces to a column ``a`` of a *lower* build
  relation B_m: no column of C can probe ``H_i`` directly. Instead, during
  B_m's build pass (which runs *after* H_i is complete), a derived
  histogram is built over B_m's own join key x:
  ``W[x] += H_i[b.a]`` — the paper's "histogram representing the
  distribution of values in column x of A ⋈ B". At probe time ``W[r.x]``
  *replaces* both H_m's factor and the folded joins' factors.

This module implements the fully recursive form of Algorithm 1's
``makeJoinList``: references may nest (a join keyed on the build input of a
join that is itself keyed on another build input), as in a TPC-H Q8-style
chain where ``customer`` is probed via ``orders``'s build column and
``nation`` via ``customer``'s. Every join m owns a family of *versioned
effective histograms*

    A_m^{(i)} = Σ_{b in B_m, key(b)=v} Π_{l refs B_m, l <= i} A_l^{(i)}[b.a_l]

keyed by its build key, where version ``i`` (a *breakpoint*) includes the
weight of all joins up to level i that transitively reach B_m. Because
builds execute top-down, each A_l^{(i)} is complete before B_m streams by,
so all versions are built in B_m's single build pass. The level-i estimate
for a probe tuple r is then ``Π over C-keyed joins m <= i of A_m^{(i)}[r.c_m]``,
and every join's estimate converges to its exact output cardinality by the
end of C's probe pass — while dne/byte "would not have seen many tuples at
the upper join" yet.

A chain of length 1 degenerates to the binary ONCE estimator, so
:class:`HashJoinChainEstimator` is the uniform mechanism the estimation
manager attaches to every hash join.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from operator import itemgetter
from typing import Callable, Sequence

from repro.common.errors import EstimationError
from repro.core.confidence import MeanEstimateInterval
from repro.core.histogram import FrequencyHistogram
from repro.core.join_estimators import TotalProvider, resolve_stream_total
from repro.executor.operators.base import Operator
from repro.executor.operators.hash_join import HashJoin
from repro.executor.plan import walk

__all__ = ["HashJoinChainEstimator", "find_hash_join_chains"]

OutputListener = Callable[[object, int], None]


def find_hash_join_chains(root: Operator) -> list[list[HashJoin]]:
    """All maximal probe-edge-connected chains of hash joins, bottom-up.

    A chain is a sequence J0..J(k-1) of :class:`HashJoin` operators where
    ``J(i+1).probe_child is Ji``. Chains are maximal: the list includes
    single joins whose probe input is not a hash join. An operator between
    two joins (even a filter) breaks the chain — the upper join then heads
    its own chain, estimated against the intermediate stream.
    """
    joins = [op for op in walk(root) if isinstance(op, HashJoin)]
    # Only inner joins compose multiplicatively; semi/anti/outer joins head
    # and terminate their own (usually singleton) chains.

    def extends_down(join: HashJoin) -> bool:
        child = join.probe_child
        return (
            join.join_type == "inner"
            and isinstance(child, HashJoin)
            and child.join_type == "inner"
        )

    absorbed = {id(j.probe_child) for j in joins if extends_down(j)}
    chains: list[list[HashJoin]] = []
    for join in joins:
        if id(join) in absorbed:
            continue  # a join above will pick this one up
        chain: list[HashJoin] = [join]
        while extends_down(chain[-1]):
            chain.append(chain[-1].probe_child)  # type: ignore[arg-type]
        chain.reverse()
        chains.append(chain)
    return chains


@dataclass(frozen=True, slots=True)
class _Provenance:
    """Where a join's probe key column comes from."""

    kind: str  # "C" (base probe stream) or "B" (a lower join's build input)
    level: int  # for "B": chain index of the owning join; -1 for "C"
    index: int  # column index within the C row / the B_level build row


class HashJoinChainEstimator:
    """Estimates the output cardinality of every join in a hash-join chain.

    Parameters
    ----------
    chain:
        Hash joins bottom-up (``chain[0]`` is the lowest; its probe child is
        the base stream C). Single-element chains are the binary case.
    probe_total:
        ``|C|`` — number, provider, or None to resolve from the plan.
    record_every:
        If > 0, append ``(t, estimate)`` per level to ``history[level]``
        every that many C tuples.
    stop_after_sample:
        Section 4.4's punctuation behaviour: "for each pipeline, we keep
        obtaining estimates until the random sample is read ... After this
        point, we have an approximately correct estimate". When True and
        the base probe stream is (or sits above) a
        :class:`~repro.executor.operators.scan.SampleScan`, the estimator
        freezes when the scan's sample-boundary punctuation fires —
        trading the exact-at-pass-end guarantee for zero per-tuple work on
        the bulk of the stream. Default False (refine to exactness).

    Raises
    ------
    EstimationError
        For chain shapes outside the framework: multi-column chain keys or
        probe keys whose provenance cannot be resolved.
    """

    __slots__ = (
        "chain",
        "k",
        "base_stream",
        "_c_schema",
        "_probe_total",
        "provenance",
        "refs",
        "breakpoints",
        "base_hists",
        "derived",
        "_level_factors",
        "_combo_cols",
        "_combo_extract",
        "_level_factor_slots",
        "t",
        "sums",
        "exact",
        "frozen",
        "record_every",
        "history",
        "_intervals",
        "output_listeners",
    )

    def __init__(
        self,
        chain: list[HashJoin],
        probe_total: float | TotalProvider | None = None,
        record_every: int = 0,
        stop_after_sample: bool = False,
    ):
        if not chain:
            raise EstimationError("empty hash-join chain")
        for join in chain:
            if join.join_type != "inner":
                raise EstimationError(
                    f"chain estimation is defined for inner joins; "
                    f"{join.describe()} is {join.join_type} — use the binary "
                    "ONCE estimator"
                )
        for lower, upper in zip(chain, chain[1:]):
            if upper.probe_child is not lower:
                raise EstimationError(
                    "chain joins must be connected probe-to-output, bottom-up"
                )
        self.chain = list(chain)
        self.k = len(chain)
        self.base_stream = chain[0].probe_child
        self._c_schema = self.base_stream.output_schema

        if probe_total is None:
            self._probe_total: TotalProvider = resolve_stream_total(self.base_stream)
        elif callable(probe_total):
            self._probe_total = probe_total
        else:
            total = float(probe_total)
            self._probe_total = lambda: total

        # Resolve each join's probe-key provenance.
        self.provenance: list[_Provenance] = [self._locate(i) for i in range(self.k)]

        # refs[m]: ascending levels whose probe key references B_m.
        self.refs: dict[int, list[int]] = {}
        for i, prov in enumerate(self.provenance):
            if prov.kind == "B":
                self.refs.setdefault(prov.level, []).append(i)
        for levels in self.refs.values():
            levels.sort()

        # Breakpoints: versions at which join m's effective histogram
        # changes content. A direct reference at level l adds breakpoint l;
        # folded joins propagate their own later breakpoints. Computed top
        # down so referenced (higher) joins are resolved first.
        self.breakpoints: dict[int, list[int]] = {}
        for m in range(self.k - 1, -1, -1):
            bps: set[int] = set()
            for level in self.refs.get(m, []):
                bps.add(level)
                bps.update(self.breakpoints.get(level, []))
            self.breakpoints[m] = sorted(bps)

        # Base histograms H_m and derived versions W[(m, breakpoint)].
        self.base_hists: list[FrequencyHistogram] = [
            FrequencyHistogram() for _ in range(self.k)
        ]
        self.derived: dict[tuple[int, int], FrequencyHistogram] = {
            (m, bp): FrequencyHistogram()
            for m, bps in self.breakpoints.items()
            for bp in bps
        }

        # Per-level probe factor tables: level i multiplies, for each
        # C-keyed join m <= i, its effective histogram version at i.
        self._level_factors: list[list[tuple[int, FrequencyHistogram]]] = []
        for i in range(self.k):
            factors = [
                (self.provenance[m].index, self._effective_hist(m, i))
                for m in range(i + 1)
                if self.provenance[m].kind == "C"
            ]
            self._level_factors.append(factors)

        # Batch aggregation: a probe tuple's per-level contributions depend
        # only on the C columns the factor tables read, so a batch can be
        # aggregated by that column combination — one factor-product per
        # *distinct* combo instead of per row.
        combo_cols = sorted({col for factors in self._level_factors for col, _ in factors})
        self._combo_cols = combo_cols
        if not combo_cols:
            self._combo_extract = None  # every level is an empty product (=1)
        elif len(combo_cols) == 1:
            only = combo_cols[0]
            self._combo_extract = lambda row: (row[only],)
        else:
            self._combo_extract = itemgetter(*combo_cols)
        position = {col: pos for pos, col in enumerate(combo_cols)}
        self._level_factor_slots = [
            [(position[col], hist) for col, hist in factors]
            for factors in self._level_factors
        ]

        # Estimation state.
        self.t: int = 0
        self.sums: list[int] = [0] * self.k
        self.exact: bool = False
        self.frozen: bool = False
        self.record_every = record_every
        self.history: list[list[tuple[int, float]]] = [[] for _ in range(self.k)]
        self._intervals = [MeanEstimateInterval() for _ in range(self.k)]
        self.output_listeners: list[tuple[int, OutputListener]] = []

        # Punctuation wiring runs first: if it fails (no SampleScan), the
        # constructor raises before any operator hooks are attached, so the
        # caller can safely retry construction without the flag.
        if stop_after_sample:
            self._wire_sample_punctuation()
        self._wire_hooks()

    # -- construction helpers -----------------------------------------------------

    def _locate(self, i: int) -> _Provenance:
        """Provenance of ``chain[i]``'s probe key."""
        join = self.chain[i]
        if len(join.probe_keys) != 1 or len(join.build_keys) != 1:
            raise EstimationError("chain estimation supports single-column join keys")
        if i == 0:
            idx = self._c_schema.index_of(join.probe_keys[0])
            return _Provenance("C", -1, idx)
        probe_schema = join.probe_child.output_schema
        offset = probe_schema.index_of(join.probe_keys[0])
        # out(J_m) = build_m ++ out(J_{m-1}), bottoming out at C: peel build
        # segments from the join below downwards.
        for m in range(i - 1, -1, -1):
            build_len = len(self.chain[m].build_child.output_schema)
            if offset < build_len:
                return _Provenance("B", m, offset)
            offset -= build_len
        return _Provenance("C", -1, offset)

    def _effective_hist(self, m: int, level: int) -> FrequencyHistogram:
        """A_m^{(level)}: join m's effective histogram as of ``level``."""
        applicable = [bp for bp in self.breakpoints.get(m, []) if bp <= level]
        if applicable:
            return self.derived[(m, max(applicable))]
        return self.base_hists[m]

    def _wire_sample_punctuation(self) -> None:
        """Freeze on the base scan's sample-boundary punctuation."""
        from repro.executor.operators.scan import SampleScan

        op = self.base_stream
        while True:
            if isinstance(op, SampleScan):
                op.sample_boundary_hooks.append(self._on_sample_boundary)
                return
            children = op.children()
            if len(children) != 1:
                raise EstimationError(
                    "stop_after_sample requires a SampleScan-backed base "
                    f"probe stream; found {op.describe()}"
                )
            op = children[0]

    def _on_sample_boundary(self, _scan) -> None:
        self.frozen = True

    def _wire_hooks(self) -> None:
        for m, join in enumerate(self.chain):
            join.build_hooks.append(self._make_build_hook(m))
        bottom = self.chain[0]
        if self.k == 1:
            # Binary-join fast path: the general per-level loop costs ~2x
            # more per probe tuple; single joins are the common case and
            # the one the Table 3 overhead experiment measures.
            bottom.probe_hooks.append(self._on_probe_single)
        else:
            bottom.probe_hooks.append(self._on_probe)
        bottom.phase_hooks.append(self._on_bottom_phase)

    def _on_probe_single(self, key: object, row: tuple) -> None:
        if self.frozen:
            return
        c = self.base_hists[0].counts.get(key, 0)
        self.t += 1
        self.sums[0] += c
        interval = self._intervals[0]
        interval.count += 1
        interval.sum_x += c
        interval.sum_x_sq += c * c
        if self.record_every and self.t % self.record_every == 0:
            self.history[0].append((self.t, self.estimate_level(0)))
        if c and self.output_listeners:
            for col_idx, listener in self.output_listeners:
                listener(row[col_idx], c)

    def _on_probe_single_batch(self, keys: Sequence[object], rows: Sequence[tuple]) -> None:
        """Batch twin of :meth:`_on_probe_single` (k == 1 fast path).

        Pushed-down aggregation listeners need the per-tuple (value,
        contribution) stream in row order, so with listeners attached the
        batch degrades to the per-row loop; otherwise one Counter over the
        keys applies the whole batch, split at ``record_every`` boundaries
        so checkpoints land on the per-tuple t values.
        """
        if self.frozen:
            return
        if self.output_listeners:
            on_row = self._on_probe_single
            for key, row in zip(keys, rows):
                on_row(key, row)
            return
        n = len(keys)
        if not n:
            return
        rec = self.record_every
        if not rec:
            self._apply_single_batch(keys)
            return
        start = 0
        while start < n:
            end = min(n, start + rec - self.t % rec)
            self._apply_single_batch(keys if not start and end == n else keys[start:end])
            if self.t % rec == 0:
                self.history[0].append((self.t, self.estimate_level(0)))
            start = end

    def _apply_single_batch(self, keys: Sequence[object]) -> None:
        get = self.base_hists[0].counts.get
        batch_sum = 0
        batch_sq = 0
        for key, count in Counter(keys).items():
            c = get(key, 0)
            if c:
                batch_sum += c * count
                batch_sq += c * c * count
        n = len(keys)
        self.t += n
        self.sums[0] += batch_sum
        self._intervals[0].merge_sums(n, batch_sum, batch_sq)

    def _make_build_hook(self, m: int):
        base_hist = self.base_hists[m]
        breakpoints = self.breakpoints.get(m, [])
        if not breakpoints:
            def build_hook(key: object, row: tuple) -> None:
                if key is not None:
                    base_hist.add(key)

            # Plain histogram builds aggregate per batch; derived-histogram
            # builds (below) read row columns per tuple and stay per-row.
            build_hook.batch_hook = lambda keys, rows: base_hist.add_batch(keys)
            return build_hook

        # For each breakpoint version: which folded joins contribute, read
        # from which column of this build row, weighted by which (already
        # complete) effective histogram of theirs.
        version_specs: list[tuple[FrequencyHistogram, list[tuple[int, FrequencyHistogram]]]] = []
        for bp in breakpoints:
            folded = [
                (self.provenance[level].index, self._effective_hist(level, bp))
                for level in self.refs.get(m, [])
                if level <= bp
            ]
            version_specs.append((self.derived[(m, bp)], folded))

        def build_hook_with_refs(key: object, row: tuple) -> None:
            if key is None:
                return
            base_hist.add(key)
            for derived, folded in version_specs:
                weight = 1
                for col_idx, hist in folded:
                    c = hist.counts.get(row[col_idx], 0)
                    if not c:
                        weight = 0
                        break
                    weight *= c
                if weight:
                    derived.add(key, weight)

        return build_hook_with_refs

    # -- probe-pass callbacks --------------------------------------------------------

    def _on_probe(self, key: object, row: tuple) -> None:
        if self.frozen:
            return
        self.t += 1
        t = self.t
        top_contrib = 0
        for i in range(self.k):
            contrib = 1
            for col_idx, hist in self._level_factors[i]:
                c = hist.counts.get(row[col_idx], 0)
                if not c:
                    contrib = 0
                    break
                contrib *= c
            self.sums[i] += contrib
            self._intervals[i].observe(contrib)
            if i == self.k - 1:
                top_contrib = contrib
            if self.record_every and t % self.record_every == 0:
                self.history[i].append((t, self.estimate_level(i)))
        if top_contrib and self.output_listeners:
            for col_idx, listener in self.output_listeners:
                listener(row[col_idx], top_contrib)

    def _on_probe_batch(self, keys: Sequence[object], rows: Sequence[tuple]) -> None:
        """Batch twin of :meth:`_on_probe` (chains of length > 1).

        Aggregates the batch by the distinct combinations of the C columns
        the factor tables read, computing each level's factor product once
        per combo. Integer arithmetic throughout, so state is bit-identical
        to the per-row path; listener and record_every handling mirror
        :meth:`_on_probe_single_batch`.
        """
        if self.frozen:
            return
        if self.output_listeners:
            on_row = self._on_probe
            for key, row in zip(keys, rows):
                on_row(key, row)
            return
        n = len(rows)
        if not n:
            return
        rec = self.record_every
        if not rec:
            self._apply_chain_batch(rows)
            return
        start = 0
        while start < n:
            end = min(n, start + rec - self.t % rec)
            self._apply_chain_batch(rows if not start and end == n else rows[start:end])
            if self.t % rec == 0:
                t = self.t
                for i in range(self.k):
                    self.history[i].append((t, self.estimate_level(i)))
            start = end

    def _apply_chain_batch(self, rows: Sequence[tuple]) -> None:
        k = self.k
        n = len(rows)
        sums_delta = [0] * k
        sq_delta = [0] * k
        extract = self._combo_extract
        if extract is None:
            # No level reads any C column: every contribution is the empty
            # product, 1 per tuple at every level.
            for i in range(k):
                sums_delta[i] = n
                sq_delta[i] = n
        else:
            factor_slots = self._level_factor_slots
            for combo, count in Counter(map(extract, rows)).items():
                for i in range(k):
                    contrib = 1
                    for pos, hist in factor_slots[i]:
                        c = hist.counts.get(combo[pos], 0)
                        if not c:
                            contrib = 0
                            break
                        contrib *= c
                    if contrib:
                        sums_delta[i] += contrib * count
                        sq_delta[i] += contrib * contrib * count
        self.t += n
        for i in range(k):
            self.sums[i] += sums_delta[i]
            self._intervals[i].merge_sums(n, sums_delta[i], sq_delta[i])

    _on_probe_single.batch_hook_name = "_on_probe_single_batch"
    _on_probe.batch_hook_name = "_on_probe_batch"

    def _on_bottom_phase(self, _op: Operator, phase: str) -> None:
        if self.frozen:
            # The sample-based estimate stands; the pass was not fully
            # observed, so exactness cannot be claimed.
            return
        if phase in ("join", "done") and not self.exact:
            self.exact = True
            if self.record_every:
                for i in range(self.k):
                    self.history[i].append((self.t, float(self.sums[i])))

    # -- estimates ----------------------------------------------------------------------

    @property
    def probe_total(self) -> float:
        return float(self._probe_total())

    def estimate_level(self, level: int) -> float:
        """Current estimate for ``chain[level]``'s output cardinality."""
        if self.exact:
            return float(self.sums[level])
        if self.t == 0:
            return 0.0
        return self.sums[level] / self.t * self.probe_total

    def current_estimate(self, join: HashJoin | None = None) -> float:
        """Estimate for ``join`` (default: the topmost join)."""
        level = self.k - 1 if join is None else self._level_of(join)
        return self.estimate_level(level)

    def confidence_interval(
        self, join: HashJoin | None = None, alpha: float = 0.99
    ) -> tuple[float, float]:
        level = self.k - 1 if join is None else self._level_of(join)
        if self.exact:
            exact = float(self.sums[level])
            return (exact, exact)
        if self.t == 0:
            return (0.0, float("inf"))
        total = self.probe_total
        return self._intervals[level].interval(total, alpha, population=total)

    def _level_of(self, join: HashJoin) -> int:
        for i, j in enumerate(self.chain):
            if j is join:
                return i
        raise EstimationError("join is not part of this chain")

    def estimates(self) -> dict[HashJoin, float]:
        """Estimates for every join in the chain."""
        return {j: self.estimate_level(i) for i, j in enumerate(self.chain)}

    # -- aggregation push-down ----------------------------------------------------------

    def add_output_listener(self, group_column: str, listener: OutputListener) -> None:
        """Register a listener over the chain output's value distribution.

        ``listener(value, contribution)`` is invoked per probe tuple with the
        tuple's ``group_column`` value and the number of chain-output rows
        the tuple generates. Only columns of the base probe stream are
        supported (the paper's "aggregation on the same attribute as the
        join" case); anything else raises :class:`EstimationError` and the
        caller falls back to estimating at the aggregate itself.
        """
        if not self._c_schema.has_column(group_column):
            raise EstimationError(
                f"group column {group_column!r} is not part of the chain's "
                "base probe stream; aggregation push-down unsupported"
            )
        self.output_listeners.append((self._c_schema.index_of(group_column), listener))

    @property
    def max_build_multiplicity(self) -> dict[int, float]:
        """``id(join) -> max key multiplicity`` of its build histogram,
        for bound refinement."""
        return {
            id(j): float(self.base_hists[i].max_multiplicity())
            for i, j in enumerate(self.chain)
        }
