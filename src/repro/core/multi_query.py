"""Multi-query progress estimation.

Luo et al. extended single-query progress indication to concurrently
running queries ([19] in the paper's bibliography; mentioned in Section 2).
This module provides the equivalent for this framework:

* :class:`InterleavedExecutor` — a cooperative driver that advances
  several plans a quantum of output rows at a time. Since the server
  subsystem landed it is a thin facade over
  :class:`repro.server.scheduler.Scheduler`: with the default single
  worker it reproduces the classic deterministic round-robin, and with
  ``workers > 1`` the same workload runs genuinely concurrently;
* :class:`MultiQueryProgressMonitor` — per-query monitors (any estimator
  mode each) plus aggregate progress under the gnm measure:
  ``Σ_q C(Q_q) / Σ_q T̂(Q_q)`` — total getnext calls made over total
  expected across the whole workload. Finished queries are pinned: their
  exact ``T(Q)`` replaces the (possibly wrong) estimate in both the
  per-query and the aggregate view, so workload progress cannot regress
  when a query completes.

A query in a long blocking phase still reports progress, because each
query's tick bus samples from inside its operators; the interleaver's
quantum only bounds how much *output* a query produces per turn.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.progress import ProgressMonitor, ProgressSnapshot
from repro.executor.engine import TickBus
from repro.executor.operators.base import Operator
from repro.executor.plan import validate_plan

__all__ = ["InterleavedExecutor", "MultiQueryProgressMonitor", "QueryHandle"]


@dataclass
class QueryHandle:
    """One query under multi-query monitoring."""

    name: str
    plan: Operator
    monitor: ProgressMonitor
    bus: TickBus
    row_count: int = 0
    finished: bool = False

    @property
    def progress(self) -> float:
        snap = self.monitor.snapshot()
        return 1.0 if self.finished else snap.progress


@dataclass
class WorkloadSnapshot:
    """Aggregate progress over all queries."""

    work_done: float
    work_total_estimate: float
    per_query: dict[str, float] = field(default_factory=dict)

    @property
    def progress(self) -> float:
        if self.work_total_estimate <= 0:
            return 0.0
        return min(self.work_done / self.work_total_estimate, 1.0)


class MultiQueryProgressMonitor:
    """Tracks several queries and aggregates their gnm progress."""

    def __init__(self) -> None:
        self.queries: list[QueryHandle] = []

    def add_query(
        self,
        name: str,
        plan: Operator,
        mode: str = "once",
        tick_interval: int = 1000,
        catalog=None,
    ) -> QueryHandle:
        bus = TickBus(interval=tick_interval)
        monitor = ProgressMonitor(plan, mode=mode, catalog=catalog, bus=bus)
        handle = QueryHandle(name=name, plan=plan, monitor=monitor, bus=bus)
        self.queries.append(handle)
        return handle

    def snapshot(self) -> WorkloadSnapshot:
        work_done = 0.0
        work_total = 0.0
        per_query: dict[str, float] = {}
        for handle in self.queries:
            if handle.finished:
                # C(Q) is now the exact T(Q). An estimator that undershot
                # T̂(Q) would leave the query <100% in the workload view
                # (and an overshoot would inflate the denominator forever);
                # clamping both contributions to the final observed work
                # pins the query to 1.0 and keeps the aggregate monotone.
                done = total = handle.monitor.true_total()
                per_query[handle.name] = 1.0
            else:
                snap: ProgressSnapshot = handle.monitor.snapshot()
                done = snap.work_done
                total = max(snap.work_total_estimate, snap.work_done)
                per_query[handle.name] = snap.progress
            work_done += done
            work_total += total
        return WorkloadSnapshot(
            work_done=work_done,
            work_total_estimate=work_total,
            per_query=per_query,
        )


class InterleavedExecutor:
    """Cooperative execution of several plans on the session scheduler.

    Each turn drains at most ``quantum_rows`` output rows from one query's
    root in a single ``next_batch`` call; queries are rotated fairly until
    all are exhausted, and finished queries leave the ready queue — they
    take no further (zero-work) turns. ``on_turn`` (if given) is invoked
    after every turn with the monitor — the natural place to refresh a
    workload dashboard. With the default ``workers=1`` the interleave is
    the classic deterministic round-robin; higher values run the same
    workload on a thread pool (``on_turn`` then fires from worker
    threads, serialized by an internal lock).
    """

    def __init__(
        self,
        monitor: MultiQueryProgressMonitor,
        quantum_rows: int = 256,
        on_turn=None,
        workers: int = 1,
    ):
        if quantum_rows < 1:
            raise ValueError(f"quantum_rows must be >= 1, got {quantum_rows}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.monitor = monitor
        self.quantum_rows = quantum_rows
        self.on_turn = on_turn
        self.workers = workers
        self.turns_taken = 0

    def run(self) -> dict[str, int]:
        """Drive every query to completion; returns per-query row counts."""
        from repro.server.scheduler import Scheduler
        from repro.server.session import QuerySession

        handles = [h for h in self.monitor.queries if not h.finished]
        for handle in handles:
            validate_plan(handle.plan)
        sessions: dict[str, QueryHandle] = {}
        # Not a sampling lock: it serializes on_turn callbacks and handle
        # bookkeeping across worker threads. Each query's estimator state
        # stays under its own TickBus lock.
        turn_lock = threading.Lock()  # noqa: R006

        def on_step(session: QuerySession) -> None:
            handle = sessions[session.session_id]
            with turn_lock:
                handle.row_count = session.row_count
                if session.finished:
                    handle.finished = True
                self.turns_taken += 1
                if self.on_turn is not None:
                    self.on_turn(self.monitor)

        scheduler = Scheduler(
            workers=self.workers,
            policy="fair",
            max_pending=max(len(handles), 1),
            on_step=on_step,
        )
        try:
            for handle in handles:
                session = QuerySession(
                    handle.plan,
                    name=handle.name,
                    monitor=handle.monitor,
                    bus=handle.bus,
                    quantum_rows=self.quantum_rows,
                    row_cap=0,
                )
                sessions[session.session_id] = handle
                scheduler.submit(session)
            scheduler.run_until_complete()
        finally:
            scheduler.shutdown(wait=True)
        return {h.name: h.row_count for h in self.monitor.queries}
