"""Multi-query progress estimation.

Luo et al. extended single-query progress indication to concurrently
running queries ([19] in the paper's bibliography; mentioned in Section 2).
This module provides the equivalent for this framework:

* :class:`InterleavedExecutor` — a cooperative round-robin driver that
  advances several plans a quantum of output rows at a time (the
  single-threaded stand-in for a multi-backend DBMS, deterministic and
  fair);
* :class:`MultiQueryProgressMonitor` — per-query monitors (any estimator
  mode each) plus aggregate progress under the gnm measure:
  ``Σ_q C(Q_q) / Σ_q T̂(Q_q)`` — total getnext calls made over total
  expected across the whole workload.

A query in a long blocking phase still reports progress, because each
query's tick bus samples from inside its operators; the interleaver's
quantum only bounds how much *output* a query produces per turn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.progress import ProgressMonitor, ProgressSnapshot
from repro.executor.engine import TickBus
from repro.executor.operators.base import Operator
from repro.executor.plan import validate_plan

__all__ = ["InterleavedExecutor", "MultiQueryProgressMonitor", "QueryHandle"]


@dataclass
class QueryHandle:
    """One query under multi-query monitoring."""

    name: str
    plan: Operator
    monitor: ProgressMonitor
    bus: TickBus
    row_count: int = 0
    finished: bool = False

    @property
    def progress(self) -> float:
        snap = self.monitor.snapshot()
        return 1.0 if self.finished else snap.progress


@dataclass
class WorkloadSnapshot:
    """Aggregate progress over all queries."""

    work_done: float
    work_total_estimate: float
    per_query: dict[str, float] = field(default_factory=dict)

    @property
    def progress(self) -> float:
        if self.work_total_estimate <= 0:
            return 0.0
        return min(self.work_done / self.work_total_estimate, 1.0)


class MultiQueryProgressMonitor:
    """Tracks several queries and aggregates their gnm progress."""

    def __init__(self) -> None:
        self.queries: list[QueryHandle] = []

    def add_query(
        self,
        name: str,
        plan: Operator,
        mode: str = "once",
        tick_interval: int = 1000,
        catalog=None,
    ) -> QueryHandle:
        bus = TickBus(interval=tick_interval)
        monitor = ProgressMonitor(plan, mode=mode, catalog=catalog, bus=bus)
        handle = QueryHandle(name=name, plan=plan, monitor=monitor, bus=bus)
        self.queries.append(handle)
        return handle

    def snapshot(self) -> WorkloadSnapshot:
        work_done = 0.0
        work_total = 0.0
        per_query: dict[str, float] = {}
        for handle in self.queries:
            snap: ProgressSnapshot = handle.monitor.snapshot()
            work_done += snap.work_done
            work_total += snap.work_total_estimate
            per_query[handle.name] = snap.progress
        return WorkloadSnapshot(
            work_done=work_done,
            work_total_estimate=work_total,
            per_query=per_query,
        )


class InterleavedExecutor:
    """Cooperative round-robin execution of several plans.

    Each turn pulls at most ``quantum_rows`` output rows from one query's
    root; queries are rotated until all are exhausted. ``on_turn`` (if
    given) is invoked after every turn with the monitor — the natural place
    to refresh a workload dashboard.
    """

    def __init__(
        self,
        monitor: MultiQueryProgressMonitor,
        quantum_rows: int = 256,
        on_turn=None,
    ):
        if quantum_rows < 1:
            raise ValueError(f"quantum_rows must be >= 1, got {quantum_rows}")
        self.monitor = monitor
        self.quantum_rows = quantum_rows
        self.on_turn = on_turn
        self.turns_taken = 0

    def run(self) -> dict[str, int]:
        """Drive every query to completion; returns per-query row counts."""
        handles = list(self.monitor.queries)
        for handle in handles:
            validate_plan(handle.plan)
            handle.plan.attach_bus(handle.bus)
            handle.plan.open()
        active = [h for h in handles if not h.finished]
        try:
            while active:
                for handle in list(active):
                    produced = 0
                    while produced < self.quantum_rows:
                        row = handle.plan.next()
                        if row is None:
                            handle.finished = True
                            active.remove(handle)
                            break
                        handle.row_count += 1
                        handle.bus.tick()
                        produced += 1
                    self.turns_taken += 1
                    if self.on_turn is not None:
                        self.on_turn(self.monitor)
        finally:
            for handle in handles:
                handle.plan.close()
        return {h.name: h.row_count for h in handles}
