"""The getnext-model progress monitor (Sections 3 and 4.4).

Progress of query Q is ``gnm = C(Q) / T(Q)``: getnext calls made so far over
getnext calls the query will make in total. ``C(Q)`` is observed exactly —
it is the sum of tuples emitted by all operators. ``T(Q)`` must be
estimated, and the whole framework exists to refine that estimate online:

* **finished pipelines** — ``T(p)`` is known exactly (it already happened);
* **the currently executing pipeline** — refined by the attached estimators
  (ONCE chains, merge-join ONCE, GEE/MLE for aggregates) with the
  driver-node estimator as fallback, or purely by dne / the byte model when
  the monitor runs in a baseline mode;
* **pipelines yet to begin** — optimizer estimates clamped into the
  upper/lower bounds of :class:`~repro.optimizer.bounds.CardinalityBounds`,
  which tighten as upstream cardinalities become exact (the treatment of
  future pipelines in Chaudhuri et al. [9]).

The monitor subscribes to the executor's :class:`TickBus`, so snapshots are
taken *during* blocking phases too — exactly when a progress bar is most
needed. After the run, :meth:`ratio_errors` replays the snapshots against
the now-known true total, producing the paper's ratio-error curves
(R = estimated T' / true T, equivalently actual/estimated progress).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.locks import acquires, assert_owned, guarded_by, holds_lock
from repro.core.byte_estimator import ByteModelEstimator
from repro.core.dne import DriverNodeEstimator
from repro.core.manager import EstimationManager
from repro.executor.engine import TickBus
from repro.executor.operators.base import Operator
from repro.executor.pipeline import Pipeline, decompose_pipelines
from repro.faults.plan import SITE_ESTIMATOR_HOOK, FaultPlan
from repro.optimizer.bounds import CardinalityBounds
from repro.storage.catalog import Catalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robust.store import HistoryStore

__all__ = ["ProgressMonitor", "ProgressSnapshot"]

MODES = ("once", "dne", "byte")


@dataclass(slots=True)
class ProgressSnapshot:
    """One observation of query progress.

    ``degraded`` is True once any estimator has been demoted at runtime by
    the graceful-degradation guards (the query keeps running on the dne
    fallback); ``degraded_reason`` carries the most recent demotion reason
    (or, for history-enabled monitors, the run-history store's fault).

    ``ensemble``/``weights``/``prior_source`` are populated only by
    history-enabled monitors (``repro.robust``): the inverse-squared-error
    combined progress fraction, the per-candidate weights behind it, and
    whether those weights were seeded ``"warm"`` (history priors) or
    ``"cold"`` (uniform).

    Slotted: monitors allocate one per tick and sessions retain the full
    history for ratio-error replay, so the per-instance ``__dict__`` is
    pure overhead on the hottest allocation in the serving path.
    """

    tick: int
    timestamp: float
    work_done: float
    work_total_estimate: float
    pipeline_states: dict[int, str] = field(default_factory=dict)
    degraded: bool = False
    degraded_reason: str | None = None
    ensemble: float | None = None
    weights: dict[str, float] | None = None
    prior_source: str | None = None

    @property
    def progress(self) -> float:
        if self.work_total_estimate <= 0:
            return 0.0
        return min(self.work_done / self.work_total_estimate, 1.0)


class ProgressMonitor:
    """Online gnm progress estimation for one plan.

    Parameters
    ----------
    root:
        The physical plan. Operators should carry optimizer estimates
        (``annotate_plan``); pass ``catalog`` to have the monitor annotate.
    mode:
        ``"once"`` — this paper's framework (with dne fallback for
        operators without a preprocessing pass);
        ``"dne"`` / ``"byte"`` — the baselines.
    bus:
        When given, the monitor subscribes and records a snapshot per bus
        callback; otherwise call :meth:`snapshot` manually.
    resilient:
        Harden the estimator hooks (``"once"`` mode only): a hook that
        raises demotes its estimator to the dne fallback and flags the
        snapshots ``degraded`` instead of failing the query. Off by
        default so the bare monitor keeps its measured overhead profile;
        the server's sessions turn it on.
    faults:
        Optional :class:`~repro.faults.FaultPlan` arming the
        ``estimator.hook`` injection site (hooks are wrapped even when
        ``resilient`` is False, so the chaos meta-test can prove a missing
        fallback fails the query).
    """

    # Lock discipline: the snapshot list is appended from bus callbacks and
    # read by the post-run analysis helpers; both sides take the sampling
    # lock, so replay never observes a half-appended list. The ensemble
    # state mutates once per snapshot, always under the same lock.
    _guarded_by_ = {"snapshots": "_lock", "ensemble": "_lock"}

    def __init__(
        self,
        root: Operator,
        mode: str = "once",
        catalog: Catalog | None = None,
        bus: TickBus | None = None,
        record_every: int = 0,
        resilient: bool = False,
        faults: FaultPlan | None = None,
        history: HistoryStore | None = None,
        priors: dict[str, tuple[float, float]] | None = None,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.root = root
        self.mode = mode
        if catalog is not None:
            from repro.optimizer.cardinality import annotate_plan

            annotate_plan(root, catalog)
        self.pipelines: list[Pipeline] = decompose_pipelines(root)
        self.bounds = CardinalityBounds(root)
        self.manager: EstimationManager | None = (
            EstimationManager(root, record_every=record_every)
            if mode == "once"
            else None
        )
        if self.manager is not None:
            wants_hook_faults = faults is not None and faults.has_site(
                SITE_ESTIMATOR_HOOK
            )
            if resilient or wants_hook_faults:
                self.manager.harden(
                    faults=faults if wants_hook_faults else None,
                    demote=resilient,
                )
        self._dne = {p.pipeline_id: DriverNodeEstimator(p) for p in self.pipelines}
        self._byte = (
            {p.pipeline_id: ByteModelEstimator(p) for p in self.pipelines}
            if mode == "byte"
            else {}
        )
        self.history = history
        self.fingerprint = None
        self.ensemble = None
        if history is not None or priors is not None:
            # Lazy import: the core monitor must stay importable without
            # the robust subsystem (history is strictly opt-in).
            from repro.robust.ensemble import EnsembleState
            from repro.robust.history import fingerprint_plan

            self.fingerprint = fingerprint_plan(root)
            # Candidate order: the primary mode first (its total is also the
            # snapshot's work_total_estimate — bit-identical to a plain
            # monitor), then the applicable baselines. "once" needs the
            # estimation manager, so it is only ever the primary.
            candidates = [self.mode] + [
                m for m in MODES if m not in (self.mode, "once")
            ]
            if not self._byte:
                self._byte = {
                    p.pipeline_id: ByteModelEstimator(p) for p in self.pipelines
                }
            prior_dict = priors
            if prior_dict is None and history is not None:
                prior = history.prior(self.fingerprint.digest)
                prior_dict = (
                    {n: (ep.mse, ep.n) for n, ep in prior.estimators.items()}
                    if prior is not None
                    else {}
                )
            self.ensemble = EnsembleState(tuple(candidates), prior_dict or {})
        self.snapshots: list[ProgressSnapshot] = []
        self._started = time.perf_counter()
        # Sampling lock: shared with the execution driver through the bus
        # (PlanCursor/ExecutionEngine hold ``bus.lock`` across each pull),
        # so snapshot() is safe to call from a non-executing thread — it
        # serializes against both concurrent snapshots and the estimator
        # mutations that happen inside pulls. Reentrant, because bus
        # callbacks snapshot from inside a pull that already holds it.
        if bus is not None:
            self._lock: threading.RLock = bus.lock
        else:
            # Bus-less monitors are driven manually from a single thread; a
            # private RLock keeps snapshot() uniform without a TickBus.
            self._lock = threading.RLock()  # noqa: R006
        if bus is not None:
            bus.subscribe(self._on_tick)

    # -- sampling ----------------------------------------------------------------

    @holds_lock("_lock")
    def _on_tick(self, count: int) -> None:
        # Bus callbacks only ever fire from inside a pull that owns the
        # sampling lock, so appending here is race-free by construction.
        self.snapshots.append(self.snapshot(count))

    @acquires("_lock")
    def snapshot(self, tick: int = -1) -> ProgressSnapshot:
        """Record current (C(Q), T̂(Q)) and per-pipeline states.

        Thread-safe: may be called from a thread that is not executing the
        plan. Successive snapshots (from any mix of threads) observe
        non-decreasing ``work_done``, because the sampling lock serializes
        them and every ``tuples_emitted`` counter is monotone.
        """
        with self._lock:
            return self._snapshot_locked(tick)

    @guarded_by("_lock")
    def _snapshot_locked(self, tick: int) -> ProgressSnapshot:
        assert_owned(self._lock, "bus sampling lock")
        self.refresh_bounds()
        ens = self.ensemble
        work_done = 0.0
        work_total = 0.0
        cand_totals = dict.fromkeys(ens.candidates, 0.0) if ens is not None else None
        states: dict[int, str] = {}
        for pipeline in self.pipelines:
            status = self._status(pipeline)
            states[pipeline.pipeline_id] = status
            for op in pipeline.operators:
                k_i = float(op.tuples_emitted)
                work_done += k_i
                if cand_totals is None:
                    work_total += self._total_for(op, pipeline, status)
                else:
                    for name in cand_totals:
                        cand_totals[name] += self._total_for_mode(
                            op, pipeline, status, name
                        )
        ens_progress = ens_weights = prior_source = None
        if cand_totals is not None:
            # The primary mode's candidate sum *is* the same per-operator
            # dispatch a plain monitor runs — work_total stays bit-identical
            # whether or not history is enabled (the ensemble is read-only).
            work_total = cand_totals[self.mode]
            ens_progress, ens_weights = ens.update(work_done, cand_totals)
            prior_source = ens.prior_source
        degraded = self.manager is not None and self.manager.degraded
        reason = self.manager.demotions[-1][1] if degraded else None
        if reason is None and self.history is not None:
            # History faults degrade the session, never the query: surface
            # the store's reason on snapshots when no estimator demoted.
            hist_reason = self.history.degraded_reason
            if hist_reason is not None:
                degraded = True
                reason = hist_reason
        snap = ProgressSnapshot(
            tick=tick,
            timestamp=time.perf_counter() - self._started,
            work_done=work_done,
            work_total_estimate=max(work_total, work_done),
            pipeline_states=states,
            degraded=degraded,
            degraded_reason=reason,
            ensemble=ens_progress,
            weights=ens_weights,
            prior_source=prior_source,
        )
        return snap

    @guarded_by("_lock")
    def refresh_bounds(self) -> None:
        maxmult = self.manager.max_multiplicities() if self.manager else None
        self.bounds.refine(maxmult)

    @acquires("_lock")
    def operator_totals(self) -> dict[int, tuple[float, float]]:
        """Per-operator ``(K_i, N̂_i)`` keyed by plan node id.

        This is the per-operator decomposition of one snapshot — the same
        ``_total_for`` dispatch, itemised instead of summed. The worker half
        of ``repro.parallel`` ships these over the delta pipe; node ids come
        from ``validate_plan`` (the plan must have been validated, as every
        ``PlanCursor`` run guarantees) so the coordinator can re-key them
        onto the serial plan.
        """
        with self._lock:
            self.refresh_bounds()
            out: dict[int, tuple[float, float]] = {}
            for pipeline in self.pipelines:
                status = self._status(pipeline)
                for op in pipeline.operators:
                    if op.node_id is None:  # pragma: no cover - defensive
                        continue
                    out[op.node_id] = (
                        float(op.tuples_emitted),
                        self._total_for(op, pipeline, status),
                    )
            return out

    # -- estimation dispatch ----------------------------------------------------------

    @staticmethod
    def _status(pipeline: Pipeline) -> str:
        if pipeline.is_finished:
            return "finished"
        if pipeline.has_started:
            return "current"
        return "future"

    def _total_for(self, op: Operator, pipeline: Pipeline, status: str) -> float:
        """Estimated N_i (total getnext calls) for one operator."""
        return self._total_for_mode(op, pipeline, status, self.mode)

    def _total_for_mode(
        self, op: Operator, pipeline: Pipeline, status: str, mode: str
    ) -> float:
        """N_i under one candidate estimator family.

        Finished/exhausted and future operators do not depend on the mode;
        only the currently executing pipeline's dispatch differs. Every
        estimator's ``estimate_for`` is a pure read, so the ensemble can
        evaluate all candidates on the same tick without perturbing any of
        them — the differential guarantee rests on this.
        """
        k_i = float(op.tuples_emitted)
        if status == "finished" or op.is_exhausted:
            return k_i
        if status == "future":
            return max(self.bounds.estimate_of(op), k_i)
        # Currently executing pipeline.
        if mode == "once":
            assert self.manager is not None
            est = self.manager.estimate_for(op)
            if est is not None and self.manager.has_started(op):
                return max(est, k_i)
            # Operators without estimators — or whose estimator has not
            # begun observing — fall back to dne (Section 4.4).
            return max(self._dne[pipeline.pipeline_id].estimate_for(op), k_i)
        if mode == "byte":
            return max(self._byte[pipeline.pipeline_id].estimate_for(op), k_i)
        return max(self._dne[pipeline.pipeline_id].estimate_for(op), k_i)

    # -- post-run analysis -------------------------------------------------------------

    @acquires("_lock")
    def true_total(self) -> float:
        """T(Q): only meaningful after the query finished.

        Takes the sampling lock so pinning a finished session's total from
        a snapshot thread (``MultiQueryProgressMonitor``, the server's
        finished-session path) reads a consistent counter sum even while
        sibling plans on the same bus are still executing.
        """
        with self._lock:
            return float(
                sum(op.tuples_emitted for p in self.pipelines for op in p.operators)
            )

    @acquires("_lock")
    def ratio_errors(self) -> list[tuple[float, float]]:
        """``(actual progress, ratio error R)`` per snapshot.

        R = T'(Q)/T(Q) = actual progress / estimated progress; R = 1 is a
        perfect progress estimate (paper, Section 5.1).
        """
        with self._lock:
            true_total = self.true_total()
            if true_total <= 0:
                return []
            out = []
            for snap in self.snapshots:
                actual = snap.work_done / true_total
                ratio = snap.work_total_estimate / true_total
                out.append((actual, ratio))
            return out

    @acquires("_lock")
    def progress_curve(self) -> list[tuple[float, float]]:
        """``(actual progress, estimated progress)`` per snapshot."""
        with self._lock:
            true_total = self.true_total()
            if true_total <= 0:
                return []
            return [
                (snap.work_done / true_total, snap.progress)
                for snap in self.snapshots
            ]
