"""Group-count (distinct value) estimation for aggregation (Section 4.2).

Three pieces, matching the paper:

**GEE (Algorithm 2)** — Charikar et al.'s Guaranteed Error Estimator,

    D_t = sqrt(|T| / t) · f_1  +  Σ_{j>=2} f_j,

maintained *incrementally*: the frequency-of-frequencies index gives the
singleton count ``S_1 = f_1`` and the multi-occurrence count
``S_+ = d_seen - f_1`` in O(1), so each new tuple costs one histogram
update. GEE scales the singletons up geometrically, which makes it strong
on high-skew data but a severe over-estimator on small samples of low-skew
data ("it tends to overestimate the number of groups when the sample size
is small").

**MLE estimator** — the paper's new estimator for the low-skew regime.
After t of |T| values, plug the MLE frequency estimates p̂ = i/t of the
observed groups into the expected-new-groups formula over a doubling
horizon (capped at the remaining input):

    D_t = ĝ + Σ_i f_i [ (1 - i/t)^t - (1 - i/t)^(t + r) ],   r = min(t, |T| - t)

with ĝ = Σ_i f_i the groups seen so far. (The published formula is partly
garbled in the available text; this reconstruction matches every stated
property: it is monotone, converges to the correct value as t → |T|,
"rarely overestimates ... prone to underestimation", and beats GEE on
low-skew data with moderately many groups.) Recomputation costs
O(#distinct frequencies), so it is *scheduled*, not per-tuple:

**Algorithm 3** — the adaptive recomputation interval. Start at the lower
bound l; whenever a recomputation lands within k of the previous estimate,
double the interval (up to u); otherwise reset it to l. Estimates are thus
refreshed often exactly when they are moving.

**The chooser** — the squared coefficient of variation γ² of observed group
frequencies (maintained in O(1) from prefix sums; see
:class:`repro.common.stats.IncrementalFrequencyStats`) measures skew. With
threshold τ (=10 in the paper): γ² < τ selects MLE, otherwise GEE.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Sequence

from repro.common.stats import IncrementalFrequencyStats
from repro.core.histogram import FrequencyHistogram

__all__ = [
    "GEEEstimator",
    "GroupFrequencyState",
    "HybridGroupCountEstimator",
    "MLEEstimator",
    "RecomputeScheduler",
]

TotalProvider = Callable[[], float]

DEFAULT_TAU = 10.0


class GroupFrequencyState:
    """Shared observation state: frequency histogram + γ² moments.

    ``observe(value, weight)`` supports weighted increments so the same
    state can be fed by a simulated join output (aggregation push-down).
    """

    __slots__ = ("histogram", "moments")

    def __init__(self) -> None:
        self.histogram = FrequencyHistogram(track_frequencies=True)
        self.moments = IncrementalFrequencyStats()

    def observe(self, value: object, weight: int = 1) -> None:
        old = self.histogram.add(value, weight)
        moments = self.moments
        if weight == 1:
            # Inlined unit-step transition: this is the per-input-tuple hot
            # path of every attached aggregate.
            if old == 0:
                moments.num_groups += 1
            moments.sum_freq += 1
            moments.sum_freq_sq += 2 * old + 1
        else:
            moments.observe_transition(old, old + weight)

    def observe_batch(self, values: Sequence[object]) -> None:
        """Counter-aggregated unit observations (one per value).

        One histogram update and one moment transition per *distinct*
        value: the weighted transition ``old -> old + w`` nets the same
        num_groups / Σf / Σf² deltas as the w unit steps, and everything is
        integer arithmetic, so the end state is identical to calling
        :meth:`observe` once per value. None is a legitimate group key here
        (NULL groups aggregate), unlike in the join histograms.
        """
        moments = self.moments
        add = self.histogram.add
        new_groups = 0
        sq_delta = 0
        for value, weight in Counter(values).items():
            old = add(value, weight)
            if old == 0:
                new_groups += 1
            new = old + weight
            sq_delta += new * new - old * old
        moments.num_groups += new_groups
        moments.sum_freq += len(values)
        moments.sum_freq_sq += sq_delta

    @property
    def t(self) -> int:
        """Tuples observed (sum of all frequencies)."""
        return self.histogram.total

    @property
    def distinct_seen(self) -> int:
        return self.histogram.num_distinct

    @property
    def singletons(self) -> int:
        """f_1: groups seen exactly once."""
        return self.histogram.freq_of_freq.get(1, 0)

    @property
    def gamma_squared(self) -> float:
        return self.moments.gamma_squared


class GEEEstimator:
    """Guaranteed Error Estimator, O(1) per query (Algorithm 2)."""

    name = "gee"
    __slots__ = ("state",)

    def __init__(self, state: GroupFrequencyState):
        self.state = state

    def estimate(self, total: float) -> float:
        t = self.state.t
        if t == 0:
            return 0.0
        scale = math.sqrt(max(total, t) / t)
        f1 = self.state.singletons
        rest = self.state.distinct_seen - f1
        return scale * f1 + rest


class MLEEstimator:
    """The paper's MLE-based estimator (see module docstring for the
    reconstruction notes). O(#distinct frequencies) per evaluation."""

    name = "mle"
    __slots__ = ("state",)

    def __init__(self, state: GroupFrequencyState):
        self.state = state

    def estimate(self, total: float) -> float:
        t = self.state.t
        if t == 0:
            return 0.0
        seen = float(self.state.distinct_seen)
        remaining = max(total - t, 0.0)
        if remaining <= 0.0:
            return seen
        horizon = min(float(t), remaining)
        correction = 0.0
        for i, f_i in self.state.histogram.freq_of_freq.items():
            base = 1.0 - i / t
            if base <= 0.0:
                continue
            p_unseen_now = base ** t
            if p_unseen_now < 1e-12:
                continue
            p_unseen_later = base ** (t + horizon)
            correction += f_i * (p_unseen_now - p_unseen_later)
        return seen + correction


class RecomputeScheduler:
    """Algorithm 3: adaptive recomputation interval.

    Parameters
    ----------
    lower / upper:
        Interval bounds in tuples (the paper sets them to 0.1% and 3.2% of
        the input size).
    stability:
        k: relative difference under which the interval doubles (paper: 1%).
    """

    __slots__ = ("lower", "upper", "stability", "interval", "recompute_count")

    def __init__(self, lower: int, upper: int, stability: float = 0.01):
        if lower < 1 or upper < lower:
            raise ValueError(
                f"need 1 <= lower <= upper, got lower={lower}, upper={upper}"
            )
        if stability <= 0:
            raise ValueError(f"stability must be > 0, got {stability}")
        self.lower = lower
        self.upper = upper
        self.stability = stability
        self.interval = lower
        self.recompute_count = 0

    def due(self, t: int) -> bool:
        """Is a recomputation due at tuple count ``t``?"""
        return t > 0 and t % self.interval == 0

    def after_recompute(self, old_estimate: float, new_estimate: float) -> None:
        """Adapt the interval given the previous and fresh estimates."""
        self.recompute_count += 1
        if new_estimate > 0 and abs(1.0 - old_estimate / new_estimate) < self.stability:
            self.interval = min(self.interval * 2, self.upper)
        else:
            self.interval = self.lower


class HybridGroupCountEstimator:
    """GEE/MLE with the γ² chooser and scheduled MLE recomputation.

    ``observe`` is the per-tuple hot path: one histogram update, one O(1)
    moment update, and — only when the scheduler says so — one MLE
    recomputation. ``estimate()`` itself is O(1).

    Parameters
    ----------
    total:
        |T|: total input size (number or provider).
    tau:
        γ² threshold; below it MLE is used, above it GEE (paper: 10).
    lower_fraction / upper_fraction:
        Algorithm 3 interval bounds as fractions of |T| (paper: 0.001 and
        0.032); resolved lazily against the current total.
    record_every:
        If > 0, append ``(t, estimate)`` to ``history`` every that many
        observed tuples.
    """

    __slots__ = (
        "state",
        "gee",
        "mle",
        "tau",
        "_total",
        "scheduler",
        "_cached_mle",
        "exact",
        "record_every",
        "history",
    )

    def __init__(
        self,
        total: float | TotalProvider,
        tau: float = DEFAULT_TAU,
        lower_fraction: float = 0.001,
        upper_fraction: float = 0.032,
        stability: float = 0.01,
        record_every: int = 0,
    ):
        self.state = GroupFrequencyState()
        self.gee = GEEEstimator(self.state)
        self.mle = MLEEstimator(self.state)
        self.tau = tau
        if callable(total):
            self._total: TotalProvider = total
        else:
            value = float(total)
            self._total = lambda: value
        total_now = max(self._total(), 1.0)
        lower = max(int(total_now * lower_fraction), 1)
        upper = max(int(total_now * upper_fraction), lower)
        self.scheduler = RecomputeScheduler(lower, upper, stability)
        self._cached_mle: float = 0.0
        self.exact: bool = False
        self.record_every = record_every
        self.history: list[tuple[int, float]] = []

    @property
    def total(self) -> float:
        return float(self._total())

    def observe(self, value: object, weight: int = 1) -> None:
        """Feed one (possibly weighted) tuple of the grouping column."""
        state = self.state
        state.observe(value, weight)
        t = state.histogram.total
        if t % self.scheduler.interval == 0:
            old = self._cached_mle
            self._cached_mle = self.mle.estimate(self.total)
            self.scheduler.after_recompute(old, self._cached_mle)
        if self.record_every and t % self.record_every == 0:
            self.history.append((t, self.estimate()))

    def observe_batch(self, values: Sequence[object]) -> None:
        """Feed a batch of unit-weight grouping values in one shot.

        Segments the batch at every recomputation and ``record_every``
        boundary it jumps over, applying each segment as one aggregated
        :meth:`GroupFrequencyState.observe_batch` and firing the boundary
        actions (MLE recompute + scheduler adaptation, history checkpoint)
        at exactly the t the per-tuple path would — the scheduler's
        interval adapts after every recompute, so the next boundary is
        re-derived inside the loop. End state (histogram, moments, cached
        MLE, scheduler interval, history) is identical to one
        :meth:`observe` call per value.
        """
        n = len(values)
        if not n:
            return
        state = self.state
        scheduler = self.scheduler
        rec = self.record_every
        start = 0
        while start < n:
            t = state.histogram.total
            step = scheduler.interval - t % scheduler.interval
            if rec:
                step = min(step, rec - t % rec)
            end = min(n, start + step)
            state.observe_batch(values if not start and end == n else values[start:end])
            t = state.histogram.total
            if t % scheduler.interval == 0:
                old = self._cached_mle
                self._cached_mle = self.mle.estimate(self.total)
                scheduler.after_recompute(old, self._cached_mle)
            if rec and t % rec == 0:
                self.history.append((t, self.estimate()))
            start = end

    def observe_hook(self, key: object, _row: tuple) -> None:
        """(key, row) adapter for operator input hooks — avoids a lambda
        frame per tuple on the hot path."""
        self.observe(key)

    def observe_hook_batch(self, keys: Sequence[object], _rows: Sequence[tuple]) -> None:
        """Batch twin of :meth:`observe_hook` (see operators.base)."""
        self.observe_batch(keys)

    observe_hook.batch_hook_name = "observe_hook_batch"

    def finalize(self) -> None:
        """The whole input has been seen: the group count is exact."""
        self.exact = True
        if self.record_every:
            self.history.append((self.state.t, float(self.state.distinct_seen)))

    @property
    def chosen(self) -> str:
        """Which estimator the γ² chooser currently selects."""
        return self.mle.name if self.state.gamma_squared < self.tau else self.gee.name

    def estimate(self) -> float:
        """Current estimate of the total number of groups in |T|."""
        if self.exact:
            return float(self.state.distinct_seen)
        if self.state.t == 0:
            return 0.0
        if self.chosen == self.mle.name:
            # Between scheduled recomputations, serve the cached value, but
            # never below the groups already seen (monotone floor).
            if self._cached_mle <= 0.0:
                self._cached_mle = self.mle.estimate(self.total)
            return max(self._cached_mle, float(self.state.distinct_seen))
        return max(self.gee.estimate(self.total), float(self.state.distinct_seen))
