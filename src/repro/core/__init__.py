"""The paper's contribution: the lightweight online estimation framework.

Layout mirrors Section 4 of the paper:

* :mod:`repro.core.histogram` — exact frequency histograms with the memory
  accounting of Table 2.
* :mod:`repro.core.confidence` — the binomial/normal confidence machinery
  of Section 4.1.
* :mod:`repro.core.join_estimators` — ONCE estimators for binary hash,
  sort-merge, and index nested-loops joins (Sections 4.1.1-4.1.3).
* :mod:`repro.core.pipeline_estimators` — Algorithm 1: push-down estimation
  for chains of hash joins, same-attribute and different-attribute
  (Cases 1 and 2) alike (Section 4.1.4).
* :mod:`repro.core.distinct` — GEE (Algorithm 2), the MLE estimator with
  its adaptive recomputation interval (Algorithm 3), and the γ²-based
  online chooser (Section 4.2).
* :mod:`repro.core.aggregate_estimators` — group-count estimation for
  aggregates, including push-down into a feeding join.
* :mod:`repro.core.dne` / :mod:`repro.core.byte_estimator` — the
  driver-node (Chaudhuri et al.) and byte-model (Luo et al.) baselines.
* :mod:`repro.core.progress` — the getnext-model progress monitor over
  pipelines (Section 4.4).
* :mod:`repro.core.manager` — walks a physical plan and attaches the right
  estimator to every operator, per the paper's rules.
"""

from repro.core.byte_estimator import ByteModelEstimator
from repro.core.confidence import binomial_beta, proportion_interval
from repro.core.distinct import (
    GEEEstimator,
    GroupFrequencyState,
    HybridGroupCountEstimator,
    MLEEstimator,
    RecomputeScheduler,
)
from repro.core.dne import DriverNodeEstimator
from repro.core.histogram import BucketizedHistogram, FrequencyHistogram
from repro.core.join_estimators import OnceJoinEstimator, attach_once_estimator
from repro.core.manager import EstimationManager
from repro.core.multi_query import InterleavedExecutor, MultiQueryProgressMonitor
from repro.core.pipeline_estimators import HashJoinChainEstimator, find_hash_join_chains
from repro.core.progress import ProgressMonitor, ProgressSnapshot
from repro.core.theta_estimators import OnceThetaJoinEstimator, attach_theta_estimator

__all__ = [
    "BucketizedHistogram",
    "ByteModelEstimator",
    "DriverNodeEstimator",
    "EstimationManager",
    "FrequencyHistogram",
    "GEEEstimator",
    "GroupFrequencyState",
    "HashJoinChainEstimator",
    "HybridGroupCountEstimator",
    "InterleavedExecutor",
    "MLEEstimator",
    "MultiQueryProgressMonitor",
    "OnceJoinEstimator",
    "OnceThetaJoinEstimator",
    "ProgressMonitor",
    "ProgressSnapshot",
    "RecomputeScheduler",
    "attach_once_estimator",
    "attach_theta_estimator",
    "binomial_beta",
    "find_hash_join_chains",
    "proportion_interval",
]
