"""Confidence machinery for the online join estimators (Section 4.1).

Two kinds of interval are provided:

* :func:`binomial_beta` — the paper's distribution-free bound. For a value
  frequency ``p`` estimated by ``N_i / t``, the normal approximation of the
  binomial gives the α-percentile half-width ``Z_α sqrt(p(1-p)/t)``;
  maximising ``p(1-p)`` at 1/4 yields the worst-case half-width
  ``β = Z_α / (2 sqrt(t))`` quoted in the paper. β shrinks as 1/sqrt(t):
  "an expression on how the confidence of our estimate improves ... as we
  observe more elements of the tuple stream."

* :class:`MeanEstimateInterval` — an empirical-variance interval for the
  ONCE join estimate itself. The estimate after t probe tuples is
  ``|S| × mean(X_1..X_t)`` with ``X_j = N^R[key_j]`` i.i.d. bounded
  variables, so a standard normal interval on the mean (with finite
  population correction, since sampling is effectively without replacement
  from the probe stream) gives a far tighter bound than composing
  per-value βs; both are exposed so their widths can be compared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.stats import normal_quantile

__all__ = ["MeanEstimateInterval", "binomial_beta", "proportion_interval"]


def binomial_beta(t: int, alpha: float = 0.99) -> float:
    """Worst-case half-width β = Z_α / (2 sqrt(t)) for a proportion
    estimated from ``t`` observations (paper, Section 4.1)."""
    if t <= 0:
        return float("inf")
    return normal_quantile(alpha) / (2.0 * math.sqrt(t))


def proportion_interval(
    successes: int, t: int, alpha: float = 0.99
) -> tuple[float, float]:
    """α-confidence interval for a proportion ``p`` given ``successes``
    out of ``t`` observations, via the normal approximation with the
    plug-in variance ``p̂(1-p̂)/t``."""
    if t <= 0:
        return (0.0, 1.0)
    p_hat = successes / t
    half = normal_quantile(alpha) * math.sqrt(max(p_hat * (1.0 - p_hat), 0.0) / t)
    return (max(p_hat - half, 0.0), min(p_hat + half, 1.0))


@dataclass(slots=True)
class MeanEstimateInterval:
    """Online normal interval for ``scale × mean(X_1..X_t)``.

    Maintains Σx and Σx² incrementally; ``interval`` applies the finite
    population correction ``(N - t)/(N - 1)`` when the population size
    ``N`` (the probe stream length) is known.
    """

    count: int = 0
    sum_x: float = 0.0
    sum_x_sq: float = 0.0

    def observe(self, x: float) -> None:
        self.count += 1
        self.sum_x += x
        self.sum_x_sq += x * x

    def merge_sums(self, count: int, sum_x: float, sum_x_sq: float) -> None:
        """Fold in the sufficient statistics (k, Σx, Σx²) of a batch.

        For the integer-valued contribution streams the join estimators
        feed (every x is a key multiplicity), this is *bit-identical* to k
        :meth:`observe` calls regardless of order: every partial sum is an
        integer below 2^53, so each float addition is exact and grouping
        terms cannot change the result. The resulting interval endpoints
        therefore match the per-tuple path exactly, not just to tolerance.
        """
        self.count += count
        self.sum_x += sum_x
        self.sum_x_sq += sum_x_sq

    @property
    def mean(self) -> float:
        return self.sum_x / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        var = self.sum_x_sq / self.count - mean * mean
        return max(var, 0.0)

    def interval(
        self,
        scale: float,
        alpha: float = 0.99,
        population: float | None = None,
    ) -> tuple[float, float]:
        """α-confidence interval for ``scale × true mean``."""
        center = scale * self.mean
        if self.count < 2:
            return (0.0, float("inf")) if self.count == 0 else (center, center)
        se_sq = self.variance / self.count
        if population is not None and population > 1:
            fpc = max((population - self.count) / (population - 1), 0.0)
            se_sq *= fpc
        half = normal_quantile(alpha) * scale * math.sqrt(se_sq)
        return (max(center - half, 0.0), center + half)
