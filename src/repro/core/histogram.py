"""Exact frequency histograms.

The paper's estimators all rest on one data structure: an exact
value -> count histogram built during an operator's preprocessing pass
("we build a histogram that maintains a count N_i^R for each value i in R").
This module provides it, together with:

* optional *frequency-of-frequencies* maintenance (``f_j`` = number of
  values occurring exactly ``j`` times), updated in O(1) per increment —
  the input to the GEE and MLE group-count estimators;
* the memory accounting of Table 2 — both the paper's PostgreSQL hash-table
  cost model (8 payload bytes/entry plus pointer overhead) and an actual
  measurement of the Python structure.

Weighted increments (``add(value, weight)``) support derived histograms:
Case 2 of Section 4.1.4.2 increments "the count of the bucket corresponding
to x1 by N_{y1}^A", and the aggregation push-down builds a histogram of the
*join output's* frequency distribution the same way.
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Iterable, Iterator

__all__ = ["BucketizedHistogram", "FrequencyHistogram"]

# Table 2 cost model: 8 payload bytes per entry (4 value + 4 count) plus
# ~12 bytes of hash-table pointer overhead, matching the ~20 B/entry the
# paper measured for PostgreSQL's generic dynahash.
_PAYLOAD_BYTES_PER_ENTRY = 8
_POSTGRES_OVERHEAD_BYTES_PER_ENTRY = 12


class FrequencyHistogram:
    """Exact value -> count map with optional frequency-of-frequency index.

    Parameters
    ----------
    track_frequencies:
        Maintain the ``f_j`` index needed by the distinct-count estimators.
        Join estimation does not need it; leaving it off keeps the probe
        path to a single dict update.
    """

    __slots__ = ("counts", "total", "track_frequencies", "freq_of_freq")

    def __init__(self, track_frequencies: bool = False):
        self.counts: dict[object, int] = {}
        self.total: int = 0
        self.track_frequencies = track_frequencies
        self.freq_of_freq: dict[int, int] = {}

    # -- updates ---------------------------------------------------------------

    def add(self, value: object, weight: int = 1) -> int:
        """Increment ``value`` by ``weight``; returns the previous count."""
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        if weight == 0:
            return self.counts.get(value, 0)
        old = self.counts.get(value, 0)
        new = old + weight
        self.counts[value] = new
        self.total += weight
        if self.track_frequencies:
            fof = self.freq_of_freq
            if old:
                remaining = fof[old] - 1
                if remaining:
                    fof[old] = remaining
                else:
                    del fof[old]
            fof[new] = fof.get(new, 0) + 1
        return old

    def add_many(self, values: Iterable[object]) -> None:
        for v in values:
            self.add(v)

    def add_batch(self, values: Iterable[object]) -> None:
        """Counter-aggregated bulk increment: one unit per non-None value.

        Ends in exactly the state of one :meth:`add` per value — the
        weighted fof transition ``old -> old + w`` is the composition of
        the ``w`` unit transitions — but does one dict update per
        *distinct* value. None values are skipped, matching the build-hook
        convention that NULL keys never join; feed key lists straight from
        a batch drain.
        """
        agg = Counter(values)
        agg.pop(None, None)
        if not agg:
            return
        if self.track_frequencies:
            for value, weight in agg.items():
                self.add(value, weight)
            return
        counts = self.counts
        get = counts.get
        added = 0
        for value, weight in agg.items():
            counts[value] = get(value, 0) + weight
            added += weight
        self.total += added

    # -- queries ------------------------------------------------------------------

    def count(self, value: object) -> int:
        return self.counts.get(value, 0)

    def __getitem__(self, value: object) -> int:
        return self.counts.get(value, 0)

    def __contains__(self, value: object) -> bool:
        return value in self.counts

    def __len__(self) -> int:
        """Number of distinct values."""
        return len(self.counts)

    def __iter__(self) -> Iterator[object]:
        return iter(self.counts)

    def items(self):
        return self.counts.items()

    @property
    def num_distinct(self) -> int:
        return len(self.counts)

    def frequency_counts(self) -> dict[int, int]:
        """``{j: f_j}``: how many values occur exactly j times.

        O(1) view when tracking is on; computed on demand otherwise.
        """
        if self.track_frequencies:
            return self.freq_of_freq
        fof: dict[int, int] = {}
        for c in self.counts.values():
            fof[c] = fof.get(c, 0) + 1
        return fof

    def max_multiplicity(self) -> int:
        """Largest count of any single value (0 when empty)."""
        return max(self.counts.values(), default=0)

    def dot(self, other: "FrequencyHistogram") -> int:
        """Σ_v self[v] * other[v] — the exact equijoin size of the two
        underlying multisets. Iterates the smaller histogram."""
        small, large = (
            (self, other) if len(self.counts) <= len(other.counts) else (other, self)
        )
        large_get = large.counts.get
        return sum(c * large_get(v, 0) for v, c in small.counts.items())

    # -- memory accounting (Table 2) ----------------------------------------------

    def memory_model_bytes(self) -> int:
        """Size under the paper's PostgreSQL hash-table cost model."""
        return len(self.counts) * (
            _PAYLOAD_BYTES_PER_ENTRY + _POSTGRES_OVERHEAD_BYTES_PER_ENTRY
        )

    def memory_payload_bytes(self) -> int:
        """Just the 8 payload bytes per entry the paper says it stores."""
        return len(self.counts) * _PAYLOAD_BYTES_PER_ENTRY

    def memory_actual_bytes(self) -> int:
        """Measured size of the Python dict (keys/values assumed interned
        ints of machine-word size, as in our executor)."""
        size = sys.getsizeof(self.counts)
        if self.counts:
            # Sample one key/value as representative; our histograms hold
            # homogeneous small ints or short tuples.
            key = next(iter(self.counts))
            size += len(self.counts) * (
                sys.getsizeof(key) + sys.getsizeof(self.counts[key])
            )
        return size


class BucketizedHistogram:
    """Approximate frequency histogram with a fixed bucket budget.

    The paper's future-work direction ("deploying approximations of the
    histograms we construct ... the classic accuracy performance trade-off
    can be explored via approximation"): values hash into ``num_buckets``
    counters, so memory is O(num_buckets) regardless of the number of
    distinct keys, at the price of collision-induced *over*-counts — a
    ``count`` query returns the bucket total, an upper bound on the true
    frequency. Drop-in compatible with the subset of the
    :class:`FrequencyHistogram` interface the ONCE estimators use.
    """

    __slots__ = ("buckets", "num_buckets", "total")

    def __init__(self, num_buckets: int = 1024):
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = num_buckets
        self.buckets = [0] * num_buckets
        self.total = 0

    def add(self, value: object, weight: int = 1) -> int:
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        idx = hash(value) % self.num_buckets
        old = self.buckets[idx]
        self.buckets[idx] = old + weight
        self.total += weight
        return old

    def add_batch(self, values: Iterable[object]) -> None:
        """Bulk increment, one bucket update per distinct non-None value
        (same skip-None convention as :meth:`FrequencyHistogram.add_batch`)."""
        buckets = self.buckets
        num_buckets = self.num_buckets
        added = 0
        for value, weight in Counter(values).items():
            if value is None:
                continue
            buckets[hash(value) % num_buckets] += weight
            added += weight
        self.total += added

    def count(self, value: object) -> int:
        """Upper bound on the frequency of ``value``."""
        return self.buckets[hash(value) % self.num_buckets]

    def max_multiplicity(self) -> int:
        return max(self.buckets, default=0)

    @property
    def num_distinct(self) -> int:
        """Occupied buckets — a lower bound on the true distinct count."""
        return sum(1 for b in self.buckets if b)

    def memory_model_bytes(self) -> int:
        """Fixed cost: one 4-byte counter per bucket."""
        return 4 * self.num_buckets

    def memory_actual_bytes(self) -> int:
        return sys.getsizeof(self.buckets) + 28 * self.num_buckets
