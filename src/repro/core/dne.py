"""The driver-node estimator (dne) of Chaudhuri et al. [9] — baseline.

For a pipeline with driver node d (the node feeding tuples into the
pipeline), dne takes the driver's progress α = K_d / N_d — N_d is known
exactly for scans, and for blocking-operator outputs once the blocking pass
finished — and scales every operator's observed output up by it:

    N̂_i = K_i / α        (once the pipeline has started)

The optimizer estimate is discarded the moment the pipeline starts
("the dne estimator disregards the original optimizer estimate as soon as
the pipeline starts executing"). On randomly ordered streams this is
unbiased for selections, but for operators *behind* a reordering boundary —
the partition-wise join pass of a hybrid hash join, a merge of sorted
runs — K_i reflects clustered, non-representative prefixes and the estimate
fluctuates (Figure 4). That failure mode is precisely what ONCE sidesteps
by estimating in the preprocessing pass.
"""

from __future__ import annotations

from repro.core.join_estimators import resolve_stream_total
from repro.executor.operators.base import Operator
from repro.executor.pipeline import Pipeline

__all__ = ["DriverNodeEstimator"]


class DriverNodeEstimator:
    """dne estimates for every operator of one pipeline."""

    def __init__(self, pipeline: Pipeline):
        self.pipeline = pipeline
        self.driver: Operator = pipeline.driver
        self._driver_total = resolve_stream_total(self.driver)

    @property
    def driver_progress(self) -> float:
        """α: fraction of the driver's stream consumed so far (0..1)."""
        total = self._driver_total()
        if total <= 0:
            return 1.0 if self.driver.is_exhausted else 0.0
        alpha = self.driver.tuples_emitted / total
        return min(max(alpha, 0.0), 1.0)

    def estimate_for(self, op: Operator) -> float:
        """dne estimate of N_i for ``op``.

        Exact for exhausted operators; the driver itself reports its known
        total; before the pipeline starts, the optimizer estimate stands.
        """
        if op.is_exhausted:
            return float(op.tuples_emitted)
        if op is self.driver:
            return max(float(self._driver_total()), float(op.tuples_emitted))
        alpha = self.driver_progress
        if alpha <= 0.0:
            if op.estimated_cardinality is not None:
                return float(op.estimated_cardinality)
            return float(op.tuples_emitted)
        return max(op.tuples_emitted / alpha, float(op.tuples_emitted))

    def estimates(self) -> dict[Operator, float]:
        return {op: self.estimate_for(op) for op in self.pipeline.operators}
