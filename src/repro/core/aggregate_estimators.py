"""Group-count estimation attached to aggregation operators.

Two attachment modes (Section 4.2):

* **Direct** (:func:`attach_group_estimator`) — the aggregate's
  preprocessing pass (hash partitioning / sort input read) feeds the hybrid
  GEE/MLE estimator one group key per input tuple. When that pass completes,
  the group count is exact, before any output row is emitted.
* **Pushed down** (:func:`attach_pushed_down_group_estimator`) — when the
  aggregate's input is a hash-join (chain) on the same stream and the group
  column belongs to the chain's base probe stream, the input to the
  aggregate cannot be treated as randomly ordered (it is clustered by the
  join's partitions). The paper pushes estimation into the join: "In
  addition to computing the estimate of the cardinality of the output of
  the join, we also build a histogram storing the frequency distribution of
  the output." Here the chain estimator streams
  ``(group value, #output rows)`` pairs per probe tuple, which feed the same
  hybrid estimator with weighted increments; the |T| it scales to is the
  chain's own (converging) output-cardinality estimate.
"""

from __future__ import annotations

from repro.common.errors import EstimationError
from repro.core.distinct import HybridGroupCountEstimator, TotalProvider
from repro.core.join_estimators import resolve_stream_total
from repro.core.pipeline_estimators import HashJoinChainEstimator
from repro.executor.operators.aggregate import _AggregateBase
from repro.executor.operators.base import Operator
from repro.executor.operators.distinct import Distinct

__all__ = [
    "GroupCountEstimate",
    "attach_distinct_estimator",
    "attach_group_estimator",
    "attach_pushed_down_group_estimator",
]


class GroupCountEstimate:
    """Handle over an attached hybrid group-count estimator."""

    def __init__(self, hybrid: HybridGroupCountEstimator, pushed_down: bool):
        self.hybrid = hybrid
        self.pushed_down = pushed_down

    def current_estimate(self) -> float:
        return self.hybrid.estimate()

    @property
    def exact(self) -> bool:
        return self.hybrid.exact

    @property
    def chosen(self) -> str:
        return self.hybrid.chosen

    @property
    def gamma_squared(self) -> float:
        return self.hybrid.state.gamma_squared

    @property
    def history(self) -> list[tuple[int, float]]:
        return self.hybrid.history


def attach_group_estimator(
    aggregate: _AggregateBase,
    input_total: float | TotalProvider | None = None,
    record_every: int = 0,
    **hybrid_kwargs,
) -> GroupCountEstimate:
    """Attach a hybrid GEE/MLE estimator to an aggregate's input pass."""
    if not aggregate.group_by:
        raise EstimationError("global aggregates have exactly one group")
    if input_total is None:
        input_total = resolve_stream_total(aggregate.child)
    hybrid = HybridGroupCountEstimator(
        total=input_total, record_every=record_every, **hybrid_kwargs
    )
    aggregate.input_hooks.append(hybrid.observe_hook)

    def on_phase(_op: Operator, phase: str) -> None:
        if phase in ("emit", "done") and not hybrid.exact:
            hybrid.finalize()

    aggregate.phase_hooks.append(on_phase)
    return GroupCountEstimate(hybrid, pushed_down=False)


def attach_distinct_estimator(
    distinct: Distinct,
    input_total=None,
    record_every: int = 0,
    **hybrid_kwargs,
) -> GroupCountEstimate:
    """Attach a hybrid GEE/MLE estimator to a DISTINCT operator.

    Duplicate elimination is the distinct-value problem with the whole row
    as the grouping key; the estimator predicts the output cardinality
    (number of distinct rows) during the input pass.
    """
    if input_total is None:
        input_total = resolve_stream_total(distinct.child)
    hybrid = HybridGroupCountEstimator(
        total=input_total, record_every=record_every, **hybrid_kwargs
    )
    distinct.input_hooks.append(hybrid.observe_hook)

    def on_phase(_op: Operator, phase: str) -> None:
        if phase in ("emit", "done") and not hybrid.exact:
            hybrid.finalize()

    distinct.phase_hooks.append(on_phase)
    return GroupCountEstimate(hybrid, pushed_down=False)


def attach_pushed_down_group_estimator(
    aggregate: _AggregateBase,
    chain: HashJoinChainEstimator,
    record_every: int = 0,
    **hybrid_kwargs,
) -> GroupCountEstimate:
    """Push the aggregate's group-count estimation into a feeding join chain.

    Requires a single group-by column that belongs to the chain's base
    probe stream; raises :class:`EstimationError` otherwise so the caller
    can fall back to :func:`attach_group_estimator`.
    """
    if len(aggregate.group_by) != 1:
        raise EstimationError(
            "push-down supports exactly one group column; "
            f"got {list(aggregate.group_by)}"
        )
    group_column = aggregate.group_by[0]
    hybrid = HybridGroupCountEstimator(
        total=lambda: max(chain.current_estimate(), 1.0),
        record_every=record_every,
        **hybrid_kwargs,
    )
    chain.add_output_listener(group_column, hybrid.observe)

    top = chain.chain[-1]

    def on_phase(_op: Operator, phase: str) -> None:
        # Once the chain's probe pass completes, the simulated output
        # histogram covers the entire join output: group count exact.
        if chain.exact and not hybrid.exact:
            hybrid.finalize()

    top.phase_hooks.append(on_phase)
    chain.chain[0].phase_hooks.append(on_phase)
    return GroupCountEstimate(hybrid, pushed_down=True)
