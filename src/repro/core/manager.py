"""Estimator attachment: one call wires the whole framework onto a plan.

:class:`EstimationManager` walks a physical plan and applies the paper's
per-operator rules (Section 4.4):

* hash joins — grouped into probe-connected chains, each handled by one
  :class:`~repro.core.pipeline_estimators.HashJoinChainEstimator`
  (Algorithm 1); a chain whose shape falls outside the framework degrades
  join-by-join to binary ONCE estimators, and finally to dne.
* sort-merge joins — binary ONCE estimator, unless an input is presorted
  (no preprocessing pass -> dne).
* index nested-loops joins — binary ONCE estimator over the index build.
* plain nested-loops joins, selections — no attachment; the progress layer
  uses the driver-node estimator for them.
* aggregations — hybrid GEE/MLE estimator; pushed down into the feeding
  hash-join chain when the group column comes from the chain's base stream.

``estimate_for(op)`` then answers with the best current refined estimate
(or None when the operator has no attached estimator), and ``is_exact(op)``
says whether that estimate has converged to the true cardinality.

Graceful degradation
--------------------
:meth:`EstimationManager.harden` wraps every attached estimator hook in a
guard. A hook that raises no longer unwinds the executor pull (which would
fail the whole query for the sake of a *progress estimate*): the guard
demotes the owning estimator — detaching it from the manager's registries,
so ``estimate_for`` returns None and the progress layer falls back to the
driver-node estimator — records the reason, and execution continues. The
demotion is exactly the paper's degradation ladder (chain → binary ONCE →
dne) taken to its last rung at runtime instead of attach time.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import EstimationError
from repro.core.aggregate_estimators import (
    GroupCountEstimate,
    attach_distinct_estimator,
    attach_group_estimator,
    attach_pushed_down_group_estimator,
)
from repro.core.join_estimators import OnceJoinEstimator, attach_once_estimator
from repro.core.pipeline_estimators import (
    HashJoinChainEstimator,
    find_hash_join_chains,
)
from repro.executor.operators.aggregate import _AggregateBase
from repro.executor.operators.base import Operator
from repro.executor.operators.distinct import Distinct
from repro.executor.operators.hash_join import HashJoin
from repro.executor.operators.merge_join import SortMergeJoin
from repro.executor.operators.nested_loops import IndexNestedLoopsJoin
from repro.executor.operators.base import batch_hook_of
from repro.executor.plan import walk
from repro.faults.plan import SITE_ESTIMATOR_HOOK, FaultPlan

__all__ = ["EstimationManager"]

#: Every operator attribute that may carry per-row estimator hooks; the
#: degradation guard wraps each of these lists in place.
_HOOK_LIST_ATTRS = (
    "build_hooks",
    "probe_hooks",
    "input_hooks",
    "inner_input_hooks",
    "outer_hooks",
    "left_input_hooks",
    "right_input_hooks",
    "phase_hooks",
    "sample_boundary_hooks",
)


class EstimationManager:
    """Attaches and indexes all estimators for one plan."""

    def __init__(
        self,
        root: Operator,
        record_every: int = 0,
        stop_after_sample: bool = False,
    ):
        self.root = root
        self.record_every = record_every
        self.stop_after_sample = stop_after_sample
        self.chain_estimators: list[HashJoinChainEstimator] = []
        self.join_estimators: dict[int, OnceJoinEstimator] = {}
        self.chain_of_join: dict[int, HashJoinChainEstimator] = {}
        self.group_estimators: dict[int, GroupCountEstimate] = {}
        self.fallbacks: list[tuple[Operator, str]] = []
        # Runtime demotions performed by the hardening guards: (op, reason)
        # pairs, in firing order. Non-empty <=> progress is "degraded".
        self.demotions: list[tuple[Operator, str]] = []
        self._hardened = False
        self._demote_enabled = True
        self._faults: FaultPlan | None = None
        self._demoted_keys: set[int] = set()
        self._attach_joins()
        self._attach_aggregates()

    # -- attachment ---------------------------------------------------------------

    def _attach_joins(self) -> None:
        for chain in find_hash_join_chains(self.root):
            try:
                estimator = self._make_chain_estimator(chain)
            except EstimationError as exc:
                self.fallbacks.append((chain[-1], f"chain: {exc}"))
                self._attach_chain_joins_individually(chain)
                continue
            self.chain_estimators.append(estimator)
            for join in chain:
                self.chain_of_join[id(join)] = estimator

        for op in walk(self.root):
            if isinstance(op, (SortMergeJoin, IndexNestedLoopsJoin)):
                try:
                    self.join_estimators[id(op)] = attach_once_estimator(
                        op, record_every=self.record_every
                    )
                except EstimationError as exc:
                    self.fallbacks.append((op, str(exc)))

    def _make_chain_estimator(self, chain: list[HashJoin]) -> HashJoinChainEstimator:
        if self.stop_after_sample:
            try:
                return HashJoinChainEstimator(
                    chain,
                    record_every=self.record_every,
                    stop_after_sample=True,
                )
            except EstimationError:
                # No SampleScan beneath this chain: fall back to refining
                # through the whole probe pass.
                pass
        return HashJoinChainEstimator(chain, record_every=self.record_every)

    def _attach_chain_joins_individually(self, chain: list[HashJoin]) -> None:
        for join in chain:
            try:
                self.join_estimators[id(join)] = attach_once_estimator(
                    join, record_every=self.record_every
                )
            except EstimationError as exc:  # pragma: no cover - defensive
                self.fallbacks.append((join, str(exc)))

    def _attach_aggregates(self) -> None:
        for op in walk(self.root):
            if isinstance(op, Distinct):
                try:
                    self.group_estimators[id(op)] = attach_distinct_estimator(
                        op, record_every=self.record_every
                    )
                except EstimationError as exc:  # pragma: no cover - defensive
                    self.fallbacks.append((op, str(exc)))
                continue
            if not isinstance(op, _AggregateBase):
                continue
            if not op.group_by:
                continue  # single global group: nothing to estimate
            estimate = self._try_push_down(op)
            if estimate is None:
                try:
                    estimate = attach_group_estimator(
                        op, record_every=self.record_every
                    )
                except EstimationError as exc:
                    self.fallbacks.append((op, str(exc)))
                    continue
            self.group_estimators[id(op)] = estimate

    def _try_push_down(self, op: _AggregateBase) -> GroupCountEstimate | None:
        child = op.child
        chain = self.chain_of_join.get(id(child))
        if chain is None or chain.chain[-1] is not child:
            return None
        try:
            return attach_pushed_down_group_estimator(
                op, chain, record_every=self.record_every
            )
        except EstimationError as exc:
            self.fallbacks.append((op, f"push-down: {exc}"))
            return None

    # -- graceful degradation -----------------------------------------------------

    @property
    def degraded(self) -> bool:
        """Has any estimator been demoted at runtime?"""
        return bool(self.demotions)

    def harden(self, faults: FaultPlan | None = None, demote: bool = True) -> None:
        """Wrap every attached estimator hook in a degradation guard.

        With ``demote=True`` (the default), a hook that raises detaches its
        owning estimator from the registries — ``estimate_for`` then
        returns None and the progress layer falls back to dne — instead of
        unwinding the executor pull. With ``demote=False`` the exception
        propagates (used by the chaos harness's broken-degradation
        meta-test to prove the harness catches a missing fallback).

        ``faults`` arms the ``estimator.hook`` injection site inside the
        guards. Idempotent; hooks registered *after* hardening are not
        guarded.
        """
        if self._hardened:
            return
        self._hardened = True
        self._demote_enabled = demote
        self._faults = faults
        for op in walk(self.root):
            for attr in _HOOK_LIST_ATTRS:
                hooks = getattr(op, attr, None)
                if hooks:
                    hooks[:] = [self._guard(hook, op) for hook in hooks]

    def _guard(self, hook: Callable, op: Operator) -> Callable:
        faults = self._faults

        def run(fn: Callable, args: tuple) -> None:
            try:
                if faults is not None:
                    faults.fire(SITE_ESTIMATOR_HOOK, detail=op.op_name)
                fn(*args)
            except Exception as exc:
                if not self._demote_enabled:
                    raise
                self._demote(op, hook, exc)

        def guarded(*args) -> None:
            run(hook, args)

        # Preserve the batch-twin pairing: the guarded row hook advertises a
        # guarded batch twin, so make_batch_dispatch keeps amortizing.
        twin = batch_hook_of(hook)
        if twin is not None:
            def guarded_batch(keys: list, rows: list) -> None:
                run(twin, (keys, rows))

            guarded.batch_hook = guarded_batch
        return guarded

    def _demote(self, op: Operator, hook: Callable, exc: Exception) -> None:
        owner = getattr(hook, "__self__", None)
        key = id(owner) if owner is not None else id(op)
        if key in self._demoted_keys:
            return  # already demoted; keep swallowing this hook's failures
        self._demoted_keys.add(key)
        reason = (
            f"estimator hook failed at {op.describe()}: "
            f"{type(exc).__name__}: {exc}"
        )
        if not (
            (owner is not None and self._detach_estimator(owner))
            or self._detach_for_op(op)
        ):
            # Unattributable hook (a bare closure on an operator with no
            # registered estimator): degrade everything rather than risk a
            # poisoned estimate surviving.
            self._detach_all()
        self.demotions.append((op, reason))
        self.fallbacks.append((op, reason))

    def _detach_estimator(self, owner: object) -> bool:
        removed = False
        if owner in self.chain_estimators:
            self.chain_estimators.remove(owner)
            for join_id in [
                j for j, chain in self.chain_of_join.items() if chain is owner
            ]:
                del self.chain_of_join[join_id]
            removed = True
        for op_id, est in list(self.join_estimators.items()):
            if est is owner:
                del self.join_estimators[op_id]
                removed = True
        for op_id, est in list(self.group_estimators.items()):
            if est is owner or est.hybrid is owner:
                del self.group_estimators[op_id]
                removed = True
        return removed

    def _detach_for_op(self, op: Operator) -> bool:
        chain = self.chain_of_join.get(id(op))
        if chain is not None:
            return self._detach_estimator(chain)
        removed = self.join_estimators.pop(id(op), None) is not None
        removed = (self.group_estimators.pop(id(op), None) is not None) or removed
        return removed

    def _detach_all(self) -> None:
        self.chain_estimators.clear()
        self.chain_of_join.clear()
        self.join_estimators.clear()
        self.group_estimators.clear()

    # -- queries ----------------------------------------------------------------------

    def estimate_for(self, op: Operator) -> float | None:
        """Best current refined cardinality estimate, or None if the
        operator has no attached estimator."""
        chain = self.chain_of_join.get(id(op))
        if chain is not None:
            return chain.current_estimate(op)  # type: ignore[arg-type]
        join_est = self.join_estimators.get(id(op))
        if join_est is not None:
            return join_est.current_estimate()
        group_est = self.group_estimators.get(id(op))
        if group_est is not None:
            return group_est.current_estimate()
        return None

    def has_started(self, op: Operator) -> bool:
        """Has the operator's estimator begun observing its stream?

        Until then (e.g. a hash join still in its build phase) the refined
        estimate is vacuous and callers should fall back to dne/optimizer.
        """
        chain = self.chain_of_join.get(id(op))
        if chain is not None:
            return chain.exact or chain.t > 0
        join_est = self.join_estimators.get(id(op))
        if join_est is not None:
            return join_est.exact or join_est.t > 0
        group_est = self.group_estimators.get(id(op))
        if group_est is not None:
            return group_est.exact or group_est.hybrid.state.t > 0
        return False

    def is_exact(self, op: Operator) -> bool:
        chain = self.chain_of_join.get(id(op))
        if chain is not None:
            return chain.exact
        join_est = self.join_estimators.get(id(op))
        if join_est is not None:
            return join_est.exact
        group_est = self.group_estimators.get(id(op))
        if group_est is not None:
            return group_est.exact
        return False

    def max_multiplicities(self) -> dict[int, float]:
        """Observed build-side maximum multiplicities per join, for
        upper-bound refinement of future-pipeline estimates."""
        result: dict[int, float] = {}
        for chain in self.chain_estimators:
            result.update(chain.max_build_multiplicity)
        for op_id, est in self.join_estimators.items():
            result[op_id] = float(est.histogram.max_multiplicity())
        return result

    def describe(self) -> str:
        """Human-readable attachment report."""
        lines = []
        for chain in self.chain_estimators:
            names = " -> ".join(j.describe() for j in chain.chain)
            lines.append(f"chain[{chain.k}]: {names}")
        for op_id, est in self.join_estimators.items():
            lines.append(f"binary once: join@{op_id}")
        for op_id, est in self.group_estimators.items():
            mode = "pushed-down" if est.pushed_down else "direct"
            lines.append(f"group-count ({mode}): aggregate@{op_id}")
        for op, reason in self.fallbacks:
            lines.append(f"dne fallback: {op.describe()} ({reason})")
        return "\n".join(lines)
