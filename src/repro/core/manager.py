"""Estimator attachment: one call wires the whole framework onto a plan.

:class:`EstimationManager` walks a physical plan and applies the paper's
per-operator rules (Section 4.4):

* hash joins — grouped into probe-connected chains, each handled by one
  :class:`~repro.core.pipeline_estimators.HashJoinChainEstimator`
  (Algorithm 1); a chain whose shape falls outside the framework degrades
  join-by-join to binary ONCE estimators, and finally to dne.
* sort-merge joins — binary ONCE estimator, unless an input is presorted
  (no preprocessing pass -> dne).
* index nested-loops joins — binary ONCE estimator over the index build.
* plain nested-loops joins, selections — no attachment; the progress layer
  uses the driver-node estimator for them.
* aggregations — hybrid GEE/MLE estimator; pushed down into the feeding
  hash-join chain when the group column comes from the chain's base stream.

``estimate_for(op)`` then answers with the best current refined estimate
(or None when the operator has no attached estimator), and ``is_exact(op)``
says whether that estimate has converged to the true cardinality.
"""

from __future__ import annotations

from repro.common.errors import EstimationError
from repro.core.aggregate_estimators import (
    GroupCountEstimate,
    attach_distinct_estimator,
    attach_group_estimator,
    attach_pushed_down_group_estimator,
)
from repro.core.join_estimators import OnceJoinEstimator, attach_once_estimator
from repro.core.pipeline_estimators import (
    HashJoinChainEstimator,
    find_hash_join_chains,
)
from repro.executor.operators.aggregate import _AggregateBase
from repro.executor.operators.base import Operator
from repro.executor.operators.distinct import Distinct
from repro.executor.operators.hash_join import HashJoin
from repro.executor.operators.merge_join import SortMergeJoin
from repro.executor.operators.nested_loops import IndexNestedLoopsJoin
from repro.executor.plan import walk

__all__ = ["EstimationManager"]


class EstimationManager:
    """Attaches and indexes all estimators for one plan."""

    def __init__(
        self,
        root: Operator,
        record_every: int = 0,
        stop_after_sample: bool = False,
    ):
        self.root = root
        self.record_every = record_every
        self.stop_after_sample = stop_after_sample
        self.chain_estimators: list[HashJoinChainEstimator] = []
        self.join_estimators: dict[int, OnceJoinEstimator] = {}
        self.chain_of_join: dict[int, HashJoinChainEstimator] = {}
        self.group_estimators: dict[int, GroupCountEstimate] = {}
        self.fallbacks: list[tuple[Operator, str]] = []
        self._attach_joins()
        self._attach_aggregates()

    # -- attachment ---------------------------------------------------------------

    def _attach_joins(self) -> None:
        for chain in find_hash_join_chains(self.root):
            try:
                estimator = self._make_chain_estimator(chain)
            except EstimationError as exc:
                self.fallbacks.append((chain[-1], f"chain: {exc}"))
                self._attach_chain_joins_individually(chain)
                continue
            self.chain_estimators.append(estimator)
            for join in chain:
                self.chain_of_join[id(join)] = estimator

        for op in walk(self.root):
            if isinstance(op, (SortMergeJoin, IndexNestedLoopsJoin)):
                try:
                    self.join_estimators[id(op)] = attach_once_estimator(
                        op, record_every=self.record_every
                    )
                except EstimationError as exc:
                    self.fallbacks.append((op, str(exc)))

    def _make_chain_estimator(self, chain: list[HashJoin]) -> HashJoinChainEstimator:
        if self.stop_after_sample:
            try:
                return HashJoinChainEstimator(
                    chain,
                    record_every=self.record_every,
                    stop_after_sample=True,
                )
            except EstimationError:
                # No SampleScan beneath this chain: fall back to refining
                # through the whole probe pass.
                pass
        return HashJoinChainEstimator(chain, record_every=self.record_every)

    def _attach_chain_joins_individually(self, chain: list[HashJoin]) -> None:
        for join in chain:
            try:
                self.join_estimators[id(join)] = attach_once_estimator(
                    join, record_every=self.record_every
                )
            except EstimationError as exc:  # pragma: no cover - defensive
                self.fallbacks.append((join, str(exc)))

    def _attach_aggregates(self) -> None:
        for op in walk(self.root):
            if isinstance(op, Distinct):
                try:
                    self.group_estimators[id(op)] = attach_distinct_estimator(
                        op, record_every=self.record_every
                    )
                except EstimationError as exc:  # pragma: no cover - defensive
                    self.fallbacks.append((op, str(exc)))
                continue
            if not isinstance(op, _AggregateBase):
                continue
            if not op.group_by:
                continue  # single global group: nothing to estimate
            estimate = self._try_push_down(op)
            if estimate is None:
                try:
                    estimate = attach_group_estimator(
                        op, record_every=self.record_every
                    )
                except EstimationError as exc:
                    self.fallbacks.append((op, str(exc)))
                    continue
            self.group_estimators[id(op)] = estimate

    def _try_push_down(self, op: _AggregateBase) -> GroupCountEstimate | None:
        child = op.child
        chain = self.chain_of_join.get(id(child))
        if chain is None or chain.chain[-1] is not child:
            return None
        try:
            return attach_pushed_down_group_estimator(
                op, chain, record_every=self.record_every
            )
        except EstimationError as exc:
            self.fallbacks.append((op, f"push-down: {exc}"))
            return None

    # -- queries ----------------------------------------------------------------------

    def estimate_for(self, op: Operator) -> float | None:
        """Best current refined cardinality estimate, or None if the
        operator has no attached estimator."""
        chain = self.chain_of_join.get(id(op))
        if chain is not None:
            return chain.current_estimate(op)  # type: ignore[arg-type]
        join_est = self.join_estimators.get(id(op))
        if join_est is not None:
            return join_est.current_estimate()
        group_est = self.group_estimators.get(id(op))
        if group_est is not None:
            return group_est.current_estimate()
        return None

    def has_started(self, op: Operator) -> bool:
        """Has the operator's estimator begun observing its stream?

        Until then (e.g. a hash join still in its build phase) the refined
        estimate is vacuous and callers should fall back to dne/optimizer.
        """
        chain = self.chain_of_join.get(id(op))
        if chain is not None:
            return chain.exact or chain.t > 0
        join_est = self.join_estimators.get(id(op))
        if join_est is not None:
            return join_est.exact or join_est.t > 0
        group_est = self.group_estimators.get(id(op))
        if group_est is not None:
            return group_est.exact or group_est.hybrid.state.t > 0
        return False

    def is_exact(self, op: Operator) -> bool:
        chain = self.chain_of_join.get(id(op))
        if chain is not None:
            return chain.exact
        join_est = self.join_estimators.get(id(op))
        if join_est is not None:
            return join_est.exact
        group_est = self.group_estimators.get(id(op))
        if group_est is not None:
            return group_est.exact
        return False

    def max_multiplicities(self) -> dict[int, float]:
        """Observed build-side maximum multiplicities per join, for
        upper-bound refinement of future-pipeline estimates."""
        result: dict[int, float] = {}
        for chain in self.chain_estimators:
            result.update(chain.max_build_multiplicity)
        for op_id, est in self.join_estimators.items():
            result[op_id] = float(est.histogram.max_multiplicity())
        return result

    def describe(self) -> str:
        """Human-readable attachment report."""
        lines = []
        for chain in self.chain_estimators:
            names = " -> ".join(j.describe() for j in chain.chain)
            lines.append(f"chain[{chain.k}]: {names}")
        for op_id, est in self.join_estimators.items():
            lines.append(f"binary once: join@{op_id}")
        for op_id, est in self.group_estimators.items():
            mode = "pushed-down" if est.pushed_down else "direct"
            lines.append(f"group-count ({mode}): aggregate@{op_id}")
        for op, reason in self.fallbacks:
            lines.append(f"dne fallback: {op.describe()} ({reason})")
        return "\n".join(lines)
