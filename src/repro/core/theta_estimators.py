"""Online estimation for inequality ("theta") join predicates.

Section 4.1.1 notes that "similar estimators can be constructed for other
kinds of join predicates (e.g., R.x > S.y)". The construction: the
preprocessing pass over the inner input collects its join-column values
into a *sorted* array (the order-statistics analogue of the equality
histogram); each streaming outer tuple then contributes, via one binary
search, the exact number of inner rows it joins with:

    contribution(v) = #{y in inner : v <op> y}

so the running estimate ``mean_t(contribution) × |outer|`` is unbiased on
randomly ordered outer input and exact once the outer stream has been fully
seen. For a plain nested-loops join the convergence *timing* matches the
driver-node estimator (there is no preprocessing pass over the outer
input), but the estimator adds what dne lacks: per-tuple contributions with
an online confidence interval, and immunity to the inner side's order.
"""

from __future__ import annotations

import bisect

from repro.common.errors import EstimationError
from repro.core.confidence import MeanEstimateInterval
from repro.core.join_estimators import TotalProvider, resolve_stream_total
from repro.executor.operators.nested_loops import NestedLoopsJoin

__all__ = ["OnceThetaJoinEstimator", "attach_theta_estimator"]

_OPS = ("<", "<=", ">", ">=")


class OnceThetaJoinEstimator:
    """Join-size estimator for ``outer <op> inner`` comparison predicates."""

    def __init__(
        self,
        op: str,
        outer_total: float | TotalProvider | None = None,
        record_every: int = 0,
    ):
        if op not in _OPS:
            raise EstimationError(f"unsupported comparison {op!r}; one of {_OPS}")
        self.op = op
        self.inner_values: list = []
        self._frozen = False
        self.t = 0
        self.sum_counts = 0
        self.exact = False
        self.record_every = record_every
        self.history: list[tuple[int, float]] = []
        self._interval = MeanEstimateInterval()
        if outer_total is None:
            self._outer_total: TotalProvider | None = None
        elif callable(outer_total):
            self._outer_total = outer_total
        else:
            total = float(outer_total)
            self._outer_total = lambda: total

    # -- stream callbacks ---------------------------------------------------------

    def on_inner(self, value: object) -> None:
        """One inner tuple during the materialisation pass."""
        if self._frozen:
            raise EstimationError("inner side already frozen")
        if value is not None:
            self.inner_values.append(value)

    def freeze_inner(self) -> None:
        """Inner pass complete: sort once, ready for O(log n) queries."""
        self.inner_values.sort()
        self._frozen = True

    def contribution(self, value: object) -> int:
        """Exact number of inner rows joining with this outer value."""
        if not self._frozen:
            self.freeze_inner()
        if value is None:
            return 0
        values = self.inner_values
        if self.op == ">":
            return bisect.bisect_left(values, value)
        if self.op == ">=":
            return bisect.bisect_right(values, value)
        if self.op == "<":
            return len(values) - bisect.bisect_right(values, value)
        return len(values) - bisect.bisect_left(values, value)  # <=

    def on_outer(self, value: object) -> None:
        c = self.contribution(value)
        self.t += 1
        self.sum_counts += c
        self._interval.observe(c)
        if self.record_every and self.t % self.record_every == 0:
            self.history.append((self.t, self.current_estimate()))

    def finalize(self) -> None:
        self.exact = True

    # -- estimates ---------------------------------------------------------------

    @property
    def outer_total(self) -> float:
        if self._outer_total is not None:
            return float(self._outer_total())
        return float(max(self.t, 1))

    def current_estimate(self) -> float:
        if self.exact:
            return float(self.sum_counts)
        if self.t == 0:
            return 0.0
        return self.sum_counts / self.t * self.outer_total

    def confidence_interval(self, alpha: float = 0.99) -> tuple[float, float]:
        if self.exact:
            return (float(self.sum_counts), float(self.sum_counts))
        if self.t == 0:
            return (0.0, float("inf"))
        total = self.outer_total
        return self._interval.interval(total, alpha, population=total)


def attach_theta_estimator(
    join: NestedLoopsJoin,
    outer_column: str,
    inner_column: str,
    op: str,
    record_every: int = 0,
) -> OnceThetaJoinEstimator:
    """Wire a theta estimator onto a nested-loops join's hooks.

    ``outer_column`` / ``inner_column`` are resolved against the respective
    child schemas; ``op`` compares outer to inner (``outer <op> inner``).
    """
    estimator = OnceThetaJoinEstimator(
        op,
        outer_total=resolve_stream_total(join.outer_child),
        record_every=record_every,
    )
    inner_idx = join.inner_child.output_schema.index_of(inner_column)
    outer_idx = join.outer_child.output_schema.index_of(outer_column)
    join.inner_input_hooks.append(lambda row: estimator.on_inner(row[inner_idx]))
    join.outer_hooks.append(lambda row: estimator.on_outer(row[outer_idx]))

    def on_phase(_op, phase: str) -> None:
        if phase == "loop":
            estimator.freeze_inner()
        elif phase == "done" and not estimator.exact:
            estimator.finalize()

    join.phase_hooks.append(on_phase)
    return estimator
