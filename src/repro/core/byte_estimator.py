"""The byte-model estimator of Luo et al. [18] — baseline.

Luo et al. measure work as bytes processed at segment boundaries and refine
cardinality estimates by *blending* the optimizer's original estimate with
the observation-scaled one, weighted by how much of the segment's driving
input has been consumed:

    N̂_i = α · (K_i / α) + (1 - α) · opt_i  =  K_i + (1 - α) · opt_i

where α is the driver fraction consumed. Early in the pipeline the
optimizer estimate dominates; it is only fully discarded when the input has
been fully consumed — hence "the byte estimator imposes a weighted average
operation involving the original cardinality estimate, and so it converges
slowly to the correct answer" (Figure 4 discussion). It also inherits
dne's sensitivity to the partition-wise reordering of hybrid hash joins,
since K_i is observed after the reordering boundary.

For byte-based progress itself, multiply per-operator counts by
:meth:`Schema.row_width_bytes`; under the getnext model the two progress
measures are related by fixed per-operator constants, so ratio-error
comparisons are unaffected (Section 2 of the paper makes the same point).
"""

from __future__ import annotations

from repro.core.dne import DriverNodeEstimator
from repro.executor.operators.base import Operator
from repro.executor.pipeline import Pipeline

__all__ = ["ByteModelEstimator"]


class ByteModelEstimator:
    """Byte-model estimates for every operator of one pipeline."""

    def __init__(self, pipeline: Pipeline):
        self.pipeline = pipeline
        self._dne = DriverNodeEstimator(pipeline)

    @property
    def driver_progress(self) -> float:
        return self._dne.driver_progress

    def estimate_for(self, op: Operator) -> float:
        if op.is_exhausted:
            return float(op.tuples_emitted)
        if op is self._dne.driver:
            return self._dne.estimate_for(op)
        alpha = self.driver_progress
        optimizer = (
            float(op.estimated_cardinality)
            if op.estimated_cardinality is not None
            else float(op.tuples_emitted)
        )
        if alpha <= 0.0:
            return optimizer
        scaled = op.tuples_emitted / alpha
        blended = alpha * scaled + (1.0 - alpha) * optimizer
        return max(blended, float(op.tuples_emitted))

    def estimates(self) -> dict[Operator, float]:
        return {op: self.estimate_for(op) for op in self.pipeline.operators}

    @staticmethod
    def bytes_emitted(op: Operator) -> int:
        """Bytes processed at this operator's output, under the byte model."""
        return op.tuples_emitted * op.output_schema.row_width_bytes()
