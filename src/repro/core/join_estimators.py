"""ONCE: online cardinality estimation for binary joins (Sections 4.1.1-4.1.3).

The estimator in one paragraph: during the preprocessing pass over one input
R (hash-join build pass, first sort of a sort-merge join, index build of an
index NL join) maintain an exact frequency histogram ``N^R``. Then, as the
other input S streams by *in its original random order* (hash-join probe
partitioning pass, second sort, outer scan), update

    D_{t+1} = (D_t · t + N^R[key_{t+1}] · |S|) / (t + 1)

i.e. ``D_t = |S| × mean_t(N^R[key])`` — one histogram lookup and two adds
per probe tuple, no second histogram, no bucket-by-bucket multiply. The
estimate is unbiased at every t, its confidence interval shrinks as
1/sqrt(t), and when the pass completes (t = |S|) it equals the exact join
cardinality — *before* any actual joining has happened.

:class:`OnceJoinEstimator` implements the arithmetic;
:func:`attach_once_estimator` wires it onto a concrete operator's hooks.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Sequence

from repro.common.errors import EstimationError
from repro.core.confidence import MeanEstimateInterval, binomial_beta
from repro.core.histogram import FrequencyHistogram
from repro.executor.operators.base import Operator
from repro.executor.operators.filter import Filter
from repro.executor.operators.hash_join import HashJoin
from repro.executor.operators.limit import Limit
from repro.executor.operators.materialize import Materialize
from repro.executor.operators.merge_join import SortMergeJoin
from repro.executor.operators.nested_loops import IndexNestedLoopsJoin
from repro.executor.operators.project import Project
from repro.executor.operators.scan import IndexScan, SampleScan, SeqScan
from repro.executor.operators.sort import Sort

__all__ = [
    "OnceJoinEstimator",
    "attach_once_estimator",
    "resolve_stream_total",
]

TotalProvider = Callable[[], float]


def resolve_stream_total(op: Operator) -> TotalProvider:
    """Best-available total-cardinality provider for a tuple stream.

    * scans: exact (catalog row counts);
    * selections: scan total × observed selectivity — the driver-node rule
      the paper prescribes for selections (zero error in expectation on
      random input, refined as the scan advances);
    * pass-through operators: delegate to the child;
    * anything else: the optimizer estimate annotated on the node, refined
      to the observed count once the node is exhausted.
    """
    if isinstance(op, (SeqScan, SampleScan, IndexScan)):
        total = float(op.total_rows)
        return lambda: total
    if isinstance(op, Filter):
        child_total = resolve_stream_total(op.child)
        return lambda: child_total() * op.observed_selectivity
    if isinstance(op, (Project, Sort, Materialize)):
        return resolve_stream_total(op.children()[0])
    if isinstance(op, Limit):
        child_total = resolve_stream_total(op.child)
        n = float(op.n)
        return lambda: min(n, child_total())

    def fallback() -> float:
        if op.is_exhausted:
            return float(op.tuples_emitted)
        if op.estimated_cardinality is not None:
            return float(op.estimated_cardinality)
        return float(max(op.tuples_emitted, 1))

    return fallback


class OnceJoinEstimator:
    """Incremental join-size estimator over one build histogram.

    Parameters
    ----------
    probe_total:
        ``|S|``: the probe stream's total size — a number, or a provider
        re-evaluated at each estimate (e.g. a selection whose selectivity
        is still being observed).
    record_every:
        If > 0, append ``(t, estimate)`` to :attr:`history` every that many
        probe tuples (used by the accuracy benchmarks).
    join_type:
        Join semantics; changes only the per-probe-tuple contribution
        (Section 4.1.1, "similar estimators can be constructed for
        semijoins and various kinds of outerjoins"):

        * ``inner`` — ``N^R[key]``;
        * ``semi``  — ``1`` if ``N^R[key] > 0`` else ``0``;
        * ``anti``  — ``1`` if ``N^R[key] == 0`` else ``0``;
        * ``outer`` — ``max(N^R[key], 1)`` (probe-preserving).
    histogram:
        Optionally inject the build histogram (e.g. a bucketized
        approximation trading accuracy for memory; see
        :class:`repro.core.histogram.BucketizedHistogram`).
    """

    __slots__ = (
        "join_type",
        "histogram",
        "sum_counts",
        "t",
        "exact",
        "record_every",
        "history",
        "_interval",
        "_probe_total",
    )

    def __init__(
        self,
        probe_total: float | TotalProvider | None = None,
        record_every: int = 0,
        join_type: str = "inner",
        histogram=None,
    ):
        if join_type not in ("inner", "semi", "anti", "outer"):
            raise EstimationError(f"unsupported join type {join_type!r}")
        self.join_type = join_type
        self.histogram = histogram if histogram is not None else FrequencyHistogram()
        self.sum_counts: int = 0
        self.t: int = 0
        self.exact: bool = False
        self.record_every = record_every
        self.history: list[tuple[int, float]] = []
        self._interval = MeanEstimateInterval()
        if probe_total is None:
            self._probe_total: TotalProvider | None = None
        elif callable(probe_total):
            self._probe_total = probe_total
        else:
            total = float(probe_total)
            self._probe_total = lambda: total

    # -- stream callbacks ---------------------------------------------------------

    def on_build(self, key: object, row: tuple | None = None) -> None:
        """One build-side tuple: count its key."""
        if key is not None:
            self.histogram.add(key)

    def on_probe(self, key: object, row: tuple | None = None) -> None:
        """One probe-side tuple: refine the estimate."""
        c = self._contribution(key)
        self.t += 1
        self.sum_counts += c
        self._interval.observe(c)
        if self.record_every and self.t % self.record_every == 0:
            self.history.append((self.t, self.current_estimate()))

    # -- batch twins (see operators.base, "Batch-aggregated hooks") ---------------

    def on_build_batch(self, keys: Sequence[object], rows: Sequence | None = None) -> None:
        """A build-side batch: count every non-None key in one bulk add."""
        self.histogram.add_batch(keys)

    def on_probe_batch(self, keys: Sequence[object], rows: Sequence | None = None) -> None:
        """A probe-side batch: refine the estimate in one aggregated step.

        The running-mean refinement only needs Σc and t, so the batch is
        aggregated with one Counter and applied as ``sum_counts += Σc_i,
        t += k`` — one histogram lookup per *distinct* key. All sums are
        integer arithmetic, so the resulting (t, sum_counts, interval)
        state is bit-identical to k :meth:`on_probe` calls. When
        ``record_every`` is set, the batch is split at every checkpoint
        boundary it jumps over (mirroring ``tick_n``'s boundary semantics)
        so history entries land on exactly the same t values, computed from
        exactly the per-tuple prefix state.
        """
        n = len(keys)
        if not n:
            return
        rec = self.record_every
        if not rec:
            self._apply_probe_batch(keys)
            return
        start = 0
        while start < n:
            end = min(n, start + rec - self.t % rec)
            segment = keys if not start and end == n else keys[start:end]
            self._apply_probe_batch(segment)
            if self.t % rec == 0:
                self.history.append((self.t, self.current_estimate()))
            start = end

    def _apply_probe_batch(self, keys: Sequence[object]) -> None:
        contribution = self._contribution
        batch_sum = 0
        batch_sq = 0
        for key, count in Counter(keys).items():
            c = contribution(key)
            if c:
                batch_sum += c * count
                batch_sq += c * c * count
        self.t += len(keys)
        self.sum_counts += batch_sum
        self._interval.merge_sums(len(keys), batch_sum, batch_sq)

    on_build.batch_hook_name = "on_build_batch"
    on_probe.batch_hook_name = "on_probe_batch"

    def _contribution(self, key: object) -> int:
        """Output rows this probe tuple generates, under the join type."""
        count = self.histogram.count(key) if key is not None else 0
        if self.join_type == "inner":
            return count
        if self.join_type == "semi":
            return 1 if count else 0
        if self.join_type == "anti":
            return 0 if count else 1
        return count if count else 1  # outer

    def finalize_probe(self) -> None:
        """The probe pass completed: the estimate is now exact."""
        self.exact = True
        if self.record_every:
            self.history.append((self.t, float(self.sum_counts)))

    # -- estimates ---------------------------------------------------------------

    @property
    def probe_total(self) -> float:
        if self._probe_total is not None:
            return float(self._probe_total())
        # No external knowledge: the tuples seen are all we can assume.
        return float(max(self.t, 1))

    def current_estimate(self) -> float:
        """Current D_t (exact once the probe pass has completed)."""
        if self.exact:
            return float(self.sum_counts)
        if self.t == 0:
            return 0.0
        return self.sum_counts / self.t * self.probe_total

    def confidence_interval(self, alpha: float = 0.99) -> tuple[float, float]:
        """Empirical-variance interval for the join size."""
        if self.exact:
            exact = float(self.sum_counts)
            return (exact, exact)
        total = self.probe_total
        if self.t == 0:
            return (0.0, float("inf"))
        return self._interval.interval(total, alpha, population=total)

    def worst_case_beta(self, alpha: float = 0.99) -> float:
        """The paper's distribution-free per-value half-width β."""
        return binomial_beta(self.t, alpha)

    @property
    def build_distinct(self) -> int:
        return self.histogram.num_distinct


def attach_once_estimator(
    join: Operator,
    probe_total: float | TotalProvider | None = None,
    record_every: int = 0,
) -> OnceJoinEstimator:
    """Create an :class:`OnceJoinEstimator` and hook it onto ``join``.

    Supported operators and their (build pass, probe pass) mapping:

    * :class:`HashJoin` — (build pass, probe/partition pass);
    * :class:`SortMergeJoin` — (left sort, right sort); raises
      :class:`EstimationError` when either input is presorted, since then
      no preprocessing pass sees that input and the paper defaults to dne;
    * :class:`IndexNestedLoopsJoin` — (index build, outer scan).

    The estimator freezes to its exact value when the probe-side pass ends
    (phase transition), not when the join finishes.
    """
    estimator = OnceJoinEstimator(probe_total=probe_total, record_every=record_every)

    if isinstance(join, HashJoin):
        # Multi-column keys work identically on tuple keys; the hooks pass
        # the composite key through unchanged.
        estimator.join_type = join.join_type
        join.build_hooks.append(estimator.on_build)
        join.probe_hooks.append(estimator.on_probe)
        if probe_total is None:
            estimator._probe_total = resolve_stream_total(join.probe_child)
        _finalize_on_phase(join, estimator, {"join", "done"})
        return estimator

    if isinstance(join, SortMergeJoin):
        if join.left_presorted or join.right_presorted:
            raise EstimationError(
                "presorted merge-join inputs have no preprocessing pass; "
                "use the driver-node estimator instead"
            )
        join.left_input_hooks.append(estimator.on_build)
        join.right_input_hooks.append(estimator.on_probe)
        if probe_total is None:
            estimator._probe_total = resolve_stream_total(join.right_child)
        _finalize_on_phase(join, estimator, {"merge", "done"})
        return estimator

    if isinstance(join, IndexNestedLoopsJoin):
        join.inner_input_hooks.append(estimator.on_build)
        join.outer_hooks.append(estimator.on_probe)
        if probe_total is None:
            estimator._probe_total = resolve_stream_total(join.outer_child)
        _finalize_on_phase(join, estimator, {"done"})
        return estimator

    raise EstimationError(
        f"no ONCE estimator for operator {type(join).__name__}; "
        "nested-loops joins and selections use the driver-node estimator"
    )


def _finalize_on_phase(
    join: Operator, estimator: OnceJoinEstimator, final_phases: set[str]
) -> None:
    def on_phase(_op: Operator, phase: str) -> None:
        if phase in final_phases and not estimator.exact:
            estimator.finalize_probe()

    join.phase_hooks.append(on_phase)
