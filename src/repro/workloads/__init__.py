"""Canned workloads: the exact query/data setups of the paper's evaluation."""

from repro.workloads.queries import (
    PipelineSetup,
    QuerySetup,
    paper_binary_join,
    paper_pipeline_diff_attr,
    paper_pipeline_same_attr,
    paper_pkfk_join_with_selection,
    tpch_q8_like,
)

__all__ = [
    "PipelineSetup",
    "QuerySetup",
    "paper_binary_join",
    "paper_pipeline_diff_attr",
    "paper_pipeline_same_attr",
    "paper_pkfk_join_with_selection",
    "tpch_q8_like",
]
