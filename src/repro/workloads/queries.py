"""Query/data setups mirroring Section 5 of the paper.

Each builder returns a :class:`QuerySetup` (or :class:`PipelineSetup` for
join chains): the physical plan, the catalog holding the generated tables,
and handles to the operators of interest. Row counts default to the paper's
(150K-row customer tables, TPC-H scale factors) but every builder takes a
``num_rows``/``sf`` knob so tests can run the same shapes at toy scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.skew import (
    PAPER_CUSTOMER_ROWS,
    customer_variant,
    customer_variant_with_custkey,
)
from repro.datagen.tpch import generate_tpch
from repro.executor.expressions import col, lit
from repro.executor.operators import (
    AggregateSpec,
    Filter,
    HashAggregate,
    HashJoin,
    SampleScan,
    SeqScan,
)
from repro.executor.operators.base import Operator
from repro.executor.operators.hash_join import HashJoin as _HashJoin
from repro.optimizer.cardinality import annotate_plan
from repro.storage.catalog import Catalog
from repro.storage.table import Table

__all__ = [
    "PipelineSetup",
    "QuerySetup",
    "paper_binary_join",
    "paper_pipeline_diff_attr",
    "paper_pipeline_same_attr",
    "paper_pkfk_join_with_selection",
    "tpch_q8_like",
]


@dataclass
class QuerySetup:
    """A ready-to-run query plan plus its context."""

    plan: Operator
    catalog: Catalog
    description: str
    joins: list[_HashJoin] = field(default_factory=list)

    @property
    def join(self) -> _HashJoin:
        return self.joins[-1]


@dataclass
class PipelineSetup(QuerySetup):
    """A hash-join chain setup; ``joins`` is bottom-up."""

    @property
    def lower_join(self) -> _HashJoin:
        return self.joins[0]

    @property
    def upper_join(self) -> _HashJoin:
        return self.joins[-1]


def _scan(table: Table, sample_fraction: float, seed: int) -> Operator:
    if sample_fraction > 0:
        return SampleScan(table, sample_fraction, seed)
    return SeqScan(table)


def paper_binary_join(
    z: float,
    domain_size: int,
    num_rows: int = PAPER_CUSTOMER_ROWS,
    sample_fraction: float = 0.0,
    seed: int = 42,
    num_partitions: int = 8,
    memory_partitions: int = 1,
) -> QuerySetup:
    """Figures 3/4(a): ``C_{z,n} ⋈ C¹_{z,n}`` on nationkey.

    Two customer tables with identical skew but independently permuted
    frequency assignments — the worst case where "the values with a high
    frequency in one table may have a low frequency in another".
    The first variant is the build input, the second the probe input.
    """
    catalog = Catalog()
    build_table = catalog.register(
        customer_variant(z, domain_size, 0, num_rows, seed, name="cust_build")
    )
    probe_table = catalog.register(
        customer_variant(z, domain_size, 1, num_rows, seed, name="cust_probe")
    )
    join = HashJoin(
        _scan(build_table, sample_fraction, seed),
        _scan(probe_table, sample_fraction, seed + 1),
        "cust_build.nationkey",
        "cust_probe.nationkey",
        num_partitions=num_partitions,
        memory_partitions=memory_partitions,
    )
    annotate_plan(join, catalog)
    return QuerySetup(
        plan=join,
        catalog=catalog,
        description=f"C_{{{z},{domain_size}}} join C1_{{{z},{domain_size}}}",
        joins=[join],
    )


def paper_pkfk_join_with_selection(
    z: float = 1.0,
    domain_size: int = 125_000,
    num_rows: int = PAPER_CUSTOMER_ROWS,
    selection_cutoff: int = 50_000,
    sample_fraction: float = 0.0,
    seed: int = 42,
    num_partitions: int = 8,
    memory_partitions: int = 1,
) -> QuerySetup:
    """Figure 4(b): primary-key/foreign-key join between a skewed customer
    table and its nation table, with the selection ``nationkey < cutoff``.

    The "nation" side here is the PK relation: one row per domain value
    (the paper widened nationkey's domain, so its nation table has one row
    per key in [1..domain]).
    """
    catalog = Catalog()
    customer = catalog.register(
        customer_variant(z, domain_size, 0, num_rows, seed, name="customer_sk")
    )
    nation_rows = ((k, f"NATION#{k}") for k in range(1, domain_size + 1))
    from repro.storage.schema import Schema

    nation = catalog.register(
        Table("nation_wide", Schema.of("nationkey:int", "name:str"), nation_rows)
    )
    probe = Filter(
        _scan(customer, sample_fraction, seed),
        col("customer_sk.nationkey") < lit(selection_cutoff),
    )
    join = HashJoin(
        _scan(nation, sample_fraction, seed + 1),
        probe,
        "nation_wide.nationkey",
        "customer_sk.nationkey",
        num_partitions=num_partitions,
        memory_partitions=memory_partitions,
    )
    annotate_plan(join, catalog)
    return QuerySetup(
        plan=join,
        catalog=catalog,
        description=(
            f"nation ⋈ σ(nationkey<{selection_cutoff}) C_{{{z},{domain_size}}}"
        ),
        joins=[join],
    )


def paper_pipeline_same_attr(
    z: float,
    domain_size: int = 5_000,
    num_rows: int = PAPER_CUSTOMER_ROWS,
    sample_fraction: float = 0.0,
    seed: int = 42,
    num_partitions: int = 8,
    memory_partitions: int = 1,
) -> PipelineSetup:
    """Figure 5: ``C_{z,n} ⋈ C¹_{z,n} ⋈ C²_{z,n}``, all on nationkey.

    Plan shape: upper(build=C, probe=lower(build=C¹, probe=C²)) — a
    two-join pipeline whose joins share the join attribute.
    """
    catalog = Catalog()
    c0 = catalog.register(customer_variant(z, domain_size, 0, num_rows, seed, name="c0"))
    c1 = catalog.register(customer_variant(z, domain_size, 1, num_rows, seed, name="c1"))
    c2 = catalog.register(customer_variant(z, domain_size, 2, num_rows, seed, name="c2"))
    lower = HashJoin(
        _scan(c1, sample_fraction, seed + 1),
        _scan(c2, sample_fraction, seed + 2),
        "c1.nationkey",
        "c2.nationkey",
        num_partitions=num_partitions,
        memory_partitions=memory_partitions,
    )
    upper = HashJoin(
        _scan(c0, sample_fraction, seed),
        lower,
        "c0.nationkey",
        "c1.nationkey",
        num_partitions=num_partitions,
        memory_partitions=memory_partitions,
    )
    annotate_plan(upper, catalog)
    return PipelineSetup(
        plan=upper,
        catalog=catalog,
        description=f"same-attribute pipeline, z={z}, domain={domain_size}",
        joins=[lower, upper],
    )


def paper_pipeline_diff_attr(
    case: int,
    lower_z: float,
    upper_z: float,
    domain_size: int = 25_000,
    num_rows: int = PAPER_CUSTOMER_ROWS,
    sample_fraction: float = 0.0,
    seed: int = 42,
    num_partitions: int = 8,
    memory_partitions: int = 1,
) -> PipelineSetup:
    """Figure 6: two-join pipeline on *different* attributes.

    All three relations have both custkey and nationkey skewed over the
    same ``domain_size`` (the paper replaces the custkey primary key with a
    skewed column). The lower join is on nationkey with skew ``lower_z``;
    the upper join is on custkey with skew ``upper_z`` and joins the upper
    build input A with:

    * case 1 — the *probe* relation C of the lower join (``A.ck = C.ck``);
    * case 2 — the *build* relation B of the lower join (``A.ck = B.ck``),
      which requires the derived-histogram simulation of Section 4.1.4.2.
    """
    if case not in (1, 2):
        raise ValueError(f"case must be 1 or 2, got {case}")
    catalog = Catalog()
    a = catalog.register(
        customer_variant_with_custkey(
            lower_z, upper_z, domain_size, 0, num_rows, seed, name="rel_a"
        )
    )
    b = catalog.register(
        customer_variant_with_custkey(
            lower_z, upper_z, domain_size, 1, num_rows, seed, name="rel_b"
        )
    )
    c = catalog.register(
        customer_variant_with_custkey(
            lower_z, upper_z, domain_size, 2, num_rows, seed, name="rel_c"
        )
    )
    lower = HashJoin(
        _scan(b, sample_fraction, seed + 1),
        _scan(c, sample_fraction, seed + 2),
        "rel_b.nationkey",
        "rel_c.nationkey",
        num_partitions=num_partitions,
        memory_partitions=memory_partitions,
    )
    probe_key = "rel_c.custkey" if case == 1 else "rel_b.custkey"
    upper = HashJoin(
        _scan(a, sample_fraction, seed),
        lower,
        "rel_a.custkey",
        probe_key,
        num_partitions=num_partitions,
        memory_partitions=memory_partitions,
    )
    annotate_plan(upper, catalog)
    return PipelineSetup(
        plan=upper,
        catalog=catalog,
        description=(
            f"diff-attribute pipeline case {case}, lower z={lower_z}, "
            f"upper z={upper_z}, domain={domain_size}"
        ),
        joins=[lower, upper],
    )


def tpch_q8_like(
    sf: float = 0.01,
    skew_z: float = 2.0,
    sample_fraction: float = 0.1,
    seed: int = 42,
    num_partitions: int = 8,
    memory_partitions: int = 1,
    catalog: Catalog | None = None,
    with_filters: bool = True,
) -> QuerySetup:
    """Figure 8: an 8-table join in the spirit of TPC-H Q8, plus aggregation.

    lineitem is the probe stream of a single pipeline of 7 hash joins
    (part, supplier, orders, customer, nation n1, region, nation n2),
    topped by a GROUP BY on the supplier nation. With ``with_filters``
    (Q8's dimension predicates: a part-type filter, a region filter, an
    order-date range) the optimizer's independence/uniformity assumptions
    misestimate the filtered joins badly on Zipf-skewed foreign keys —
    skewed partkeys concentrate lineitems on few parts, so "part of type X"
    retains a very non-proportional share of the join. The online framework
    corrects every join during lineitem's probe pass.
    """
    if catalog is None:
        catalog = generate_tpch(sf=sf, seed=seed, skew_z=skew_z)
    nation = catalog.table("nation")
    catalog.register(nation.aliased("n1"))
    catalog.register(nation.aliased("n2"))

    def scan(name: str) -> Operator:
        return _scan(catalog.table(name), sample_fraction, seed)

    filters = {}
    if with_filters:
        # The part filter keeps ~2% of parts by key range; with unpermuted
        # Zipf foreign keys those are exactly the hot parts, so the true
        # join cardinality vastly exceeds the optimizer's uniform estimate.
        part_cutoff = max(catalog.row_count("part") // 50, 1)
        # Q8 restricts to one region; pick the region of the most popular
        # customer nation so the query is non-empty on any seed/skew.
        from collections import Counter

        hot_nation = Counter(
            catalog.table("customer").column_values("nationkey")
        ).most_common(1)[0][0]
        nation_region = {
            r[0]: r[2] for r in catalog.table("nation").rows()
        }  # nationkey -> regionkey
        filters = {
            "part": col("part.partkey") <= lit(part_cutoff),
            "region": col("region.regionkey") == lit(nation_region[hot_nation]),
            "orders": col("orders.orderdate") < lit(19960101),
        }

    def filtered_scan(name: str) -> Operator:
        base = scan(name)
        predicate = filters.get(name)
        return Filter(base, predicate) if predicate is not None else base

    plan: Operator = scan("lineitem")
    joins: list[_HashJoin] = []

    def add_join(table: str, probe_key: str, build_key: str) -> None:
        nonlocal plan
        join = HashJoin(
            filtered_scan(table),
            plan,
            build_key,
            probe_key,
            num_partitions=num_partitions,
            memory_partitions=memory_partitions,
        )
        joins.append(join)
        plan = join

    add_join("part", "lineitem.partkey", "part.partkey")
    add_join("supplier", "lineitem.suppkey", "supplier.suppkey")
    add_join("orders", "lineitem.orderkey", "orders.orderkey")
    add_join("customer", "orders.custkey", "customer.custkey")
    add_join("n1", "customer.nationkey", "n1.nationkey")
    add_join("region", "n1.regionkey", "region.regionkey")
    add_join("n2", "supplier.nationkey", "n2.nationkey")

    plan = HashAggregate(
        plan,
        ["n2.name"],
        [
            AggregateSpec("count", alias="order_count"),
            AggregateSpec("sum", "lineitem.extendedprice", alias="volume"),
        ],
    )
    annotate_plan(plan, catalog)
    return QuerySetup(
        plan=plan,
        catalog=catalog,
        description=f"TPC-H Q8-like 8-table join, sf={sf}, z={skew_z}",
        joins=joins,
    )
