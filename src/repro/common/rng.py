"""Seeded randomness helpers.

Every stochastic component of the library (data generation, block sampling,
shuffles) takes an explicit seed so experiments are reproducible run to run.
``derive_seed`` deterministically maps a parent seed plus a string label to a
child seed, which lets independent components (e.g. two table generators)
draw from decorrelated streams without coordinating.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "make_rng"]


def derive_seed(seed: int, *labels: object) -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    The derivation hashes the parent seed together with the string form of
    each label, so distinct labels yield (with overwhelming probability)
    distinct, decorrelated child seeds, and the same inputs always yield the
    same output.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode())
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "little")


def make_rng(seed: int, *labels: object) -> np.random.Generator:
    """Create a numpy ``Generator`` seeded from ``seed`` and optional labels."""
    if labels:
        seed = derive_seed(seed, *labels)
    return np.random.default_rng(seed)
