"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or a column reference cannot be resolved."""


class CatalogError(ReproError):
    """A table or statistic is missing from the catalog."""


class PlanError(ReproError):
    """A query plan is structurally invalid (e.g. arity mismatch, cycles)."""


class ExecutorError(ReproError):
    """An operator was driven through an illegal state transition."""


class EstimationError(ReproError):
    """An estimator was queried before it had the inputs it requires."""
