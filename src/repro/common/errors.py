"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at the API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or a column reference cannot be resolved."""


class CatalogError(ReproError):
    """A table or statistic is missing from the catalog."""


class PlanError(ReproError):
    """A query plan is structurally invalid (e.g. arity mismatch, cycles)."""


class AnalysisError(PlanError):
    """Static analysis rejected a plan before execution.

    Subclasses :class:`PlanError` so callers that already guard compilation
    with ``except PlanError`` also see strict-mode analyzer failures. The
    offending :class:`~repro.analysis.diagnostics.DiagnosticReport` rides
    along as ``report``.
    """

    def __init__(self, message: str, report: object | None = None):
        super().__init__(message)
        self.report = report


class ExecutorError(ReproError):
    """An operator was driven through an illegal state transition."""


class EstimationError(ReproError):
    """An estimator was queried before it had the inputs it requires."""
