"""Lock-discipline annotations and debug-mode runtime ownership asserts.

Since the server subsystem landed, the correctness of concurrent progress
snapshots rests on one convention: every read or write of estimator and
session state happens under the TickBus-carried sampling RLock (or the
owning component's private lock). This module turns that convention into
*declarations* that the static analyzer (:mod:`repro.analysis.concurrency`)
machine-checks, plus a runtime cross-check that validates the static model
while the test suite actually runs threads.

Annotation model
----------------
Three decorators mark the locking contract of a method. All are inert at
runtime — they attach metadata attributes and return the function
unchanged, so annotated hot paths cost nothing:

* ``@guarded_by("lock_attr")`` — the *caller* must hold the named lock
  when invoking this method. The analyzer proves the lock is held at every
  resolvable call site (diagnostic X002) and treats it as held inside the
  body.
* ``@holds_lock("lock_attr")`` — the method is axiomatically entered with
  the lock held *by construction* (e.g. a TickBus callback, which only
  ever fires from inside a pull that owns the sampling lock). Call sites
  are not checked — that is the difference from ``guarded_by`` — but the
  body is analyzed with the lock held, and :func:`assert_owned` validates
  the axiom at runtime in debug mode.
* ``@acquires("lock_attr")`` — the method takes (and releases) the named
  lock internally. Callers need not hold it; the analyzer feeds these
  declarations into the lock-acquisition-order graph (deadlock detection,
  X004) when such a method is called while other locks are held.

Lock attribute names are dotted paths relative to ``self`` — ``"_lock"``,
``"bus.lock"`` — resolved through the analyzer's class registry.

Fields are guarded through class-attribute registries (read by the
analyzer from the AST; inert dictionaries at runtime):

* ``_guarded_by_ = {"field": "lock_attr"}`` — every read *and* write of
  the field outside ``__init__`` must happen under the lock (X001).
* ``_write_guarded_by_ = {"field": "lock_attr"}`` — writes require the
  lock; lock-free reads are sanctioned. This expresses the repo's
  immutable-snapshot pattern: a field that only ever holds immutable
  values (a tuple of callbacks, a frozen snapshot) is swapped under the
  lock and read without it.
* ``_critical_locks_ = ("lock_attr",)`` — marks a lock as *critical*: the
  analyzer forbids blocking calls while it is held (X005). The TickBus
  sampling lock is the canonical critical lock — sleeping or stepping a
  session while holding it would stall every concurrent snapshot.

Runtime cross-check
-------------------
:func:`assert_owned` is a no-op unless the environment variable
``REPRO_LOCK_ASSERTS`` is ``"1"``. With asserts enabled, it raises
:class:`LockAssertionError` when the calling thread does not own the lock
— called from ``ProgressMonitor`` sampling and ``QuerySession`` stepping,
it validates exactly the ``guarded_by``/``holds_lock`` axioms the static
analyzer takes on trust.
"""

from __future__ import annotations

import os
from typing import Callable, TypeVar

__all__ = [
    "LockAssertionError",
    "acquires",
    "assert_owned",
    "asserts_enabled",
    "guarded_by",
    "holds_lock",
]

_F = TypeVar("_F", bound=Callable)

#: Environment variable gating the runtime ownership asserts.
ASSERTS_ENV = "REPRO_LOCK_ASSERTS"


class LockAssertionError(RuntimeError):
    """A debug-mode lock-ownership assert failed: the static locking model
    and the runtime disagree. This is always a bug — either a caller
    reached guarded state without the lock, or an annotation is wrong."""


def _annotate(attr: str, specs: tuple[str, ...]) -> Callable[[_F], _F]:
    if not specs or not all(isinstance(s, str) and s for s in specs):
        raise ValueError(f"{attr} requires at least one non-empty lock attribute name")

    def decorate(fn: _F) -> _F:
        merged = getattr(fn, attr, ()) + specs
        setattr(fn, attr, merged)
        return fn

    return decorate


def guarded_by(*lock_attrs: str) -> Callable[[_F], _F]:
    """Declare that callers must hold the named lock(s) (checked: X002)."""
    return _annotate("__guarded_by__", lock_attrs)


def holds_lock(*lock_attrs: str) -> Callable[[_F], _F]:
    """Declare the method runs with the lock(s) held by construction."""
    return _annotate("__holds_lock__", lock_attrs)


def acquires(*lock_attrs: str) -> Callable[[_F], _F]:
    """Declare the method acquires (and releases) the lock(s) internally."""
    return _annotate("__acquires__", lock_attrs)


def asserts_enabled() -> bool:
    """True when ``REPRO_LOCK_ASSERTS=1`` is set in the environment."""
    return os.environ.get(ASSERTS_ENV) == "1"


def assert_owned(lock, name: str = "lock") -> None:
    """Debug-mode check that the calling thread owns ``lock``.

    No-op unless :func:`asserts_enabled`. Ownership is read through the
    lock's ``_is_owned()`` (RLock, Condition — both CPython
    implementations expose it); primitive ``Lock`` objects carry no owner,
    so the best available check is ``locked()``. Locks exposing neither
    API are skipped rather than guessed at.
    """
    if not asserts_enabled():
        return
    is_owned = getattr(lock, "_is_owned", None)
    if is_owned is not None:
        owned = bool(is_owned())
    else:
        locked = getattr(lock, "locked", None)
        if locked is None:
            return
        owned = bool(locked())
    if not owned:
        raise LockAssertionError(
            f"{name} is not held by the calling thread; the static lock "
            "model (guarded_by/holds_lock) disagrees with runtime behaviour"
        )
