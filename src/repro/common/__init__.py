"""Shared utilities: error types, seeded randomness, incremental statistics.

These helpers are deliberately dependency-light; everything in
:mod:`repro.core` and :mod:`repro.executor` builds on them.
"""

from repro.common.errors import (
    CatalogError,
    EstimationError,
    ExecutorError,
    PlanError,
    ReproError,
    SchemaError,
)
from repro.common.locks import (
    LockAssertionError,
    acquires,
    assert_owned,
    asserts_enabled,
    guarded_by,
    holds_lock,
)
from repro.common.rng import derive_seed, make_rng
from repro.common.stats import (
    IncrementalFrequencyStats,
    RunningMeanVar,
    normal_quantile,
    squared_coefficient_of_variation,
)

__all__ = [
    "CatalogError",
    "EstimationError",
    "ExecutorError",
    "IncrementalFrequencyStats",
    "LockAssertionError",
    "PlanError",
    "ReproError",
    "RunningMeanVar",
    "SchemaError",
    "acquires",
    "assert_owned",
    "asserts_enabled",
    "derive_seed",
    "guarded_by",
    "holds_lock",
    "make_rng",
    "normal_quantile",
    "squared_coefficient_of_variation",
]
