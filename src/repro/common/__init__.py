"""Shared utilities: error types, seeded randomness, incremental statistics.

These helpers are deliberately dependency-light; everything in
:mod:`repro.core` and :mod:`repro.executor` builds on them.
"""

from repro.common.errors import (
    CatalogError,
    EstimationError,
    ExecutorError,
    PlanError,
    ReproError,
    SchemaError,
)
from repro.common.rng import derive_seed, make_rng
from repro.common.stats import (
    IncrementalFrequencyStats,
    RunningMeanVar,
    normal_quantile,
    squared_coefficient_of_variation,
)

__all__ = [
    "CatalogError",
    "EstimationError",
    "ExecutorError",
    "IncrementalFrequencyStats",
    "PlanError",
    "ReproError",
    "RunningMeanVar",
    "SchemaError",
    "derive_seed",
    "make_rng",
    "normal_quantile",
    "squared_coefficient_of_variation",
]
