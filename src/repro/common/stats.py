"""Incremental statistics used throughout the estimation framework.

The paper (Section 4.2, footnote on selections) requires the squared
coefficient of variation of observed group frequencies to be maintainable
*incrementally* — "decompose the coefficient of variation formula to elements
(prefix sums and prefix sums of squares) that can be maintained
incrementally". :class:`IncrementalFrequencyStats` implements exactly that
decomposition: when a group's frequency moves from ``c`` to ``c + 1`` the sum
of frequencies and the sum of squared frequencies are patched in O(1).

:class:`RunningMeanVar` is a standard Welford accumulator used by the test
suite and the overhead benchmarks. :func:`normal_quantile` supplies the
``Z_alpha`` values for the binomial confidence intervals of Section 4.1
without requiring scipy at runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "IncrementalFrequencyStats",
    "RunningMeanVar",
    "normal_quantile",
    "squared_coefficient_of_variation",
]


def squared_coefficient_of_variation(frequencies) -> float:
    """Squared coefficient of variation (variance / mean**2) of a sequence.

    Returns 0.0 for empty input or zero mean; this matches the incremental
    accumulator and makes the low-skew branch of the GEE/MLE chooser the
    default for degenerate inputs.
    """
    freqs = list(frequencies)
    n = len(freqs)
    if n == 0:
        return 0.0
    total = float(sum(freqs))
    if total == 0.0:
        return 0.0
    mean = total / n
    var = sum((f - mean) ** 2 for f in freqs) / n
    return var / (mean * mean)


@dataclass
class IncrementalFrequencyStats:
    """O(1)-updatable moments of a frequency distribution.

    Tracks, over the multiset of per-group frequencies ``{c_g}``:

    * ``num_groups``   — number of distinct groups seen,
    * ``sum_freq``     — Σ c_g   (== number of tuples observed),
    * ``sum_freq_sq``  — Σ c_g²,

    which suffice to compute the squared coefficient of variation

        γ² = Var(c) / E[c]²  =  (n·Σc² − (Σc)²) / (Σc)²

    where ``n`` is the number of groups. ``observe(old_count)`` must be
    called with the group's frequency *before* the increment.
    """

    num_groups: int = 0
    sum_freq: int = 0
    sum_freq_sq: int = 0

    def observe(self, old_count: int) -> None:
        """Record that some group's frequency rose from ``old_count`` to
        ``old_count + 1``."""
        if old_count < 0:
            raise ValueError(f"old_count must be >= 0, got {old_count}")
        if old_count == 0:
            self.num_groups += 1
        self.sum_freq += 1
        # (c+1)^2 - c^2 == 2c + 1
        self.sum_freq_sq += 2 * old_count + 1

    def observe_transition(self, old_count: int, new_count: int) -> None:
        """Record a bulk frequency change ``old_count -> new_count``
        (weighted updates, e.g. histograms of simulated join output)."""
        if old_count < 0 or new_count < old_count:
            raise ValueError(
                f"invalid transition {old_count} -> {new_count}"
            )
        if old_count == 0 and new_count > 0:
            self.num_groups += 1
        self.sum_freq += new_count - old_count
        self.sum_freq_sq += new_count * new_count - old_count * old_count

    @property
    def gamma_squared(self) -> float:
        """Squared coefficient of variation of the observed frequencies."""
        if self.num_groups == 0 or self.sum_freq == 0:
            return 0.0
        n = self.num_groups
        s1 = float(self.sum_freq)
        s2 = float(self.sum_freq_sq)
        var_times_n2 = n * s2 - s1 * s1
        if var_times_n2 <= 0.0:
            return 0.0
        return var_times_n2 / (s1 * s1)

    @property
    def mean_frequency(self) -> float:
        if self.num_groups == 0:
            return 0.0
        return self.sum_freq / self.num_groups


@dataclass
class RunningMeanVar:
    """Welford's online mean/variance accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Population variance of the values seen so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def sample_variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


def normal_quantile(alpha: float) -> float:
    """Two-sided standard-normal quantile ``Z_alpha``.

    ``normal_quantile(0.99)`` returns the z such that a standard normal lies
    in ``(-z, z)`` with probability 0.99. Uses Acklam's rational
    approximation of the inverse normal CDF (relative error < 1.15e-9),
    avoiding a scipy dependency on the hot estimation path.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    p = 0.5 + alpha / 2.0  # upper-tail probability point
    return _inverse_normal_cdf(p)


def _inverse_normal_cdf(p: float) -> float:
    """Acklam's approximation to the inverse standard normal CDF."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients in rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    p_high = 1.0 - p_low
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
