"""Command-line interface.

Local subcommands, all runnable offline against generated data::

    python -m repro demo                      # the Figure-8 style showcase
    python -m repro query "SELECT ..."        # run SQL with a progress bar
    python -m repro analyze "SELECT ..."      # static plan diagnostics, no execution
    python -m repro bench-overhead            # quick estimation-overhead check

``query`` generates (and caches per-process) a skewed TPC-H database, runs
the statement through :mod:`repro.sql` with the paper's estimators attached,
and redraws a progress bar from inside the executor's tick bus — the
end-user experience the paper is about.

Service subcommands (the :mod:`repro.server` subsystem)::

    python -m repro serve                     # progress service over TCP
    python -m repro submit "SELECT ..."       # run a query on the service
    python -m repro watch [SESSION_ID]        # live progress bars for sessions
    python -m repro cancel SESSION_ID         # cooperative cancellation

``serve`` owns the generated catalog and time-slices every submitted query
over a worker pool; ``watch`` streams progress snapshots for one session or
the whole workload. See ``docs/SERVER.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
import time

from repro.datagen import generate_tpch
from repro.storage.catalog import Catalog

__all__ = ["main"]


def _build_catalog(args: argparse.Namespace) -> Catalog:
    print(
        f"generating TPC-H data (sf={args.sf}, skew z={args.skew}, seed={args.seed})...",
        file=sys.stderr,
    )
    return generate_tpch(sf=args.sf, seed=args.seed, skew_z=args.skew)


def _progress_bar(progress: float, total_estimate: float, width: int = 40) -> str:
    filled = int(min(max(progress, 0.0), 1.0) * width)
    bar = "#" * filled + "-" * (width - filled)
    return f"[{bar}] {progress:6.1%}  T̂={total_estimate:,.0f}"


def cmd_query(args: argparse.Namespace) -> int:
    catalog = _build_catalog(args)
    last_draw = [0.0]

    def draw(snapshots) -> None:
        if not snapshots:
            return
        now = time.perf_counter()
        if now - last_draw[0] < 0.05:
            return
        last_draw[0] = now
        snap = snapshots[-1]
        sys.stderr.write("\r" + _progress_bar(snap.progress, snap.work_total_estimate))
        sys.stderr.flush()

    from repro.core.progress import ProgressMonitor
    from repro.executor.engine import ExecutionEngine, TickBus
    from repro.sql import compile_select

    compiled = compile_select(
        catalog, args.sql, sample_fraction=args.sample
    )
    label = f"{args.mode} progress estimation"
    if args.parallel and args.parallel > 1:
        from repro.parallel import Coordinator, try_compile

        fragments = try_compile(compiled.plan, args.parallel)
        if fragments is None:
            print(
                f"-- plan not fragmentable at P={args.parallel}; running serially",
                file=sys.stderr,
            )
        else:
            coordinator = Coordinator(
                fragments,
                mode=args.mode,
                tick_interval=args.tick,
                on_progress=lambda snap: draw([snap]),
            )
            parallel_result = coordinator.run()
            monitor = coordinator.monitor
            sys.stderr.write(
                "\r" + _progress_bar(1.0, monitor.snapshot().work_total_estimate)
            )
            sys.stderr.write("\n")
            label = (
                f"{args.mode} progress estimation, P={fragments.num_partitions}"
                + (" DEGRADED" if parallel_result.degraded else "")
            )
            _print_rows(
                compiled.plan, parallel_result.rows, args.max_rows
            )
            print(
                f"-- {parallel_result.row_count:,} rows in "
                f"{parallel_result.wall_time_s:.2f}s ({label})",
                file=sys.stderr,
            )
            return 0
    bus = TickBus(interval=args.tick)
    monitor = ProgressMonitor(compiled.plan, mode=args.mode, bus=bus)
    bus.subscribe(lambda _c: draw(monitor.snapshots))
    result = ExecutionEngine(compiled.plan, bus=bus, collect_rows=True).run(
        batch_size=args.batch_size
    )
    sys.stderr.write("\r" + _progress_bar(1.0, monitor.snapshot().work_total_estimate))
    sys.stderr.write("\n")

    _print_rows(compiled.plan, result.rows or [], args.max_rows)
    print(
        f"-- {result.row_count:,} rows in {result.wall_time_s:.2f}s ({label})",
        file=sys.stderr,
    )
    return 0


def _print_rows(plan, rows: list, max_rows: int) -> None:
    columns = plan.output_schema.names()
    print("\t".join(columns))
    for row in rows[:max_rows]:
        print("\t".join(str(v) for v in row))
    if len(rows) > max_rows:
        print(f"... ({len(rows) - max_rows} more rows)")


def _workload_setups(args: argparse.Namespace):
    """Every builder in :mod:`repro.workloads`, instantiated at toy scale.

    Plans are built but never executed — exactly what ``analyze`` needs.
    """
    from repro.workloads import (
        paper_binary_join,
        paper_pipeline_diff_attr,
        paper_pipeline_same_attr,
        paper_pkfk_join_with_selection,
        tpch_q8_like,
    )

    yield "paper_binary_join", paper_binary_join(
        z=1.0, domain_size=50, num_rows=200, seed=args.seed
    )
    yield "paper_pkfk_join_with_selection", paper_pkfk_join_with_selection(
        domain_size=200, num_rows=200, selection_cutoff=100, seed=args.seed
    )
    yield "paper_pipeline_same_attr", paper_pipeline_same_attr(
        z=1.0, domain_size=50, num_rows=200, seed=args.seed
    )
    yield "paper_pipeline_diff_attr[case=1]", paper_pipeline_diff_attr(
        case=1, lower_z=1.0, upper_z=1.0, domain_size=50, num_rows=200, seed=args.seed
    )
    yield "paper_pipeline_diff_attr[case=2]", paper_pipeline_diff_attr(
        case=2, lower_z=1.0, upper_z=1.0, domain_size=50, num_rows=200, seed=args.seed
    )
    yield "tpch_q8_like", tpch_q8_like(
        sf=0.002, skew_z=args.skew, sample_fraction=0.0, seed=args.seed
    )


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import Severity
    from repro.executor.plan import check_plan, explain

    if args.concurrency:
        # Lock-discipline pass over the installed source tree; exits
        # non-zero on findings so tooling/CI can gate on it.
        import repro
        from repro.analysis import concurrency

        src_root = str(Path(repro.__file__).resolve().parent)
        argv = [src_root]
        if args.baseline is not None:
            argv += ["--baseline", args.baseline]
        return concurrency.main(argv)

    min_severity = Severity[args.min_severity.upper()]
    had_errors = False

    def show(name: str, plan) -> None:
        nonlocal had_errors
        report = check_plan(plan, mode="advisory")
        print(f"== {name}")
        print(explain(plan))
        rendered = report.render(min_severity=min_severity)
        print(rendered if rendered else "  no diagnostics")
        summary = (
            f"  {len(report.errors)} error(s), {len(report.warnings)} warning(s), "
            f"{len(report.diagnostics)} total"
        )
        print(summary)
        had_errors = had_errors or report.has_errors

    if args.workloads:
        for name, setup in _workload_setups(args):
            show(name, setup.plan)
    else:
        if not args.sql:
            print("analyze: provide a SELECT statement or --workloads", file=sys.stderr)
            return 2
        from repro.sql import compile_select

        catalog = _build_catalog(args)
        compiled = compile_select(
            catalog, args.sql, sample_fraction=args.sample, analyze="off"
        )
        show(args.sql, compiled.plan)
    return 1 if had_errors else 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.progress import ProgressMonitor
    from repro.executor.engine import ExecutionEngine, TickBus
    from repro.workloads import tpch_q8_like

    print("TPC-H Q8-style 8-table join under skew: once vs dne progress\n")
    curves = {}
    for mode in ("once", "dne"):
        setup = tpch_q8_like(sf=args.sf, skew_z=args.skew, sample_fraction=args.sample)
        bus = TickBus(interval=args.tick)
        monitor = ProgressMonitor(setup.plan, mode=mode, bus=bus)
        print(f"running with {mode}...", file=sys.stderr)
        ExecutionEngine(setup.plan, bus=bus, collect_rows=False).run()
        curves[mode] = monitor.progress_curve()

    targets = [i / 10 for i in range(1, 11)]
    print(f"{'actual':>8} {'once':>8} {'dne':>8}")
    for target in targets:
        row = [f"{target:8.0%}"]
        for mode in ("once", "dne"):
            est = next((e for a, e in curves[mode] if a >= target), 1.0)
            row.append(f"{est:8.1%}")
        print(" ".join(row))
    print("\na perfect indicator reports estimated == actual;")
    print("dne overestimates progress while the optimizer's join estimates are wrong.")
    return 0


def cmd_bench_overhead(args: argparse.Namespace) -> int:
    from repro.core.manager import EstimationManager
    from repro.executor.engine import ExecutionEngine
    from repro.executor.operators import HashJoin, SeqScan

    catalog = _build_catalog(args)
    times = {}
    for instrumented in (False, True):
        best = float("inf")
        for _ in range(3):
            join = HashJoin(
                SeqScan(catalog.table("orders")),
                SeqScan(catalog.table("lineitem")),
                "orders.orderkey",
                "lineitem.orderkey",
            )
            if instrumented:
                EstimationManager(join)
            started = time.perf_counter()
            ExecutionEngine(join, collect_rows=False).run()
            best = min(best, time.perf_counter() - started)
        times[instrumented] = best
    overhead = (times[True] - times[False]) / times[False] * 100
    print(f"bare join:         {times[False]:.3f}s")
    print(f"with estimators:   {times[True]:.3f}s")
    print(f"overhead:          {overhead:+.1f}%")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.faults import parse_fault_spec
    from repro.server.service import ProgressService

    try:
        faults = parse_fault_spec(args.faults) if args.faults else None
    except ValueError as exc:
        print(f"bad --faults spec: {exc}", file=sys.stderr)
        return 2
    catalog = _build_catalog(args)
    service = ProgressService(
        catalog,
        host=args.host,
        port=args.port,
        workers=args.workers,
        policy=args.policy,
        quantum_rows=args.quantum,
        tick_interval=args.tick,
        row_cap=args.row_cap,
        max_pending=args.max_pending,
        sample_fraction=args.sample,
        default_timeout_s=args.timeout,
        faults=faults,
        max_parallel=args.max_parallel,
        history_path=args.history,
    )
    host, port = service.start()
    print(
        f"repro progress service listening on {host}:{port} "
        f"({args.workers} workers, policy={args.policy})",
        file=sys.stderr,
    )
    if service.history is not None:
        print(
            f"run history at {args.history} "
            f"({len(service.history)} prior runs"
            + (
                f", {service.history.skipped()} torn records skipped"
                if service.history.skipped()
                else ""
            )
            + ")",
            file=sys.stderr,
        )
    if service.faults is not None:
        sites = sorted({spec.site for spec in service.faults.specs})
        print(
            f"fault injection ACTIVE (seed={service.faults.seed}, "
            f"sites: {', '.join(sites)})",
            file=sys.stderr,
        )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down...", file=sys.stderr)
    finally:
        service.shutdown()
    return 0


def _client(args: argparse.Namespace):
    from repro.server.client import ProgressClient

    return ProgressClient(args.host, args.port)


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.server.client import ServiceError

    client = _client(args)
    try:
        session = client.submit(
            args.sql,
            mode=args.mode,
            name=args.name,
            timeout_s=args.timeout_s,
            parallel=args.parallel,
        )
        sid = session["session_id"]
        print(sid)
        if not args.wait:
            return 0
        final = client.wait(sid, timeout=args.wait_timeout)
        print(
            f"{sid} {final['state']}: {final['row_count']:,} rows "
            f"in {final['elapsed_s']:.2f}s",
            file=sys.stderr,
        )
        if final["state"] == "finished" and args.fetch:
            result = client.fetch(sid)
            print("\t".join(result["columns"]))
            for row in result["rows"][: args.max_rows]:
                print("\t".join(str(v) for v in row))
            if result["truncated"] or len(result["rows"]) > args.max_rows:
                shown = min(len(result["rows"]), args.max_rows)
                print(f"... ({final['row_count'] - shown} more rows)")
        return 0 if final["state"] == "finished" else 1
    except ServiceError as exc:
        print(f"submit failed — {exc}", file=sys.stderr)
        return 1


def cmd_cancel(args: argparse.Namespace) -> int:
    from repro.server.client import ServiceError

    try:
        session = _client(args).cancel(args.session_id)
    except ServiceError as exc:
        print(f"cancel failed — {exc}", file=sys.stderr)
        return 1
    print(f"{session['session_id']} -> {session['state']}", file=sys.stderr)
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    """Inspect or clear a run-history store (all access via HistoryStore)."""
    from repro.robust import HistoryStore, aggregate_prior

    store = HistoryStore(args.path)
    if args.history_cmd == "clear":
        n = len(store)
        store.clear()
        print(f"cleared {n} run(s) from {args.path}")
        return 0
    if store.degraded_reason is not None:
        print(f"warning: {store.degraded_reason}", file=sys.stderr)
    if args.history_cmd == "list":
        records = store.records()
        if not records:
            print(f"no runs recorded in {args.path}")
            return 0
        skipped = store.skipped()
        if skipped:
            print(f"({skipped} torn record(s) skipped on load)", file=sys.stderr)
        print(f"{'seq':>5}  {'fingerprint':16}  {'mode':5}  "
              f"{'rows':>8}  {'T(Q)':>10}  {'wall_s':>8}")
        for rec in records:
            print(
                f"{rec.seq:>5}  {rec.fingerprint:16}  {rec.mode:5}  "
                f"{rec.row_count:>8}  {rec.true_total:>10.0f}  "
                f"{rec.wall_time_s:>8.3f}"
            )
        return 0
    # show <fingerprint>: every run plus the aggregated prior.
    records = store.records_for(args.fingerprint)
    if not records:
        print(f"no runs for fingerprint {args.fingerprint!r} in {args.path}")
        return 1
    print(f"fingerprint {args.fingerprint} — {len(records)} run(s)")
    print(f"signature: {records[-1].signature}")
    for rec in records:
        errs = ", ".join(
            f"{name}={mse:.3g}" for name, mse in sorted(rec.estimator_errors.items())
        )
        print(
            f"  seq {rec.seq}: mode={rec.mode} rows={rec.row_count} "
            f"T={rec.true_total:.0f} wall={rec.wall_time_s:.3f}s "
            f"checkpoints={rec.estimator_checkpoints} mse[{errs}]"
        )
    prior = aggregate_prior(args.fingerprint, records)
    for name, ep in sorted(prior.estimators.items()):
        print(f"  prior {name}: mse={ep.mse:.6g} (n={ep.n:.0f} checkpoints)")
    return 0


def _render_watch_frame(sessions: dict, workload: dict | None, width: int = 32) -> str:
    lines = []
    for sid in sorted(sessions):
        snap = sessions[sid]
        bar = _progress_bar(snap["progress"], snap["work_total_estimate"], width)
        label = snap["name"] if snap["name"] != sid else sid
        lines.append(f"{label:>16.16} {bar} {snap['state']}")
    if workload is not None:
        frac = workload["progress"]
        filled = int(min(max(frac, 0.0), 1.0) * width)
        lines.append(
            f"{'WORKLOAD':>16} [{'#' * filled}{'-' * (width - filled)}] {frac:6.1%}  "
            f"{workload['states']}"
        )
    return "\n".join(lines)


def cmd_watch(args: argparse.Namespace) -> int:
    from repro.server.client import ServiceError

    client = _client(args)
    sessions: dict = {}
    workload: dict | None = None
    live = sys.stderr.isatty() and not args.plain
    drawn_lines = 0

    def draw() -> None:
        nonlocal drawn_lines
        frame = _render_watch_frame(sessions, workload)
        if not frame:
            return
        if live and drawn_lines:
            sys.stderr.write(f"\x1b[{drawn_lines}F\x1b[J")
        sys.stderr.write(frame + "\n")
        sys.stderr.flush()
        drawn_lines = frame.count("\n") + 1

    try:
        for event in client.watch(
            args.session_id,
            until_idle=args.until_idle,
            delta=not args.no_delta,
        ):
            kind = event.get("event")
            if kind == "snapshot":
                snap = event["session"]
                sessions[snap["session_id"]] = snap
            elif kind == "workload":
                workload = event["workload"]
            elif kind == "end":
                draw()
                print(f"watch ended: {event.get('reason')}", file=sys.stderr)
                return 0
            if live:
                draw()
            elif kind == "snapshot":
                snap = event["session"]
                sys.stderr.write(
                    f"{snap['session_id']} {snap['progress']:.3f} {snap['state']}\n"
                )
        return 0
    except KeyboardInterrupt:
        print("", file=sys.stderr)
        return 0
    except ServiceError as exc:
        print(f"watch failed — {exc}", file=sys.stderr)
        return 1


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query progress indicators (Mishra & Koudas, ICDE 2007) demo CLI",
    )
    parser.add_argument("--sf", type=float, default=0.01, help="TPC-H scale factor")
    parser.add_argument("--skew", type=float, default=1.0, help="Zipf skew for FKs")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sample", type=float, default=0.1, help="scan sample fraction")
    parser.add_argument("--tick", type=int, default=2000, help="progress tick interval")
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser(
        "query", aliases=["run"], help="run a SQL query with a live progress bar"
    )
    q.add_argument("sql", help="the SELECT statement")
    q.add_argument("--mode", choices=("once", "dne", "byte"), default="once")
    q.add_argument("--max-rows", type=int, default=20)
    q.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="vectorized execution: pull N rows per next_batch() call "
        "(default: row-at-a-time)",
    )
    q.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="P",
        help="partitioned multi-process execution across P workers with a "
        "merged progress bar (unfragmentable plans run serially)",
    )
    q.set_defaults(func=cmd_query)

    a = sub.add_parser(
        "analyze", help="static plan diagnostics (type/pipeline checks), no execution"
    )
    a.add_argument("sql", nargs="?", help="SELECT statement to analyze")
    a.add_argument(
        "--workloads",
        action="store_true",
        help="analyze every repro.workloads builder at toy scale instead of SQL",
    )
    a.add_argument(
        "--min-severity",
        choices=("info", "warning", "error"),
        default="info",
        help="lowest severity to print",
    )
    a.add_argument(
        "--concurrency",
        action="store_true",
        help="run the lock-discipline analyzer (X001-X006) over the repro "
        "source tree instead of a plan; exits non-zero on findings",
    )
    a.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="with --concurrency: baseline file of accepted findings",
    )
    a.set_defaults(func=cmd_analyze)

    d = sub.add_parser("demo", help="Figure-8 style once-vs-dne showcase")
    d.set_defaults(func=cmd_demo)

    b = sub.add_parser("bench-overhead", help="quick estimation-overhead check")
    b.set_defaults(func=cmd_bench_overhead)

    def add_endpoint(p) -> None:
        p.add_argument("--host", default="127.0.0.1", help="service host")
        p.add_argument("--port", type=int, default=7661, help="service port")

    s = sub.add_parser("serve", help="run the multi-session progress service")
    add_endpoint(s)
    s.add_argument("--workers", type=int, default=4, help="scheduler worker threads")
    s.add_argument(
        "--policy",
        choices=("fair", "serw"),
        default="fair",
        help="fair round-robin or shortest-expected-remaining-work",
    )
    s.add_argument("--quantum", type=int, default=512, help="rows per scheduling quantum")
    s.add_argument("--row-cap", type=int, default=10_000, help="result spool cap per session")
    s.add_argument("--max-pending", type=int, default=64, help="admission-control bound")
    s.add_argument(
        "--timeout", type=float, default=None, help="default per-session timeout (s)"
    )
    s.add_argument(
        "--max-parallel",
        type=int,
        default=0,
        metavar="P",
        help="per-query parallelism ceiling for submit ... parallel=P "
        "(0 disables parallel execution)",
    )
    s.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault-injection spec, e.g. "
            "'seed=42; scan.read:error:rate=0.01:count=2' "
            "(defaults to the REPRO_FAULTS environment variable; see docs/FAULTS.md)"
        ),
    )
    s.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="run-history store (JSONL): seeds ensemble priors, records "
        "finished runs and feeds observed cardinalities back to the "
        "optimizer (see docs/ROBUST.md)",
    )
    s.set_defaults(func=cmd_serve)

    sm = sub.add_parser("submit", help="submit SQL to a running service")
    add_endpoint(sm)
    sm.add_argument("sql", help="the SELECT statement")
    sm.add_argument("--mode", choices=("once", "dne", "byte"), default="once")
    sm.add_argument("--name", default=None, help="session display name")
    sm.add_argument(
        "--timeout-s", type=float, default=None, help="per-session timeout (s)"
    )
    sm.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="P",
        help="request P-way parallel execution (clamped to the server's "
        "--max-parallel ceiling)",
    )
    sm.add_argument("--wait", action="store_true", help="block until the query ends")
    sm.add_argument(
        "--wait-timeout", type=float, default=300.0, help="--wait poll deadline (s)"
    )
    sm.add_argument("--fetch", action="store_true", help="with --wait: print result rows")
    sm.add_argument("--max-rows", type=int, default=20)
    sm.set_defaults(func=cmd_submit)

    w = sub.add_parser("watch", help="stream live progress bars from the service")
    add_endpoint(w)
    w.add_argument("session_id", nargs="?", default=None, help="one session (default: all)")
    w.add_argument(
        "--until-idle",
        action="store_true",
        help="exit once every session is terminal (aggregate watch only)",
    )
    w.add_argument("--plain", action="store_true", help="line-per-event output, no redraw")
    w.add_argument(
        "--no-delta",
        action="store_true",
        help="request plain full-snapshot frames instead of the delta stream",
    )
    w.set_defaults(func=cmd_watch)

    c = sub.add_parser("cancel", help="cooperatively cancel a session")
    add_endpoint(c)
    c.add_argument("session_id")
    c.set_defaults(func=cmd_cancel)

    h = sub.add_parser("history", help="inspect or clear a run-history store")
    hsub = h.add_subparsers(dest="history_cmd", required=True)
    hl = hsub.add_parser("list", help="one line per recorded run")
    hl.add_argument("--path", required=True, help="history store (JSONL)")
    hs = hsub.add_parser(
        "show", help="runs + aggregated estimator prior for one fingerprint"
    )
    hs.add_argument("fingerprint", help="canonical plan fingerprint digest")
    hs.add_argument("--path", required=True, help="history store (JSONL)")
    hc = hsub.add_parser("clear", help="truncate the store")
    hc.add_argument("--path", required=True, help="history store (JSONL)")
    h.set_defaults(func=cmd_history)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    return args.func(args)
