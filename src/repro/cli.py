"""Command-line interface.

Four subcommands, all runnable offline against generated data::

    python -m repro demo                      # the Figure-8 style showcase
    python -m repro query "SELECT ..."        # run SQL with a progress bar
    python -m repro analyze "SELECT ..."      # static plan diagnostics, no execution
    python -m repro bench-overhead            # quick estimation-overhead check

``query`` generates (and caches per-process) a skewed TPC-H database, runs
the statement through :mod:`repro.sql` with the paper's estimators attached,
and redraws a progress bar from inside the executor's tick bus — the
end-user experience the paper is about.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.datagen import generate_tpch
from repro.storage.catalog import Catalog

__all__ = ["main"]


def _build_catalog(args: argparse.Namespace) -> Catalog:
    print(
        f"generating TPC-H data (sf={args.sf}, skew z={args.skew}, seed={args.seed})...",
        file=sys.stderr,
    )
    return generate_tpch(sf=args.sf, seed=args.seed, skew_z=args.skew)


def _progress_bar(progress: float, total_estimate: float, width: int = 40) -> str:
    filled = int(min(max(progress, 0.0), 1.0) * width)
    bar = "#" * filled + "-" * (width - filled)
    return f"[{bar}] {progress:6.1%}  T̂={total_estimate:,.0f}"


def cmd_query(args: argparse.Namespace) -> int:
    catalog = _build_catalog(args)
    last_draw = [0.0]

    def draw(snapshots) -> None:
        if not snapshots:
            return
        now = time.perf_counter()
        if now - last_draw[0] < 0.05:
            return
        last_draw[0] = now
        snap = snapshots[-1]
        sys.stderr.write("\r" + _progress_bar(snap.progress, snap.work_total_estimate))
        sys.stderr.flush()

    from repro.core.progress import ProgressMonitor
    from repro.executor.engine import ExecutionEngine, TickBus
    from repro.sql import compile_select

    compiled = compile_select(
        catalog, args.sql, sample_fraction=args.sample
    )
    bus = TickBus(interval=args.tick)
    monitor = ProgressMonitor(compiled.plan, mode=args.mode, bus=bus)
    bus.subscribe(lambda _c: draw(monitor.snapshots))
    result = ExecutionEngine(compiled.plan, bus=bus, collect_rows=True).run(
        batch_size=args.batch_size
    )
    sys.stderr.write("\r" + _progress_bar(1.0, monitor.snapshot().work_total_estimate))
    sys.stderr.write("\n")

    columns = compiled.plan.output_schema.names()
    print("\t".join(columns))
    rows = result.rows or []
    for row in rows[: args.max_rows]:
        print("\t".join(str(v) for v in row))
    if len(rows) > args.max_rows:
        print(f"... ({len(rows) - args.max_rows} more rows)")
    print(
        f"-- {result.row_count:,} rows in {result.wall_time_s:.2f}s "
        f"({args.mode} progress estimation)",
        file=sys.stderr,
    )
    return 0


def _workload_setups(args: argparse.Namespace):
    """Every builder in :mod:`repro.workloads`, instantiated at toy scale.

    Plans are built but never executed — exactly what ``analyze`` needs.
    """
    from repro.workloads import (
        paper_binary_join,
        paper_pipeline_diff_attr,
        paper_pipeline_same_attr,
        paper_pkfk_join_with_selection,
        tpch_q8_like,
    )

    yield "paper_binary_join", paper_binary_join(
        z=1.0, domain_size=50, num_rows=200, seed=args.seed
    )
    yield "paper_pkfk_join_with_selection", paper_pkfk_join_with_selection(
        domain_size=200, num_rows=200, selection_cutoff=100, seed=args.seed
    )
    yield "paper_pipeline_same_attr", paper_pipeline_same_attr(
        z=1.0, domain_size=50, num_rows=200, seed=args.seed
    )
    yield "paper_pipeline_diff_attr[case=1]", paper_pipeline_diff_attr(
        case=1, lower_z=1.0, upper_z=1.0, domain_size=50, num_rows=200, seed=args.seed
    )
    yield "paper_pipeline_diff_attr[case=2]", paper_pipeline_diff_attr(
        case=2, lower_z=1.0, upper_z=1.0, domain_size=50, num_rows=200, seed=args.seed
    )
    yield "tpch_q8_like", tpch_q8_like(
        sf=0.002, skew_z=args.skew, sample_fraction=0.0, seed=args.seed
    )


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.diagnostics import Severity
    from repro.executor.plan import check_plan, explain

    min_severity = Severity[args.min_severity.upper()]
    had_errors = False

    def show(name: str, plan) -> None:
        nonlocal had_errors
        report = check_plan(plan, mode="advisory")
        print(f"== {name}")
        print(explain(plan))
        rendered = report.render(min_severity=min_severity)
        print(rendered if rendered else "  no diagnostics")
        summary = (
            f"  {len(report.errors)} error(s), {len(report.warnings)} warning(s), "
            f"{len(report.diagnostics)} total"
        )
        print(summary)
        had_errors = had_errors or report.has_errors

    if args.workloads:
        for name, setup in _workload_setups(args):
            show(name, setup.plan)
    else:
        if not args.sql:
            print("analyze: provide a SELECT statement or --workloads", file=sys.stderr)
            return 2
        from repro.sql import compile_select

        catalog = _build_catalog(args)
        compiled = compile_select(
            catalog, args.sql, sample_fraction=args.sample, analyze="off"
        )
        show(args.sql, compiled.plan)
    return 1 if had_errors else 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.progress import ProgressMonitor
    from repro.executor.engine import ExecutionEngine, TickBus
    from repro.workloads import tpch_q8_like

    print("TPC-H Q8-style 8-table join under skew: once vs dne progress\n")
    curves = {}
    for mode in ("once", "dne"):
        setup = tpch_q8_like(sf=args.sf, skew_z=args.skew, sample_fraction=args.sample)
        bus = TickBus(interval=args.tick)
        monitor = ProgressMonitor(setup.plan, mode=mode, bus=bus)
        print(f"running with {mode}...", file=sys.stderr)
        ExecutionEngine(setup.plan, bus=bus, collect_rows=False).run()
        curves[mode] = monitor.progress_curve()

    targets = [i / 10 for i in range(1, 11)]
    print(f"{'actual':>8} {'once':>8} {'dne':>8}")
    for target in targets:
        row = [f"{target:8.0%}"]
        for mode in ("once", "dne"):
            est = next((e for a, e in curves[mode] if a >= target), 1.0)
            row.append(f"{est:8.1%}")
        print(" ".join(row))
    print("\na perfect indicator reports estimated == actual;")
    print("dne overestimates progress while the optimizer's join estimates are wrong.")
    return 0


def cmd_bench_overhead(args: argparse.Namespace) -> int:
    from repro.core.manager import EstimationManager
    from repro.executor.engine import ExecutionEngine
    from repro.executor.operators import HashJoin, SeqScan

    catalog = _build_catalog(args)
    times = {}
    for instrumented in (False, True):
        best = float("inf")
        for _ in range(3):
            join = HashJoin(
                SeqScan(catalog.table("orders")),
                SeqScan(catalog.table("lineitem")),
                "orders.orderkey",
                "lineitem.orderkey",
            )
            if instrumented:
                EstimationManager(join)
            started = time.perf_counter()
            ExecutionEngine(join, collect_rows=False).run()
            best = min(best, time.perf_counter() - started)
        times[instrumented] = best
    overhead = (times[True] - times[False]) / times[False] * 100
    print(f"bare join:         {times[False]:.3f}s")
    print(f"with estimators:   {times[True]:.3f}s")
    print(f"overhead:          {overhead:+.1f}%")
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query progress indicators (Mishra & Koudas, ICDE 2007) demo CLI",
    )
    parser.add_argument("--sf", type=float, default=0.01, help="TPC-H scale factor")
    parser.add_argument("--skew", type=float, default=1.0, help="Zipf skew for FKs")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sample", type=float, default=0.1, help="scan sample fraction")
    parser.add_argument("--tick", type=int, default=2000, help="progress tick interval")
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser(
        "query", aliases=["run"], help="run a SQL query with a live progress bar"
    )
    q.add_argument("sql", help="the SELECT statement")
    q.add_argument("--mode", choices=("once", "dne", "byte"), default="once")
    q.add_argument("--max-rows", type=int, default=20)
    q.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="vectorized execution: pull N rows per next_batch() call "
        "(default: row-at-a-time)",
    )
    q.set_defaults(func=cmd_query)

    a = sub.add_parser(
        "analyze", help="static plan diagnostics (type/pipeline checks), no execution"
    )
    a.add_argument("sql", nargs="?", help="SELECT statement to analyze")
    a.add_argument(
        "--workloads",
        action="store_true",
        help="analyze every repro.workloads builder at toy scale instead of SQL",
    )
    a.add_argument(
        "--min-severity",
        choices=("info", "warning", "error"),
        default="info",
        help="lowest severity to print",
    )
    a.set_defaults(func=cmd_analyze)

    d = sub.add_parser("demo", help="Figure-8 style once-vs-dne showcase")
    d.set_defaults(func=cmd_demo)

    b = sub.add_parser("bench-overhead", help="quick estimation-overhead check")
    b.set_defaults(func=cmd_bench_overhead)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    return args.func(args)
