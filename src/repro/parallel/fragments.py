"""Plan fragmentation: one serial plan → P per-partition fragments + merge.

The compiler splits a validated serial plan into two regions:

* a **partitioned region** — the largest subtree that can run unchanged
  over table shards: scans, filters, projections, materialize/sort chains,
  and hash joins. Each join is executed either *partition-wise* (both
  inputs co-hash-partitioned on the single join key, traced through the
  chain down to a base-table column) or with a *broadcast build* (the
  probe side stays partitioned however it already is; every worker gets
  the full build subtree). A fragment for partition ``p`` is a structural
  clone of the region with every leaf scan re-pointed at shard ``p``
  (or at the full table, for leaves under a broadcast build).
* a **coordinator merge** peeled off the root: final aggregation over the
  fragments' partial aggregates (count/sum/min/max/avg decompose;
  ``count_distinct`` does not), global duplicate elimination above local
  ``Distinct``, and re-sorting — applied innermost-first to the union of
  fragment outputs by plain coordinator code, not operators.

Anything the split cannot prove exact raises :class:`FragmentationError`
and the caller falls back to serial execution: ``LIMIT`` (serial
truncation order is not reproducible from shards), ``count_distinct``
(not decomposable), aggregates/``Distinct`` below the root region (their
local output is partition-dependent), multi-key or non-hash joins inside
the region (no single key to co-partition on; broadcast of the *build*
side still covers the common cases).

Exactness argument, for the merge algebra in :mod:`repro.parallel.delta`:
under co-partitioning every build row matching a probe row lives in the
probe row's partition, and under broadcast every build row lives in all
of them — either way each probe tuple sees exactly the global match set,
so ``⋃_p fragment_p ≡ serial`` as multisets and every per-tuple estimator
contribution is identical to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.executor.operators.aggregate import (
    AggregateSpec,
    HashAggregate,
    SortAggregate,
    _AggregateBase,
)
from repro.executor.expressions import Col
from repro.executor.operators.base import Operator
from repro.executor.operators.distinct import Distinct
from repro.executor.operators.filter import Filter
from repro.executor.operators.hash_join import HashJoin
from repro.executor.operators.limit import Limit
from repro.executor.operators.materialize import Materialize
from repro.executor.operators.project import Project
from repro.executor.operators.scan import IndexScan, SampleScan, SeqScan
from repro.executor.operators.sort import Sort
from repro.executor.plan import validate_plan, walk
from repro.storage.partition import Partitioner
from repro.storage.table import Table

__all__ = [
    "AggregateStep",
    "DistinctStep",
    "FragmentPlan",
    "FragmentationError",
    "ProjectStep",
    "SortStep",
    "compile_fragments",
    "try_compile",
]

_LEAF_TYPES = (SeqScan, IndexScan, SampleScan)
_CHAIN_TYPES = (Filter, Materialize, Sort)


class FragmentationError(ValueError):
    """The plan cannot be split into exact per-partition fragments."""


# -- coordinator merge steps -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SortStep:
    """Re-sort the merged rows (the peeled serial ``Sort``)."""

    key_idxs: tuple[int, ...]
    descending: bool

    def apply(self, rows: list[tuple]) -> list[tuple]:
        idxs = self.key_idxs
        if len(idxs) == 1:
            idx = idxs[0]
            return sorted(rows, key=lambda r: r[idx], reverse=self.descending)
        return sorted(
            rows,
            key=lambda r: tuple(r[i] for i in idxs),
            reverse=self.descending,
        )


class ProjectStep:
    """Row-wise projection applied to merged rows (a serial ``Project``
    peeled from above the merge root — e.g. above a final aggregate)."""

    __slots__ = ("_bound",)

    def __init__(self, bound):
        self._bound = bound

    @classmethod
    def from_operator(cls, project: Project) -> "ProjectStep":
        in_schema = project.child.output_schema
        exprs = [
            Col(spec) if isinstance(spec, str) else spec[1]
            for spec in project.columns
        ]
        return cls([expr.bind(in_schema) for expr in exprs])

    def apply(self, rows: list[tuple]) -> list[tuple]:
        bound = self._bound
        return [tuple(fn(row) for fn in bound) for row in rows]


@dataclass(frozen=True, slots=True)
class DistinctStep:
    """Global first-seen dedupe over the locally-deduped fragment outputs."""

    def apply(self, rows: list[tuple]) -> list[tuple]:
        seen: set = set()
        out = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out


@dataclass(frozen=True, slots=True)
class AggregateStep:
    """Final aggregation over the fragments' partial-aggregate rows.

    ``finals`` holds one ``(kind, partial_idxs)`` per serial aggregate
    spec, where the indexes address the partial columns *after* the group
    columns. Kinds: ``count`` re-sums partial counts; ``sum``/``min``/
    ``max`` fold None-skipping exactly like the serial update loop (a
    shard whose inputs were all NULL contributes ``None``); ``avg``
    divides re-summed (Σ, n) partials. Integer inputs merge bit-identical
    to serial; float sums can differ in the last ulp because addition
    order changes (documented in docs/PARALLEL.md).
    """

    group_arity: int
    finals: tuple[tuple[str, tuple[int, ...]], ...]

    def apply(self, rows: list[tuple]) -> list[tuple]:
        arity = self.group_arity
        finals = self.finals
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for row in rows:
            key = tuple(row[:arity])
            acc = groups.get(key)
            if acc is None:
                acc = [[None, 0] if kind == "avg" else None for kind, _ in finals]
                groups[key] = acc
                order.append(key)
            for pos, (kind, idxs) in enumerate(finals):
                value = row[arity + idxs[0]]
                if kind == "count":
                    acc[pos] = value if acc[pos] is None else acc[pos] + value
                elif kind == "avg":
                    count = row[arity + idxs[1]]
                    if count:
                        slot = acc[pos]
                        slot[0] = value if slot[0] is None else slot[0] + value
                        slot[1] += count
                elif value is not None:
                    cur = acc[pos]
                    if cur is None:
                        acc[pos] = value
                    elif kind == "sum":
                        acc[pos] = cur + value
                    elif kind == "min":
                        acc[pos] = min(cur, value)
                    else:  # max
                        acc[pos] = max(cur, value)
        out = []
        for key in order:
            acc = groups[key]
            values = []
            for pos, (kind, _idxs) in enumerate(finals):
                if kind == "avg":
                    total, count = acc[pos]
                    values.append(total / count if count else None)
                elif kind == "count":
                    values.append(acc[pos] or 0)
                else:
                    values.append(acc[pos])
            out.append(key + tuple(values))
        return out


def _decompose_aggregates(
    specs: tuple[AggregateSpec, ...],
) -> tuple[tuple[AggregateSpec, ...], tuple[tuple[str, tuple[int, ...]], ...]]:
    """Split serial aggregate specs into partial specs + final fold specs."""
    partials: list[AggregateSpec] = []
    finals: list[tuple[str, tuple[int, ...]]] = []
    for spec in specs:
        func = spec.func
        j = len(partials)
        if func == "count_distinct":
            raise FragmentationError(
                "count_distinct does not decompose into mergeable partials"
            )
        if func == "avg":
            partials.append(AggregateSpec("sum", spec.column, f"__p{j}_sum"))
            partials.append(AggregateSpec("count", spec.column, f"__p{j}_cnt"))
            finals.append(("avg", (j, j + 1)))
        elif func == "count":
            partials.append(AggregateSpec("count", spec.column, f"__p{j}_cnt"))
            finals.append(("count", (j,)))
        elif func in ("sum", "min", "max"):
            partials.append(AggregateSpec(func, spec.column, f"__p{j}_{func}"))
            finals.append((func, (j,)))
        else:  # pragma: no cover - no other funcs exist today
            raise FragmentationError(f"cannot decompose aggregate {func!r}")
    return tuple(partials), tuple(finals)


# -- region planning ---------------------------------------------------------------


def _canon(schema, name: str) -> str | None:
    """Resolve ``name`` in ``schema`` to its canonical qualified name."""
    try:
        return schema.column(name).qualified_name
    except Exception:
        return None


class _RegionPlanner:
    """Single pass over the partitioned region choosing per-leaf shard
    specs and per-join partition-wise vs broadcast execution."""

    def __init__(self, region: Operator):
        self.region = region
        # id(leaf op) -> ("hash", canonical column) | ("rows",) | ("broadcast",)
        self.leaf_specs: dict[int, tuple] = {}
        self.broadcast_builds: set[int] = set()  # id(join) with replicated build
        self.replicated: set[int] = set()  # id(op) inside a replicated subtree

    def plan(self) -> None:
        self._plan(self.region)
        for op in walk(self.region):
            if isinstance(op, _LEAF_TYPES) and id(op) not in self.leaf_specs:
                self.leaf_specs[id(op)] = ("rows",)

    def _plan(self, op: Operator) -> set[str]:
        """Returns the canonical columns ``op``'s output is co-partitioned on."""
        if isinstance(op, _LEAF_TYPES):
            spec = self.leaf_specs.get(id(op))
            return {spec[1]} if spec and spec[0] == "hash" else set()
        if isinstance(op, _CHAIN_TYPES):
            return self._plan(op.children()[0])
        if isinstance(op, Project):
            keys = self._plan(op.child)
            return {k for k in keys if self._project_passes(op, k)}
        if isinstance(op, HashJoin):
            return self._plan_join(op)
        raise FragmentationError(
            f"{op.op_name} is not supported inside a partitioned region"
        )

    def _plan_join(self, join: HashJoin) -> set[str]:
        probe_keys = self._plan(join.probe_child)
        partition_wise = False
        probe_canon = build_canon = None
        if len(join.probe_keys) == 1:
            probe_canon = _canon(join.probe_child.output_schema, join.probe_keys[0])
            build_canon = _canon(join.build_child.output_schema, join.build_keys[0])
        if probe_canon is not None and build_canon is not None:
            probe_ok = probe_canon in probe_keys or self._try_key_partition(
                join.probe_child, probe_canon
            )
            if probe_ok and self._try_key_partition(join.build_child, build_canon):
                partition_wise = True
        if not partition_wise:
            self.broadcast_builds.add(id(join))
            for op in walk(join.build_child):
                self.replicated.add(id(op))
                if isinstance(op, _LEAF_TYPES):
                    self.leaf_specs[id(op)] = ("broadcast",)
                if isinstance(op, HashJoin):
                    self.broadcast_builds.add(id(op))
            # Output rows follow the probe side's existing partitioning.
            out_schema = join.output_schema
            return {k for k in probe_keys if _canon(out_schema, k) == k}
        out_keys = set()
        out_schema = join.output_schema
        candidates = [probe_canon]
        # An outer join NULL-pads unmatched build columns, which breaks the
        # build key's co-partition property downstream; semi/anti outputs
        # carry no build columns at all.
        if join.join_type == "inner":
            candidates.append(build_canon)
        for key in candidates:
            if _canon(out_schema, key) == key:
                out_keys.add(key)
        return out_keys

    @staticmethod
    def _project_passes(project: Project, key: str) -> bool:
        for spec in project.columns:
            if isinstance(spec, str):
                col = _canon(project.child.output_schema, spec)
                if col == key:
                    return True
        return False

    def _try_key_partition(self, op: Operator, key: str) -> bool:
        """Trace ``key`` through a scan chain and hash-assign its leaf."""
        cur = op
        while True:
            if isinstance(cur, _LEAF_TYPES):
                if _canon(cur.output_schema, key) != key:
                    return False
                existing = self.leaf_specs.get(id(cur))
                if existing is not None and existing != ("hash", key):
                    return False
                self.leaf_specs[id(cur)] = ("hash", key)
                return True
            if isinstance(cur, _CHAIN_TYPES):
                cur = cur.children()[0]
                continue
            if isinstance(cur, Project):
                if not self._project_passes(cur, key):
                    return False
                cur = cur.child
                continue
            return False


# -- fragment plan -----------------------------------------------------------------


class FragmentPlan:
    """The compiled split: per-partition fragment factory + merge recipe.

    Fragments are built fresh on every :meth:`build_fragment` call (an
    operator tree is single-use), while table shards are computed once and
    cached. ``node_map`` translates a fragment's pre-order node ids to the
    serial plan's; it is identical across partitions because every
    fragment is the same structural clone.
    """

    def __init__(
        self,
        serial_root: Operator,
        num_partitions: int,
        region: Operator,
        steps: tuple,
        wrap: tuple | None,
        planner: _RegionPlanner,
    ):
        self.serial_root = serial_root
        self.num_partitions = num_partitions
        self._region = region
        self.steps = steps
        self._wrap = wrap
        self._planner = planner
        self._shards: dict[int, list[Table]] = {}
        # Re-keyed onto serial node ids for the wire protocol.
        self.broadcast_builds = frozenset(
            op.node_id for op in walk(region) if id(op) in planner.broadcast_builds
        )
        self.replicated_nodes = frozenset(
            op.node_id for op in walk(region) if id(op) in planner.replicated
        )
        self.partition_columns = {
            op.node_id: spec[1]
            for op in walk(region)
            if isinstance(op, _LEAF_TYPES)
            for spec in (planner.leaf_specs[id(op)],)
            if spec[0] == "hash"
        }
        fragment, pairs = self._clone_with_pairs(0)
        validate_plan(fragment)
        self.node_map: dict[int, int] = {
            clone.node_id: serial.node_id for serial, clone in pairs
        }

    # -- shards -----------------------------------------------------------------

    def _shard(self, leaf: Operator, p: int) -> Table:
        spec = self._planner.leaf_specs[id(leaf)]
        if spec[0] == "broadcast":
            return leaf.table
        shards = self._shards.get(id(leaf))
        if shards is None:
            if spec[0] == "hash":
                shards = Partitioner(self.num_partitions, "hash").partition(
                    leaf.table, spec[1]
                )
            else:
                shards = Partitioner(self.num_partitions, "rows").partition(leaf.table)
            self._shards[id(leaf)] = shards
        return shards[p]

    # -- cloning ----------------------------------------------------------------

    def build_fragment(self, p: int) -> Operator:
        """A fresh executable fragment for partition ``p``."""
        fragment, _pairs = self._clone_with_pairs(p)
        return fragment

    def _clone_with_pairs(
        self, p: int
    ) -> tuple[Operator, list[tuple[Operator, Operator]]]:
        pairs: list[tuple[Operator, Operator]] = []

        def clone(op: Operator) -> Operator:
            if isinstance(op, SeqScan):
                new: Operator = SeqScan(self._shard(op, p))
            elif isinstance(op, IndexScan):
                new = IndexScan(self._shard(op, p), op.key, op.low, op.high)
            elif isinstance(op, SampleScan):
                new = SampleScan(self._shard(op, p), op.fraction, op.seed)
            elif isinstance(op, Filter):
                new = Filter(clone(op.child), op.predicate)
            elif isinstance(op, Project):
                new = Project(clone(op.child), op.columns)
            elif isinstance(op, Sort):
                new = Sort(clone(op.child), op.keys, op.descending)
            elif isinstance(op, Materialize):
                new = Materialize(clone(op.child))
            elif isinstance(op, HashJoin):
                build = clone(op.build_child)
                probe = clone(op.probe_child)
                new = HashJoin(
                    build,
                    probe,
                    op.build_keys,
                    op.probe_keys,
                    num_partitions=op.num_partitions,
                    memory_partitions=op.memory_partitions,
                    join_type=op.join_type,
                )
            else:  # pragma: no cover - planner already rejected these
                raise FragmentationError(f"cannot clone {op.op_name}")
            pairs.append((op, new))
            return new

        root = clone(self._region)
        if self._wrap is not None:
            serial_op = self._wrap[1]
            if self._wrap[0] == "distinct":
                root = Distinct(root)
            else:
                cls = type(serial_op)
                root = cls(root, serial_op.group_by, self._wrap[2])
            pairs.append((serial_op, root))
        return root, pairs

    # -- merge ------------------------------------------------------------------

    def merge_rows(self, rows: list[tuple]) -> list[tuple]:
        """Apply the peeled coordinator steps, innermost first."""
        for step in reversed(self.steps):
            rows = step.apply(rows)
        return rows

    def describe(self) -> str:
        kinds = [type(s).__name__ for s in self.steps]
        return (
            f"fragments(P={self.num_partitions}, "
            f"broadcast_joins={len(self.broadcast_builds)}, "
            f"merge=[{', '.join(kinds) or 'union'}])"
        )


# -- compiler ----------------------------------------------------------------------


def compile_fragments(root: Operator, num_partitions: int) -> FragmentPlan:
    """Split ``root`` into ``num_partitions`` fragments + a merge recipe.

    The serial plan is validated (node ids assigned) but never executed or
    mutated; fragments clone it. Raises :class:`FragmentationError` when an
    exact split does not exist — callers are expected to fall back to
    serial execution.
    """
    if num_partitions < 1:
        raise FragmentationError(f"num_partitions must be >= 1, got {num_partitions}")
    validate_plan(root)
    steps: list = []
    wrap: tuple | None = None
    cur = root
    while True:
        if isinstance(cur, Limit):
            raise FragmentationError(
                "LIMIT truncates in serial emit order, which shards cannot "
                "reproduce"
            )
        if isinstance(cur, Sort):
            schema = cur.output_schema
            steps.append(
                SortStep(
                    tuple(schema.index_of(k) for k in cur.keys), cur.descending
                )
            )
            cur = cur.child
            continue
        if isinstance(cur, Materialize):
            cur = cur.child
            continue
        if isinstance(cur, Project) and any(
            isinstance(op, (Distinct, _AggregateBase)) for op in walk(cur.child)
        ):
            # A projection above a blocking merge root runs coordinator-side
            # on the merged rows; one below stays in the partitioned region.
            steps.append(ProjectStep.from_operator(cur))
            cur = cur.child
            continue
        if isinstance(cur, Distinct):
            steps.append(DistinctStep())
            wrap = ("distinct", cur)
            cur = cur.child
            break
        if isinstance(cur, _AggregateBase):
            partials, finals = _decompose_aggregates(cur.aggregates)
            steps.append(AggregateStep(len(cur.group_by), finals))
            wrap = (type(cur).op_name, cur, partials)
            cur = cur.child
            break
        break
    region = cur
    for op in walk(region):
        if isinstance(op, (Distinct, _AggregateBase, Limit)):
            raise FragmentationError(
                f"{op.op_name} below the merge root is partition-dependent"
            )
    planner = _RegionPlanner(region)
    planner.plan()
    return FragmentPlan(root, num_partitions, region, tuple(steps), wrap, planner)


def try_compile(root: Operator, num_partitions: int) -> FragmentPlan | None:
    """``compile_fragments`` that answers None instead of raising."""
    try:
        return compile_fragments(root, num_partitions)
    except FragmentationError:
        return None
