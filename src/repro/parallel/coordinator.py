"""The coordinator: spawn workers, pump their pipes, merge rows + progress.

One :class:`Coordinator` drives one fragmented query. Two backends:

* ``"process"`` — one ``multiprocessing`` worker per partition (fork
  context where available), each running
  :func:`repro.parallel.worker.worker_main` over its fragment. The
  coordinator multiplexes the receive pipes with ``connection.wait`` —
  it never blocks indefinitely on a single worker, which is what makes a
  dead worker a handled event instead of a hang.
* ``"inline"`` — fragments run sequentially in the coordinator process
  through the identical message protocol. Deterministic and fork-free:
  the differential tests sweep hundreds of plans through it, and it is
  the degraded fallback when spawning is unavailable.

Worker death is first-class: a pipe EOF before ``done`` means the worker
died (e.g. the ``worker.exec`` hard-kill fault, a real crash, an OOM
kill). With ``degrade=True`` the coordinator discards that worker's
partial rows and progress, re-runs its fragment inline, and marks the
query degraded; with ``degrade=False`` the query fails cleanly. Either
way the coordinator terminates every remaining worker before reporting a
terminal state — no leaked processes, no hung pipes. The ``worker.spawn``
fault site is probed before each spawn and degrades the same way.

Lint scope: this module is *coordinator* code — it never drives a
``TickBus`` (no ``tick``/``tick_n``, no ``.count`` writes; machine-checked
by lint R001's coordinator-package rule). All execution ticking happens
inside workers.
"""

from __future__ import annotations

import time
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait

from repro.faults.plan import STALL, SITE_WORKER_SPAWN, FaultPlan
from repro.parallel.delta import ProgressDelta
from repro.parallel.fragments import FragmentPlan
from repro.parallel.monitor import PartitionedProgressMonitor
from repro.parallel.worker import (
    WorkerKilled,
    WorkerTask,
    run_fragment,
    worker_main,
)

__all__ = ["Coordinator", "ParallelExecutionError", "ParallelResult", "WorkerKilled"]

BACKENDS = ("process", "inline")


class ParallelExecutionError(RuntimeError):
    """The parallel run failed (worker error, spawn failure, cancellation)."""


class ParallelResult:
    """What a completed parallel run produced."""

    __slots__ = (
        "rows",
        "row_count",
        "raw_row_count",
        "wall_time_s",
        "monitor",
        "plan",
        "operator_counts",
        "degraded",
        "degraded_reason",
    )

    def __init__(
        self,
        rows: list[tuple],
        raw_row_count: int,
        wall_time_s: float,
        monitor: PartitionedProgressMonitor,
        plan: FragmentPlan,
    ):
        self.rows = rows
        self.row_count = len(rows)
        self.raw_row_count = raw_row_count
        self.wall_time_s = wall_time_s
        self.monitor = monitor
        self.plan = plan
        snap = monitor.snapshot()
        self.degraded = snap.degraded
        self.degraded_reason = snap.degraded_reason
        self.operator_counts = monitor.merged_counters()


class _InlineConn:
    """A ``send``-only shim: routes worker messages straight back into the
    coordinator's dispatcher (the inline backend's 'pipe')."""

    __slots__ = ("_coordinator", "_worker_id")

    def __init__(self, coordinator: "Coordinator", worker_id: int):
        self._coordinator = coordinator
        self._worker_id = worker_id

    def send(self, message: tuple) -> None:
        self._coordinator._dispatch(self._worker_id, message)


class Coordinator:
    """Drive one fragmented plan to completion across P workers.

    Use :meth:`run` for run-to-completion semantics, or the nonblocking
    triple :meth:`start` / :meth:`pump` / :meth:`finished` plus
    :meth:`result` for quantum-stepped integration (sessions).
    """

    def __init__(
        self,
        plan: FragmentPlan,
        backend: str = "process",
        mode: str = "once",
        tick_interval: int = 1000,
        batch_size: int = 1024,
        delta_every: int = 4096,
        faults: FaultPlan | None = None,
        degrade: bool = True,
        on_progress=None,
        priors: dict[str, tuple[float, float]] | None = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.plan = plan
        self.backend = backend
        self.mode = mode
        self.tick_interval = tick_interval
        self.batch_size = batch_size
        self.delta_every = delta_every
        self.faults = faults
        self.degrade = degrade
        self.on_progress = on_progress
        # History-seeded ensemble priors, forwarded to every worker task
        # (None = ensemble off; {} = cold-start; see WorkerTask.priors).
        self.priors = priors
        self.monitor = PartitionedProgressMonitor(plan.num_partitions)
        self.error: str | None = None
        self.cancelled = False
        self._started_at: float | None = None
        self._rows_by_worker: dict[int, list[tuple]] = {
            p: [] for p in range(plan.num_partitions)
        }
        self._done_workers: set[int] = set()
        self._procs: dict[int, object] = {}
        self._pending: dict[object, int] = {}  # recv conn -> worker id
        self._inline_queue: list[int] = []
        self._ctx = None
        self._started = False

    # -- task construction -------------------------------------------------------

    def _task(self, worker_id: int, with_faults: bool = True) -> WorkerTask:
        faults = self.faults if with_faults else None
        return WorkerTask(
            worker_id=worker_id,
            fragment=self.plan.build_fragment(worker_id),
            node_map=self.plan.node_map,
            broadcast_builds=self.plan.broadcast_builds,
            replicated_nodes=self.plan.replicated_nodes,
            mode=self.mode,
            tick_interval=self.tick_interval,
            batch_size=self.batch_size,
            delta_every=self.delta_every,
            # Per-worker fault streams: same schedule shape, decorrelated
            # opportunity draws, reproducible from (seed, worker_id).
            fault_seed=(faults.seed + worker_id) if faults is not None else 0,
            fault_specs=faults.specs if faults is not None else (),
            priors=self.priors,
        )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Launch the run (spawn workers / queue inline fragments)."""
        if self._started:
            raise RuntimeError("coordinator already started")
        self._started = True
        self._started_at = time.perf_counter()
        if self.backend == "inline":
            self._inline_queue = list(range(self.plan.num_partitions))
            return
        self._ctx = get_context(self._start_method())
        for worker_id in range(self.plan.num_partitions):
            self._spawn(worker_id)

    @staticmethod
    def _start_method() -> str:
        # fork is dramatically cheaper (no re-import, no re-pickle of the
        # parent) and available on the POSIX platforms this targets.
        import multiprocessing

        return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"

    def _spawn(self, worker_id: int) -> None:
        if self.faults is not None:
            spec = self.faults.check(SITE_WORKER_SPAWN, detail=f"worker {worker_id}")
            if spec is not None:
                if spec.kind == STALL:
                    time.sleep(spec.delay_s)
                else:
                    self._spawn_failed(worker_id)
                    return
        try:
            recv_conn, send_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=worker_main,
                args=(send_conn, self._task(worker_id)),
                daemon=True,
                name=f"repro-worker-{worker_id}",
            )
            proc.start()
            send_conn.close()
        except Exception:  # noqa: BLE001 - spawn failure degrades like a fault
            self._spawn_failed(worker_id)
            return
        self._procs[worker_id] = proc
        self._pending[recv_conn] = worker_id

    def _spawn_failed(self, worker_id: int) -> None:
        if not self.degrade:
            self._fail(f"worker {worker_id} failed to spawn")
            return
        self.monitor.mark_degraded(
            f"worker {worker_id} failed to spawn; fragment ran inline"
        )
        self._run_inline(worker_id, with_faults=False)

    # -- message pumping ---------------------------------------------------------

    def pump(self, timeout: float = 0.05) -> bool:
        """Process pending worker traffic; returns True if anything moved.

        Never blocks longer than ``timeout``. Safe to call after the run
        finished (returns False).
        """
        if not self._started:
            raise RuntimeError("coordinator not started")
        if self.backend == "inline":
            if not self._inline_queue or self.finished:
                return False
            worker_id = self._inline_queue.pop(0)
            self._run_inline(worker_id, with_faults=True)
            return True
        if not self._pending:
            return False
        progressed = False
        for conn in _conn_wait(list(self._pending), timeout):
            worker_id = self._pending.get(conn)
            if worker_id is None:
                # A failure earlier in this very loop shut everything down.
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._retire(conn)
                if (
                    worker_id not in self._done_workers
                    and self.error is None
                    and not self.cancelled
                ):
                    progressed = True
                    self._worker_died(worker_id)
                continue
            progressed = True
            self._dispatch(worker_id, message)
            if message[0] in ("done", "error"):
                self._retire(conn)
        return progressed

    def _retire(self, conn) -> None:
        worker_id = self._pending.pop(conn, None)
        try:
            conn.close()
        except Exception:  # noqa: BLE001 - already-broken pipes close noisily
            pass
        proc = self._procs.get(worker_id)
        if proc is not None:
            proc.join(timeout=5)

    def _dispatch(self, worker_id: int, message: tuple) -> None:
        kind = message[0]
        if kind == "rows":
            self._rows_by_worker[worker_id].extend(message[1])
        elif kind == "delta":
            self._observe(message[1])
        elif kind == "done":
            self._observe(message[1])
            self._done_workers.add(worker_id)
        elif kind == "error":
            self._fail(f"worker {worker_id}: {message[1]}")
        else:  # pragma: no cover - protocol violation
            self._fail(f"worker {worker_id}: unknown message {kind!r}")

    def _observe(self, delta: ProgressDelta) -> None:
        self.monitor.observe(delta)
        if self.on_progress is not None:
            self.on_progress(self.monitor.snapshot())

    # -- failure handling --------------------------------------------------------

    def _worker_died(self, worker_id: int) -> None:
        """EOF before ``done``: the worker process is gone."""
        if not self.degrade:
            self._fail(f"worker {worker_id} died before completing its fragment")
            return
        self.monitor.mark_degraded(
            f"worker {worker_id} died; fragment re-ran inline on the coordinator"
        )
        # Partial rows and progress from the dead worker are unusable: the
        # fragment restarts from scratch.
        self._rows_by_worker[worker_id] = []
        self.monitor.drop_worker(worker_id)
        # Re-run without faults: the fragment already absorbed its fault
        # schedule once; the fallback's job is to complete, not to re-roll
        # the dice (a second kill here would loop forever).
        self._run_inline(worker_id, with_faults=False)

    def _run_inline(self, worker_id: int, with_faults: bool) -> None:
        task = self._task(worker_id, with_faults=with_faults)
        conn = _InlineConn(self, worker_id)
        try:
            run_fragment(conn, task, hard_kill=False)
        except WorkerKilled:
            # Inline stand-in for the process backend's silent death.
            self._worker_died(worker_id)
        except Exception as exc:  # noqa: BLE001 - reported, run fails cleanly
            self._fail(f"worker {worker_id}: {type(exc).__name__}: {exc}")
        else:
            self._done_workers.add(worker_id)

    def _fail(self, message: str) -> None:
        if self.error is None:
            self.error = message
        self._shutdown_workers()

    def cancel(self) -> None:
        """Terminate every worker and mark the run cancelled."""
        self.cancelled = True
        self._inline_queue = []
        self._shutdown_workers()

    def _shutdown_workers(self) -> None:
        self._inline_queue = []
        for conn in list(self._pending):
            self._pending.pop(conn, None)
            try:
                conn.close()
            except Exception:  # noqa: BLE001
                pass
        for proc in self._procs.values():
            try:
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5)
            except Exception:  # noqa: BLE001
                pass

    # -- completion --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        if not self._started:
            return False
        if self.error is not None or self.cancelled:
            return True
        if self.backend == "inline":
            return not self._inline_queue and len(self._done_workers) == (
                self.plan.num_partitions
            )
        return not self._pending and len(self._done_workers) == (
            self.plan.num_partitions
        )

    def result(self) -> ParallelResult:
        """Merged rows + merged monitor. Only valid once finished."""
        if not self.finished:
            raise RuntimeError("parallel run still in flight")
        if self.cancelled and self.error is None:
            raise ParallelExecutionError("parallel run cancelled")
        if self.error is not None:
            raise ParallelExecutionError(self.error)
        raw: list[tuple] = []
        for worker_id in sorted(self._rows_by_worker):
            raw.extend(self._rows_by_worker[worker_id])
        merged = self.plan.merge_rows(raw)
        wall = time.perf_counter() - (self._started_at or time.perf_counter())
        return ParallelResult(merged, len(raw), wall, self.monitor, self.plan)

    @property
    def raw_row_count(self) -> int:
        return sum(len(rows) for rows in self._rows_by_worker.values())

    def run(self, poll_s: float = 0.05) -> ParallelResult:
        """Run to completion (start + pump loop + result)."""
        if not self._started:
            self.start()
        while not self.finished:
            self.pump(poll_s)
        return self.result()
