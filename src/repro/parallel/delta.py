"""Progress-delta wire format and the merge algebra over estimator state.

Workers do not ship point estimates — they ship the *sufficient
statistics* their estimators accumulate (PF-OLA's observation: online
estimators parallelize exactly when their state is mergeable). The
coordinator folds per-worker statistics into merged state and derives the
global estimate from that merged state:

* ONCE join estimators: ``Σ sum_counts / Σ t × Σ probe_total`` — the
  proper combined ratio estimator, not a sum of per-partition point
  estimates — which degenerates to the exact join size ``Σ sum_counts``
  once every worker has finished its probe pass.
* chain estimators: the same, per level.
* GEE/MLE group estimators: frequency-histogram counts sum across workers
  (each input tuple is observed on exactly one worker), and the hybrid
  chooser reruns over the merged histogram.

Build-side frequency histograms come in two merge modes, decided at plan
fragmentation time (:mod:`repro.parallel.fragments`):

* **partitioned** build (partition-wise join): every key lives in exactly
  one partition, so per-worker histograms have disjoint key sets and merge
  by summation — the merged histogram is bit-identical to the serial one.
* **replicated** build (broadcast join): every worker holds the *full*
  build histogram, so the merge takes the first copy (they are identical).

Probe-side statistics (``t``, ``sum_counts``/``sums``, interval moment
sums) always merge by summation: probe streams are partitioned, never
replicated, so each probe tuple contributes on exactly one worker.

Everything here must cross a ``multiprocessing`` pipe, so deltas are
plain frozen dataclasses of picklable builtins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.distinct import (
    DEFAULT_TAU,
    GEEEstimator,
    GroupFrequencyState,
    MLEEstimator,
)

__all__ = [
    "EstimatorDelta",
    "MergedChain",
    "MergedGroup",
    "MergedOnce",
    "ProgressDelta",
    "merge_estimator_deltas",
]


@dataclass(frozen=True, slots=True)
class EstimatorDelta:
    """One estimator's sufficient statistics, re-keyed to serial node ids.

    ``kind`` is ``"once"``, ``"chain"`` or ``"group"``. ``node_ids`` holds
    the serial plan node ids the statistics anchor to — one entry for
    once/group, the chain's joins bottom-up for chains. ``hists`` carries
    one ``{key: count}`` dict per histogram (the single build histogram
    for once, one per chain level, the group-value histogram for group);
    ``replicated`` carries the matching merge-mode flag per histogram
    (group histograms are never replicated). ``sums`` is ``(sum_counts,)``
    for once, the per-level Σ for chains, and empty for group.
    ``interval_sums`` is ``(count, Σx, Σx²)`` triples feeding
    :meth:`repro.core.confidence.MeanEstimateInterval.merge_sums`.
    """

    kind: str
    node_ids: tuple[int, ...]
    t: int = 0
    sums: tuple[int, ...] = ()
    hists: tuple[dict, ...] = ()
    replicated: tuple[bool, ...] = ()
    interval_sums: tuple[tuple[int, float, float], ...] = ()
    probe_total: float = 0.0
    total: float = 0.0
    exact: bool = False
    # True when the estimator's whole anchor subtree is replicated (a join
    # nested inside a broadcast build): every worker then observes the same
    # full streams, so ALL its statistics merge take-first, not by sum.
    stats_replicated: bool = False

    @property
    def key(self) -> tuple:
        """Identity of the serial estimator these statistics belong to."""
        return (self.kind, self.node_ids)


@dataclass(frozen=True, slots=True)
class ProgressDelta:
    """One worker's cumulative progress message.

    Deltas are *cumulative snapshots*, not increments: ``counters`` and
    ``totals`` map serial node ids to the worker's current ``K_i`` and
    local ``N̂_i``, and ``estimators`` carries full sufficient statistics.
    The coordinator keeps only the latest delta per worker (guarded by
    ``seq``), which makes the protocol idempotent and loss-tolerant — a
    dropped intermediate delta costs staleness, never correctness.
    """

    worker_id: int
    seq: int
    counters: dict[int, float] = field(default_factory=dict)
    totals: dict[int, float] = field(default_factory=dict)
    estimators: tuple[EstimatorDelta, ...] = ()
    done: bool = False
    degraded: bool = False
    degraded_reason: str | None = None
    # Robust-ensemble fields (None unless the worker ran history-enabled):
    # the worker's combined progress fraction, its per-candidate weights and
    # prior seeding; ``estimator_errors``/``estimator_checkpoints`` carry
    # the final per-candidate MSEs scored against the fragment's true total
    # and ride only on the terminal ``done`` delta.
    ensemble: float | None = None
    weights: dict[str, float] | None = None
    prior_source: str | None = None
    estimator_errors: dict[str, float] | None = None
    estimator_checkpoints: int = 0


# -- merged estimator state --------------------------------------------------------


class MergedOnce:
    """Coordinator-side merged state of one ONCE join estimator."""

    __slots__ = ("node_id", "t", "sum_counts", "counts", "interval_sums",
                 "probe_total", "exact", "_replica_folded")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.t = 0
        self.sum_counts = 0
        self.counts: dict = {}
        self.interval_sums = (0, 0.0, 0.0)
        self.probe_total = 0.0
        self.exact = True  # AND-folded: vacuously true until a delta lands
        self._replica_folded = False

    def fold(self, delta: EstimatorDelta) -> None:
        if delta.stats_replicated:
            if self._replica_folded:
                return
            self._replica_folded = True
        self.t += delta.t
        self.sum_counts += delta.sums[0] if delta.sums else 0
        _fold_hist(self.counts, delta.hists[0], delta.replicated[0])
        if delta.interval_sums:
            c, sx, sxx = delta.interval_sums[0]
            mc, msx, msxx = self.interval_sums
            self.interval_sums = (mc + c, msx + sx, msxx + sxx)
        self.probe_total += delta.probe_total
        self.exact = self.exact and delta.exact

    def estimate(self) -> float:
        if self.exact:
            return float(self.sum_counts)
        if self.t == 0:
            return 0.0
        return self.sum_counts / self.t * max(self.probe_total, self.t)


class MergedChain:
    """Coordinator-side merged state of one hash-join chain estimator."""

    __slots__ = ("node_ids", "k", "t", "sums", "hists", "probe_total",
                 "interval_sums", "exact", "_replica_folded")

    def __init__(self, node_ids: tuple[int, ...]):
        self.node_ids = node_ids
        self.k = len(node_ids)
        self.t = 0
        self.sums = [0] * self.k
        self.hists: list[dict] = [{} for _ in range(self.k)]
        self.interval_sums = [(0, 0.0, 0.0)] * self.k
        self.probe_total = 0.0
        self.exact = True
        self._replica_folded = False

    def fold(self, delta: EstimatorDelta) -> None:
        if delta.stats_replicated:
            if self._replica_folded:
                return
            self._replica_folded = True
        self.t += delta.t
        for m in range(self.k):
            self.sums[m] += delta.sums[m]
            _fold_hist(self.hists[m], delta.hists[m], delta.replicated[m])
            if delta.interval_sums:
                c, sx, sxx = delta.interval_sums[m]
                mc, msx, msxx = self.interval_sums[m]
                self.interval_sums[m] = (mc + c, msx + sx, msxx + sxx)
        self.probe_total += delta.probe_total
        self.exact = self.exact and delta.exact

    def estimate_level(self, m: int) -> float:
        """Merged output-size estimate of chain join level ``m``."""
        if self.exact:
            return float(self.sums[m])
        if self.t == 0:
            return 0.0
        return self.sums[m] / self.t * max(self.probe_total, self.t)

    def estimate_for(self, node_id: int) -> float | None:
        for m, nid in enumerate(self.node_ids):
            if nid == node_id:
                return self.estimate_level(m)
        return None


class MergedGroup:
    """Coordinator-side merged state of one GEE/MLE group-count estimator.

    Group histograms always sum-merge (every aggregate-input tuple is
    observed on exactly one worker), so the merged frequency histogram is
    bit-identical to the serial one and the serial hybrid chooser (γ²
    against τ, then GEE or MLE) reruns over reconstructed merged state.
    Note the *global* distinct count this estimates is NOT the sum of the
    workers' partial-aggregate output sizes — a group key can appear in
    several partitions — which is why per-node work totals sum while this
    statistic merges.
    """

    __slots__ = ("node_id", "counts", "total", "exact")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.counts: dict = {}
        self.total = 0.0
        self.exact = True

    def fold(self, delta: EstimatorDelta) -> None:
        _fold_hist(self.counts, delta.hists[0], replicated=False)
        self.total += delta.total
        self.exact = self.exact and delta.exact

    @property
    def t(self) -> int:
        return sum(self.counts.values())

    def estimate(self) -> float:
        if self.exact:
            return float(len(self.counts))
        if not self.counts:
            return 0.0
        state = GroupFrequencyState()
        for value, weight in self.counts.items():
            state.observe(value, weight)
        total = max(self.total, float(state.t))
        if state.gamma_squared <= DEFAULT_TAU:
            return MLEEstimator(state).estimate(total)
        return GEEEstimator(state).estimate(total)


def _fold_hist(merged: dict, counts: dict, replicated: bool) -> None:
    if replicated:
        # Full copies on every worker: take the first, verify nothing on
        # later folds (copies are identical by construction).
        if not merged:
            merged.update(counts)
        return
    for key, count in counts.items():
        merged[key] = merged.get(key, 0) + count


_MERGED_TYPES = {"once": MergedOnce, "chain": MergedChain, "group": MergedGroup}


def merge_estimator_deltas(
    deltas_per_worker: dict[int, tuple[EstimatorDelta, ...]],
) -> dict[tuple, MergedOnce | MergedChain | MergedGroup]:
    """Fold every worker's latest estimator statistics into merged state.

    Returns ``{(kind, node_ids): merged}``. Workers that have not yet
    reported a given estimator simply contribute nothing; ``exact`` only
    survives if *every* reporting worker is exact (and the coordinator
    additionally requires all workers done before trusting exactness —
    see :class:`repro.parallel.monitor.PartitionedProgressMonitor`).
    """
    merged: dict[tuple, MergedOnce | MergedChain | MergedGroup] = {}
    for _worker_id, deltas in sorted(deltas_per_worker.items()):
        for delta in deltas:
            state = merged.get(delta.key)
            if state is None:
                cls = _MERGED_TYPES[delta.kind]
                arg = delta.node_ids if delta.kind == "chain" else delta.node_ids[0]
                state = cls(arg)
                merged[delta.key] = state
            state.fold(delta)
    return merged
