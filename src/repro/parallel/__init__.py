"""``repro.parallel`` — partitioned multi-process execution with
distributed progress aggregation.

The subsystem splits a serial physical plan into per-partition fragments
(:mod:`~repro.parallel.fragments`), runs each on its own worker process
with the unchanged serial executor + progress stack
(:mod:`~repro.parallel.worker`), streams mergeable progress deltas back
(:mod:`~repro.parallel.delta`), folds them into one monotone global
progress view (:mod:`~repro.parallel.monitor`) under a coordinator that
treats worker death as a first-class fault
(:mod:`~repro.parallel.coordinator`), and exposes the whole run behind
the serial session interface (:mod:`~repro.parallel.session`). See
docs/PARALLEL.md.
"""

from repro.parallel.coordinator import (
    Coordinator,
    ParallelExecutionError,
    ParallelResult,
)
from repro.parallel.delta import (
    EstimatorDelta,
    MergedChain,
    MergedGroup,
    MergedOnce,
    ProgressDelta,
    merge_estimator_deltas,
)
from repro.parallel.fragments import (
    FragmentationError,
    FragmentPlan,
    compile_fragments,
    try_compile,
)
from repro.parallel.monitor import PartitionedProgressMonitor
from repro.parallel.session import ParallelQuerySession
from repro.parallel.worker import WorkerKilled, WorkerTask, run_fragment

__all__ = [
    "Coordinator",
    "EstimatorDelta",
    "FragmentPlan",
    "FragmentationError",
    "MergedChain",
    "MergedGroup",
    "MergedOnce",
    "ParallelExecutionError",
    "ParallelQuerySession",
    "ParallelResult",
    "PartitionedProgressMonitor",
    "ProgressDelta",
    "WorkerKilled",
    "WorkerTask",
    "compile_fragments",
    "merge_estimator_deltas",
    "run_fragment",
    "try_compile",
]
