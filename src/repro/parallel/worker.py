"""The worker half of ``repro.parallel``: run one fragment, stream deltas.

A worker process owns one plan fragment end to end: its own ``TickBus``,
``ProgressMonitor`` (with the full estimator stack attached to the
fragment) and ``PlanCursor`` drain loop — the serial execution machinery,
unchanged, over one shard. What leaves the process is the wire protocol:

``("rows", [tuple, ...])``
    A fetched batch of result rows (fragment output, pre-merge).
``("delta", ProgressDelta)``
    Cumulative progress: per-operator ``K_i``/``N̂_i`` re-keyed to serial
    node ids, plus every estimator's sufficient statistics.
``("done", ProgressDelta)``
    The fragment is exhausted; the payload is the final delta (all
    estimators exact).
``("error", str)``
    The fragment raised; the message is the diagnosis. The worker exits
    nonzero afterwards.

Fault semantics (probed per fetch iteration at ``worker.exec``):
``stall`` sleeps ``delay_s``; ``error`` is a **hard kill** — the process
exits immediately with no farewell message, so the coordinator's
EOF-on-pipe handling is what gets exercised, exactly like a real worker
crash or OOM kill.

``FaultPlan`` itself is not picklable (it owns a mutex and live RNG
streams), so :class:`WorkerTask` carries ``(seed, specs)`` and the worker
rebuilds its own plan — same seed, same per-site streams, deterministic
firing per worker loop.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.core.progress import ProgressMonitor
from repro.executor.engine import PlanCursor, TickBus
from repro.executor.operators.base import Operator
from repro.executor.plan import walk
from repro.faults.plan import (
    SITE_WORKER_EXEC,
    STALL,
    FaultPlan,
    FaultSpec,
    TransientFault,
)
from repro.parallel.delta import EstimatorDelta, ProgressDelta

__all__ = ["WorkerKilled", "WorkerTask", "extract_delta", "worker_main"]

# Mirrors the serial session's bounded transient-retry budget: a
# TransientFault at the cursor boundary is reissued, not fatal, until the
# budget runs out.
MAX_TRANSIENT_RETRIES = 5


class WorkerKilled(RuntimeError):
    """Inline-backend stand-in for a hard worker kill (``os._exit``)."""


@dataclass(frozen=True)
class WorkerTask:
    """Everything a worker needs, in picklable form."""

    worker_id: int
    fragment: Operator
    node_map: dict[int, int]
    broadcast_builds: frozenset[int] = frozenset()
    replicated_nodes: frozenset[int] = frozenset()
    mode: str = "once"
    tick_interval: int = 1000
    batch_size: int = 1024
    # Minimum gnm ticks between two delta messages (flow control: deltas
    # carry full histograms, so they are throttled, not per-batch).
    delta_every: int = 4096
    fault_seed: int = 0
    fault_specs: tuple[FaultSpec, ...] = field(default_factory=tuple)
    # History-seeded ensemble priors ({name: (mse, n)}). None disables the
    # ensemble entirely; {} enables it cold-start. The store itself never
    # crosses the pipe — the coordinator resolves priors before spawning.
    priors: dict[str, tuple[float, float]] | None = None


def extract_delta(
    monitor: ProgressMonitor,
    task: WorkerTask,
    seq: int,
    done: bool,
) -> ProgressDelta:
    """Snapshot the fragment monitor into a cumulative wire delta.

    Everything is read under the monitor's sampling lock, so counters and
    estimator statistics form one consistent cut of the fragment's state.
    Fragment node ids translate to serial ids through ``task.node_map``;
    histograms get their merge-mode flags from the fragmentation plan
    (``broadcast_builds`` → replicated build histogram, ``replicated_nodes``
    → the whole estimator is a per-worker copy).
    """
    broadcast = task.broadcast_builds
    replicated = task.replicated_nodes
    with monitor._lock:
        counters: dict[int, float] = {}
        totals: dict[int, float] = {}
        for frag_id, (k_i, total) in monitor.operator_totals().items():
            sid = task.node_map.get(frag_id)
            if sid is not None:
                counters[sid] = k_i
                totals[sid] = total
        estimators: list[EstimatorDelta] = []
        manager = monitor.manager
        if manager is not None:
            ops = {id(op): op for op in walk(monitor.root)}
            for op_key, once in manager.join_estimators.items():
                op = ops.get(op_key)
                sid = task.node_map.get(op.node_id) if op is not None else None
                if sid is None:
                    continue
                interval = once._interval
                estimators.append(
                    EstimatorDelta(
                        "once",
                        (sid,),
                        t=once.t,
                        sums=(once.sum_counts,),
                        hists=(dict(once.histogram.counts),),
                        replicated=(sid in broadcast or sid in replicated,),
                        interval_sums=(
                            (interval.count, interval.sum_x, interval.sum_x_sq),
                        ),
                        probe_total=float(once.probe_total),
                        exact=once.exact,
                        stats_replicated=sid in replicated,
                    )
                )
            for chain in manager.chain_estimators:
                sids = tuple(
                    task.node_map.get(join.node_id) for join in chain.chain
                )
                if any(sid is None for sid in sids):
                    continue
                estimators.append(
                    EstimatorDelta(
                        "chain",
                        sids,
                        t=chain.t,
                        sums=tuple(chain.sums),
                        hists=tuple(dict(h.counts) for h in chain.base_hists),
                        replicated=tuple(
                            sid in broadcast or sid in replicated for sid in sids
                        ),
                        interval_sums=tuple(
                            (iv.count, iv.sum_x, iv.sum_x_sq)
                            for iv in chain._intervals
                        ),
                        probe_total=float(chain._probe_total()),
                        exact=chain.exact,
                        stats_replicated=sids[0] in replicated,
                    )
                )
            for op_key, group in manager.group_estimators.items():
                op = ops.get(op_key)
                sid = task.node_map.get(op.node_id) if op is not None else None
                if sid is None:
                    continue
                hybrid = group.hybrid
                estimators.append(
                    EstimatorDelta(
                        "group",
                        (sid,),
                        t=hybrid.state.t,
                        hists=(dict(hybrid.state.histogram.counts),),
                        replicated=(False,),
                        total=float(hybrid.total),
                        exact=hybrid.exact,
                    )
                )
        degraded = manager is not None and manager.degraded
        reason = manager.demotions[-1][1] if degraded else None
        ensemble = weights = prior_source = None
        est_errors: dict[str, float] | None = None
        est_checkpoints = 0
        if monitor.snapshots:
            last = monitor.snapshots[-1]
            ensemble = last.ensemble
            weights = last.weights
            prior_source = last.prior_source
        if done and monitor.ensemble is not None:
            # Terminal delta: score this fragment's ensemble trajectory
            # against the fragment's now-exact local total so the
            # coordinator can aggregate per-candidate errors across workers.
            est_errors, est_checkpoints = monitor.ensemble.final_errors(
                monitor.true_total()
            )
    return ProgressDelta(
        worker_id=task.worker_id,
        seq=seq,
        counters=counters,
        totals=totals,
        estimators=tuple(estimators),
        done=done,
        degraded=degraded,
        degraded_reason=reason,
        ensemble=ensemble,
        weights=weights,
        prior_source=prior_source,
        estimator_errors=est_errors,
        estimator_checkpoints=est_checkpoints,
    )


def run_fragment(conn, task: WorkerTask, hard_kill: bool = True) -> None:
    """The worker loop proper (also runnable in-process by the inline
    backend — ``conn`` only needs ``send``).

    ``hard_kill`` selects how a ``worker.exec`` error fault manifests:
    ``True`` (process backend) exits the process with no farewell message;
    ``False`` (inline backend) raises :class:`WorkerKilled`, the
    in-process stand-in the coordinator maps to the same death handling.
    """
    faults = (
        FaultPlan(task.fault_seed, task.fault_specs) if task.fault_specs else None
    )
    bus = TickBus(task.tick_interval)
    monitor = ProgressMonitor(
        task.fragment,
        mode=task.mode,
        bus=bus,
        resilient=True,
        faults=faults,
        priors=task.priors,
    )
    cursor = PlanCursor(task.fragment, bus, faults=faults)
    seq = 0
    last_count = 0
    first_sent = False
    retries_left = MAX_TRANSIENT_RETRIES
    cursor.open()
    while not cursor.exhausted:
        if faults is not None:
            spec = faults.check(SITE_WORKER_EXEC)
            if spec is not None:
                if spec.kind == STALL:
                    time.sleep(spec.delay_s)
                elif hard_kill:
                    # Hard kill: no message, no cleanup — the coordinator
                    # must survive a silent EOF on this pipe.
                    os._exit(3)
                else:
                    raise WorkerKilled(
                        f"worker {task.worker_id} killed at {SITE_WORKER_EXEC}"
                    )
        try:
            rows = cursor.fetch(task.batch_size)
        except TransientFault:
            # Same contract as the serial session: the transient boundary
            # fires before the pull enters the plan, so reissuing is sound.
            if retries_left <= 0:
                raise
            retries_left -= 1
            continue
        if rows:
            conn.send(("rows", rows))
        with bus.lock:
            # Uncontended in the single-threaded worker; taken anyway so
            # the bus counter protocol stays machine-checkable.
            count = bus.count
        if not first_sent or count - last_count >= task.delta_every:
            first_sent = True
            last_count = count
            seq += 1
            conn.send(("delta", extract_delta(monitor, task, seq, done=False)))
    # Close before the final delta: closing marks every pipeline finished,
    # so the totals in the "done" payload are the exact K_i values.
    cursor.close()
    # One terminal sample so the done delta's ensemble fields reflect the
    # finished fragment (harmless for plain monitors — the snapshot list is
    # worker-local).
    monitor.snapshot()
    seq += 1
    conn.send(("done", extract_delta(monitor, task, seq, done=True)))


def worker_main(conn, task: WorkerTask) -> None:
    """``multiprocessing`` entry point: run the fragment, report, exit."""
    try:
        run_fragment(conn, task)
        conn.close()
    except BaseException as exc:  # noqa: BLE001 - ship the diagnosis, then die
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            conn.close()
        except Exception:
            pass
        os._exit(1)
    os._exit(0)
