"""A scheduler-steppable session over a parallel (fragmented) run.

:class:`ParallelQuerySession` presents the exact control surface of
:class:`repro.server.session.QuerySession` — ``step`` / ``snapshot`` /
``remaining_work`` / ``results`` / ``cancel`` / ``add_listener`` plus the
same attribute set — so the :class:`~repro.server.scheduler.Scheduler`,
the workload view and the wire protocol drive serial and parallel queries
interchangeably. The difference is what a quantum means: a serial step
pulls ``quantum_rows`` from the plan cursor; a parallel step *pumps the
worker pipes once* (bounded by ``pump_timeout_s``), folds whatever
arrived into the :class:`~repro.parallel.monitor.
PartitionedProgressMonitor`, and publishes the merged snapshot. Workers
make progress between steps on their own — the quantum is how often the
coordinator *observes* them, which keeps one pool thread able to
time-slice many parallel queries exactly as it time-slices serial ones.

Result rows materialize only at the end: worker output is buffered
per-partition and the fragmentation plan's merge recipe (final aggregate,
global sort, distinct) runs when the last worker reports done. Until
then ``row_count`` reports raw fragment rows when the merge is a pure
concatenation, 0 otherwise (partial-aggregate rows are not result rows).
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable

from repro.common.locks import acquires, guarded_by
from repro.executor.operators.base import Operator
from repro.faults.plan import FaultPlan
from repro.parallel.coordinator import Coordinator
from repro.parallel.fragments import FragmentPlan
from repro.server.session import (
    TERMINAL_STATES,
    SessionSnapshot,
    SessionState,
)

__all__ = ["ParallelQuerySession"]

_session_ids = itertools.count(1)


class ParallelQuerySession:
    """A resumable, cancellable parallel execution of one fragmented plan.

    Parameters mirror :class:`~repro.server.session.QuerySession` where
    they mean the same thing (``name``/``session_id``/``row_cap``/
    ``timeout_s``/``faults``); parallel-specific knobs (``backend``,
    ``degrade``, worker batch/delta cadence) forward to the
    :class:`~repro.parallel.coordinator.Coordinator`.
    """

    # Lock discipline (machine-checked by repro.analysis.concurrency):
    # same split as the serial session — ``_step_lock`` serializes pump
    # and state transitions, ``_snap_lock`` covers observation state
    # touched by arbitrary reader threads.
    _guarded_by_ = {
        "_high_water": "_snap_lock",
        "_snap_seq": "_snap_lock",
    }
    _write_guarded_by_ = {
        "state": "_step_lock",
        "row_count": "_step_lock",
        "rows": "_step_lock",
        "error": "_step_lock",
        "started_at": "_step_lock",
        "finished_at": "_step_lock",
        "_deadline": "_step_lock",
        "_truncated": "_step_lock",
        "listeners": "_snap_lock",
    }

    def __init__(
        self,
        plan: Operator,
        fragments: FragmentPlan,
        name: str | None = None,
        session_id: str | None = None,
        mode: str = "once",
        backend: str = "process",
        row_cap: int = 10_000,
        timeout_s: float | None = None,
        faults: FaultPlan | None = None,
        degrade: bool = True,
        tick_interval: int = 1000,
        batch_size: int = 1024,
        delta_every: int = 4096,
        pump_timeout_s: float = 0.02,
        history=None,
        observed=None,
    ):
        if row_cap < 0:
            raise ValueError(f"row_cap must be >= 0, got {row_cap}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.session_id = session_id or f"p{next(_session_ids):04d}"
        self.name = name or self.session_id
        self.plan = plan
        self.fragments = fragments
        self.row_cap = row_cap
        self.timeout_s = timeout_s
        self.pump_timeout_s = pump_timeout_s
        # History-enabled parallel runs: priors are resolved once against
        # the *serial* plan's fingerprint and forwarded to every worker in
        # picklable form; the store itself never crosses a pipe.
        self.history = history
        self.observed = observed
        self.fingerprint = None
        priors = None
        if history is not None:
            from repro.robust.history import fingerprint_plan

            self.fingerprint = fingerprint_plan(plan)
            prior = history.prior(self.fingerprint.digest)
            priors = (
                {n: (ep.mse, ep.n) for n, ep in prior.estimators.items()}
                if prior is not None
                else {}
            )
        self.coordinator = Coordinator(
            fragments,
            backend=backend,
            mode=mode,
            tick_interval=tick_interval,
            batch_size=batch_size,
            delta_every=delta_every,
            faults=faults,
            degrade=degrade,
            priors=priors,
        )
        self.monitor = self.coordinator.monitor
        self.parallelism = fragments.num_partitions
        self.state = SessionState.PENDING
        self.row_count = 0
        self.rows: list[tuple] = []
        self.error: str | None = None
        self.created_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.retry_count = 0  # wire-format parity; worker retries stay worker-local
        self.listeners: tuple[
            Callable[["ParallelQuerySession", SessionSnapshot], None], ...
        ] = ()
        self._step_lock = threading.RLock()
        self._snap_lock = threading.Lock()
        self._cancel = threading.Event()
        self._cancel_reason: str | None = None
        self._deadline: float | None = None
        self._snap_seq = 0
        self._high_water = 0.0
        self._truncated = False

    # -- observation -------------------------------------------------------------

    @acquires("_snap_lock")
    def add_listener(
        self, listener: Callable[["ParallelQuerySession", SessionSnapshot], None]
    ) -> None:
        """Register a callback invoked with every published snapshot."""
        with self._snap_lock:
            self.listeners = (*self.listeners, listener)

    @guarded_by("_step_lock")
    def _publish(self) -> None:
        snap = self.snapshot()
        dead: list[Callable] = []
        for listener in self.listeners:
            try:
                listener(self, snap)
            except Exception:  # noqa: BLE001 - a broken watcher must not kill the query
                dead.append(listener)
        if dead:
            with self._snap_lock:
                self.listeners = tuple(
                    fn for fn in self.listeners if not any(fn is d for d in dead)
                )

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def elapsed_s(self) -> float:
        start = self.started_at if self.started_at is not None else self.created_at
        end = self.finished_at if self.finished_at is not None else time.monotonic()
        return max(end - start, 0.0)

    def remaining_work(self) -> float:
        """Live merged ``T̂(Q) − C(Q)`` for scheduler ranking."""
        if self.state in TERMINAL_STATES:
            return 0.0
        snap = self.monitor.snapshot()
        return max(snap.work_total_estimate - snap.work_done, 0.0)

    @acquires("_snap_lock")
    def snapshot(self) -> SessionSnapshot:
        """Current merged progress view, safe from any thread.

        Unlike the serial session there is no live plan to protect — the
        partitioned monitor is its own thread-safe fold of worker deltas —
        so this samples it directly.
        """
        state = self.state
        progress = self.monitor.snapshot()
        if state is SessionState.FINISHED:
            done = total = self.monitor.true_total()
            frac = 1.0
        else:
            done = progress.work_done
            total = progress.work_total_estimate
            frac = progress.progress
        with self._snap_lock:
            self._high_water = max(self._high_water, frac)
            self._snap_seq += 1
            seq = self._snap_seq
            high_water = self._high_water
        return SessionSnapshot(
            session_id=self.session_id,
            name=self.name,
            state=state.value,
            seq=seq,
            progress=high_water if state is not SessionState.FINISHED else 1.0,
            work_done=done,
            work_total_estimate=total,
            row_count=self.row_count,
            elapsed_s=self.elapsed_s(),
            error=self.error,
            degraded=progress.degraded,
            degraded_reason=progress.degraded_reason,
            retries=self.retry_count,
            ensemble=progress.ensemble,
            weights=progress.weights,
            prior_source=progress.prior_source,
        )

    def results(self) -> tuple[list[str], list[tuple], bool]:
        """``(columns, spooled rows, truncated?)`` for the fetch op."""
        columns = self.plan.output_schema.names()
        return columns, list(self.rows), self._truncated

    # -- control -----------------------------------------------------------------

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Request cooperative cancellation; honoured at the next step."""
        self._cancel_reason = reason
        self._cancel.set()

    @acquires("_step_lock")
    def step(self, quantum_rows: int | None = None) -> bool:
        """Advance by one pump quantum. Returns True while work remains.

        ``quantum_rows`` is accepted for interface parity and ignored —
        a parallel quantum is one bounded pipe pump, not a row count.
        """
        del quantum_rows
        with self._step_lock:
            if self.state in TERMINAL_STATES:
                return False
            if self._cancel.is_set():
                self.coordinator.cancel()
                self._finalize(SessionState.CANCELLED, self._cancel_reason)
                return False
            if self.state is SessionState.PENDING:
                self.started_at = time.monotonic()
                if self.timeout_s is not None:
                    self._deadline = self.started_at + self.timeout_s
                try:
                    self.coordinator.start()
                except Exception as exc:  # noqa: BLE001 - reported as FAILED
                    self._finalize(
                        SessionState.FAILED, f"{type(exc).__name__}: {exc}"
                    )
                    return False
                self.state = SessionState.RUNNING
            if self._deadline is not None and time.monotonic() >= self._deadline:
                self.coordinator.cancel()
                self._finalize(
                    SessionState.CANCELLED,
                    f"deadline exceeded (timeout_s={self.timeout_s:g})",
                )
                return False
            try:
                self.coordinator.pump(self.pump_timeout_s)
            except Exception as exc:  # noqa: BLE001 - reported as FAILED
                self.coordinator.cancel()
                self._finalize(SessionState.FAILED, f"{type(exc).__name__}: {exc}")
                return False
            if self.coordinator.error is not None:
                self._finalize(SessionState.FAILED, self.coordinator.error)
                return False
            if self.coordinator.finished:
                try:
                    result = self.coordinator.result()
                except Exception as exc:  # noqa: BLE001 - reported as FAILED
                    self._finalize(
                        SessionState.FAILED, f"{type(exc).__name__}: {exc}"
                    )
                    return False
                self.row_count = result.row_count
                spool = result.rows[: self.row_cap] if self.row_cap else []
                self.rows = spool
                self._truncated = result.row_count > len(spool)
                self._finalize(SessionState.FINISHED, None)
                return False
            if not self.fragments.steps:
                # Pure concatenation: raw fragment rows ARE result rows.
                self.row_count = self.coordinator.raw_row_count
            self._publish()
            return True

    @guarded_by("_step_lock")
    def _finalize(self, state: SessionState, error: str | None) -> None:
        self.error = error
        self.state = state
        self.finished_at = time.monotonic()
        if (
            state is SessionState.FINISHED
            and self.history is not None
            and self.fingerprint is not None
        ):
            # Merged statistics feedback: per-candidate errors pooled
            # checkpoint-weighted across workers, node cardinalities from
            # the merged counters. A store fault degrades history only.
            from repro.robust.feedback import record_merged_run

            record_merged_run(
                self.fingerprint,
                self.monitor,
                self.history,
                self.coordinator.mode,
                self.elapsed_s(),
                self.row_count,
                self.plan,
                observed=self.observed,
            )
        self._publish()
