"""Coordinator-side merged progress: ``C = ΣC_p``, ``T̂`` from merged state.

:class:`PartitionedProgressMonitor` is the distributed analogue of
:class:`~repro.core.progress.ProgressMonitor`: it never touches a live
plan, it folds the workers' cumulative :class:`~repro.parallel.delta.
ProgressDelta` messages. Three merge rules produce the global snapshot:

* **work done** — per-node ``K_i`` counters sum across workers (every
  getnext happened on exactly one worker; replicated build subtrees run
  on every worker, and that really is work done P times).
* **work total** — per-node local totals sum too (each worker's ``N̂_i``
  covers its own shard's share of node ``i``'s work) — *except* join
  nodes carrying ONCE/chain estimators, whose summed point estimates are
  replaced by the estimate derived from *merged* sufficient statistics
  (``Σ sum_counts / Σ t × Σ probe_total``). The merged ratio estimator is
  the robust combination (cf. König et al.) and collapses to the exact
  join size ``Σ sum_counts`` once every worker finishes its probe pass.
* **monotonicity** — ``work_done`` is monotone by construction (per-worker
  ``seq`` guards + monotone counters); the reported progress fraction is
  additionally high-watered, so total refinements can never make the bar
  move backwards. When every worker is done the snapshot pins
  ``total = done`` — final progress is exactly 1.0.

Group (GEE/MLE) statistics merge too — histogram counts sum, the hybrid
chooser reruns over merged state — but feed the *global* distinct-count
statistic (:meth:`merged_estimators`), not the per-node totals: a group
key may occur in several partitions, so the partial-aggregate work total
is the sum of local group counts, which is exactly what summing local
totals already yields.
"""

from __future__ import annotations

import threading
import time

from repro.common.locks import acquires, guarded_by
from repro.core.progress import ProgressSnapshot
from repro.parallel.delta import (
    MergedChain,
    MergedGroup,
    MergedOnce,
    ProgressDelta,
    merge_estimator_deltas,
)

__all__ = ["PartitionedProgressMonitor"]


class PartitionedProgressMonitor:
    """Fold per-worker deltas into one monotone global progress view."""

    # Lock discipline (machine-checked by repro.analysis.concurrency):
    # deltas arrive from whichever thread pumps the worker pipes while
    # snapshots are taken by watcher/scheduler threads, so every piece of
    # merge state lives under one private mutex.
    _guarded_by_ = {
        "_deltas": "_lock",
        "_hw_ratio": "_lock",
        "_degraded": "_lock",
        "_degraded_reason": "_lock",
        "snapshots": "_lock",
    }

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self._lock = threading.Lock()
        self._deltas: dict[int, ProgressDelta] = {}
        self._hw_ratio = 0.0
        self._degraded = False
        self._degraded_reason: str | None = None
        self._started = time.perf_counter()
        self.snapshots: list[ProgressSnapshot] = []

    # -- ingestion ---------------------------------------------------------------

    @acquires("_lock")
    def observe(self, delta: ProgressDelta) -> None:
        """Fold in one worker delta. Stale deltas (``seq`` not newer than
        the worker's last) are dropped — the protocol is cumulative, so
        only the latest message per worker matters."""
        with self._lock:
            current = self._deltas.get(delta.worker_id)
            if current is None or delta.seq > current.seq:
                self._deltas[delta.worker_id] = delta
            if delta.degraded and not self._degraded:
                self._degraded = True
                self._degraded_reason = delta.degraded_reason

    @acquires("_lock")
    def drop_worker(self, worker_id: int) -> None:
        """Discard a worker's state (its fragment is being re-run)."""
        with self._lock:
            self._deltas.pop(worker_id, None)

    @acquires("_lock")
    def mark_degraded(self, reason: str) -> None:
        with self._lock:
            self._degraded = True
            if self._degraded_reason is None:
                self._degraded_reason = reason

    # -- observation -------------------------------------------------------------

    @property
    @acquires("_lock")
    def all_done(self) -> bool:
        with self._lock:
            return self._all_done_locked()

    @guarded_by("_lock")
    def _all_done_locked(self) -> bool:
        return len(self._deltas) == self.num_workers and all(
            d.done for d in self._deltas.values()
        )

    @acquires("_lock")
    def merged_estimators(
        self,
    ) -> dict[tuple, MergedOnce | MergedChain | MergedGroup]:
        """Merged estimator state keyed ``(kind, serial node ids)``."""
        with self._lock:
            return merge_estimator_deltas(
                {w: d.estimators for w, d in self._deltas.items()}
            )

    @acquires("_lock")
    def merged_counters(self) -> dict[int, int]:
        """Global per-node ``K_i``: counters summed across workers."""
        with self._lock:
            counts: dict[int, int] = {}
            for delta in self._deltas.values():
                for nid, k_i in delta.counters.items():
                    counts[nid] = counts.get(nid, 0) + int(k_i)
            return counts

    @acquires("_lock")
    def true_total(self) -> float:
        """``ΣΣ K_i``: the exact T(Q) once every worker is done."""
        with self._lock:
            return sum(
                k for d in self._deltas.values() for k in d.counters.values()
            )

    @acquires("_lock")
    def merged_estimator_errors(self) -> tuple[dict[str, float], int]:
        """Checkpoint-weighted per-candidate MSEs across done workers.

        Each history-enabled worker ships its fragment's final ensemble
        scoring on the terminal delta; the merge weights every fragment's
        MSE by its checkpoint count — the same pooling rule
        :func:`repro.robust.history.aggregate_prior` applies across runs.
        """
        with self._lock:
            weighted: dict[str, float] = {}
            counts: dict[str, float] = {}
            total_ckpts = 0
            for delta in self._deltas.values():
                if not delta.done or not delta.estimator_errors:
                    continue
                n = float(max(delta.estimator_checkpoints, 1))
                total_ckpts += delta.estimator_checkpoints
                for name, mse in delta.estimator_errors.items():
                    weighted[name] = weighted.get(name, 0.0) + mse * n
                    counts[name] = counts.get(name, 0.0) + n
            return (
                {name: weighted[name] / counts[name] for name in weighted},
                total_ckpts,
            )

    @acquires("_lock")
    def progress_curve(self) -> list[tuple[float, float]]:
        """``(actual progress, estimated progress)`` per merged snapshot."""
        with self._lock:
            true_total = sum(
                k for d in self._deltas.values() for k in d.counters.values()
            )
            if true_total <= 0:
                return []
            return [
                (snap.work_done / true_total, snap.progress)
                for snap in self.snapshots
            ]

    @guarded_by("_lock")
    def _merged_ensemble_locked(
        self,
    ) -> tuple[float | None, dict[str, float] | None, str | None]:
        """Work-weighted merge of the workers' ensemble reports.

        Each reporting worker's combined progress fraction and candidate
        weights are averaged, weighted by that worker's share of the global
        work done (a fragment that did 10x the getnexts gets 10x the say).
        Returns all-None when no worker runs an ensemble.
        """
        reports = [d for d in self._deltas.values() if d.ensemble is not None]
        if not reports:
            return None, None, None
        share = {
            d.worker_id: max(sum(d.counters.values()), 1.0) for d in reports
        }
        total = sum(share.values())
        ensemble = (
            sum(share[d.worker_id] * d.ensemble for d in reports) / total
        )
        names = sorted({n for d in reports if d.weights for n in d.weights})
        weights = None
        if names:
            weights = {
                name: sum(
                    share[d.worker_id] * (d.weights or {}).get(name, 0.0)
                    for d in reports
                )
                / total
                for name in names
            }
        prior_source = (
            "warm"
            if any(d.prior_source == "warm" for d in reports)
            else "cold"
        )
        return min(ensemble, 1.0), weights, prior_source

    @acquires("_lock")
    def snapshot(self, tick: int = -1) -> ProgressSnapshot:
        """The merged global snapshot; monotone across successive calls."""
        with self._lock:
            done_by_node: dict[int, float] = {}
            total_by_node: dict[int, float] = {}
            for delta in self._deltas.values():
                for nid, k_i in delta.counters.items():
                    done_by_node[nid] = done_by_node.get(nid, 0.0) + k_i
                for nid, total in delta.totals.items():
                    total_by_node[nid] = total_by_node.get(nid, 0.0) + total
            merged = merge_estimator_deltas(
                {w: d.estimators for w, d in self._deltas.items()}
            )
            for state in merged.values():
                if isinstance(state, MergedOnce):
                    nid = state.node_id
                    total_by_node[nid] = max(
                        state.estimate(), done_by_node.get(nid, 0.0)
                    )
                elif isinstance(state, MergedChain):
                    for level, nid in enumerate(state.node_ids):
                        total_by_node[nid] = max(
                            state.estimate_level(level),
                            done_by_node.get(nid, 0.0),
                        )
                # MergedGroup: per-node totals stay summed (see module doc).
            work_done = sum(done_by_node.values())
            all_done = self._all_done_locked()
            if all_done:
                work_total = work_done
            else:
                work_total = max(sum(total_by_node.values()), work_done)
            if work_total > 0:
                ratio = min(work_done / work_total, 1.0)
            else:
                ratio = 1.0 if all_done else 0.0
            if ratio < self._hw_ratio and work_done > 0:
                # A total refinement shrank the fraction: report the
                # high-water ratio by inflating the total, never move back.
                work_total = work_done / self._hw_ratio
                ratio = self._hw_ratio
            else:
                self._hw_ratio = max(self._hw_ratio, ratio)
            ensemble, weights, prior_source = self._merged_ensemble_locked()
            snap = ProgressSnapshot(
                tick=tick,
                timestamp=time.perf_counter() - self._started,
                work_done=work_done,
                work_total_estimate=work_total,
                pipeline_states={},
                degraded=self._degraded,
                degraded_reason=self._degraded_reason,
                ensemble=ensemble,
                weights=weights,
                prior_source=prior_source,
            )
            self.snapshots.append(snap)
            return snap
