"""Pipeline decomposition.

Section 3: "A query plan consists of one or more pipelines. Pipelines are
defined as maximal subtrees of concurrently executing operators", delimited
by blocking operators. Each operator declares which of its child edges are
blocking (:attr:`Operator.blocking_child_indexes`); cutting the tree at
those edges yields the pipelines.

Pipelines are returned in (approximate) execution order: for a Volcano
tree, an operator's blocking inputs are consumed when the operator first
runs, which for nested hash-join chains means *upper* build sides complete
before *lower* ones; pre-order emission of cut subtrees reproduces that
order, and :func:`decompose_pipelines` is the single source of truth the
progress monitor uses.

Each pipeline knows its *driver*: the source operator whose consumption
rate indicates pipeline progress (the probe-side scan of a hash join chain,
the outer scan of an NL join, a blocking operator's output for pipelines
rooted just above one).

Decomposition is independent of the pull discipline: batched execution
(``next_batch``, see ``docs/BATCHING.md``) advances the same ``K_i``
counters through the same pipelines, so progress state, phase transitions
and driver accounting are identical in row and batch mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.executor.operators.base import Operator, OperatorState

__all__ = ["Pipeline", "decompose_pipelines"]


@dataclass
class Pipeline:
    """One maximal subtree of concurrently executing operators."""

    pipeline_id: int
    operators: list[Operator] = field(default_factory=list)

    @property
    def root(self) -> Operator:
        return self.operators[0]

    def __contains__(self, op: Operator) -> bool:
        return any(o is op for o in self.operators)

    def __repr__(self) -> str:
        names = ", ".join(op.describe() for op in self.operators)
        return f"Pipeline#{self.pipeline_id}[{names}]"

    @property
    def driver(self) -> Operator:
        """The operator whose input feeds this pipeline.

        Found by descending from the root along driver-child edges while the
        child is inside the pipeline; where an operator has no driver child
        in-pipeline, the operator itself is the source (a leaf scan, or a
        blocking operator whose *output* feeds the pipeline).
        """
        op = self.root
        while True:
            idx = op.driver_child_index
            if idx is None:
                return op
            children = op.children()
            if idx >= len(children):
                return op
            child = children[idx]
            if not any(child is o for o in self.operators):
                # Driver side begins below a blocking edge boundary; the
                # child belongs to another pipeline, so this operator's own
                # consumption is the best progress signal.
                return op
            op = child

    @property
    def is_finished(self) -> bool:
        """A pipeline is finished when its root stopped producing."""
        return self.root.state in (OperatorState.EXHAUSTED, OperatorState.CLOSED)

    @property
    def has_started(self) -> bool:
        return any(
            op.tuples_emitted > 0 or op.phase not in ("init",) or op.state is not OperatorState.CREATED
            for op in self.operators
        )

    def total_emitted(self) -> int:
        """Sum of getnext() calls made so far over operators in the pipeline
        (the pipeline's C(p))."""
        return sum(op.tuples_emitted for op in self.operators)


def decompose_pipelines(root: Operator) -> list[Pipeline]:
    """Cut the plan tree at blocking edges into pipelines.

    The pipeline containing ``root`` is last; pipelines feeding blocking
    inputs appear before their consumers, in the order the executor will
    drain them.
    """
    pipelines: list[Pipeline] = []

    def visit(op: Operator, current: list[Operator]) -> None:
        current.append(op)
        blocked = set(op.blocking_child_indexes)
        for idx, child in enumerate(op.children()):
            if idx in blocked:
                sub: list[Operator] = []
                visit(child, sub)
                pipelines.append(Pipeline(-1, sub))
            else:
                visit(child, current)

    top: list[Operator] = []
    visit(root, top)
    pipelines.append(Pipeline(-1, top))
    for i, p in enumerate(pipelines):
        p.pipeline_id = i
    return pipelines
