"""Volcano-style query executor with `getnext()` instrumentation.

This package is the substrate standing in for PostgreSQL 8.0: a tree of
physical operators pulled tuple-at-a-time from the root. Every operator
counts the tuples it emits (the ``K_i`` of the paper's getnext model), and
operators with preprocessing phases (hash-join build and probe-partition
passes, sort input passes, aggregation partition passes) expose per-tuple
hooks at exactly the points where the paper's estimators attach.

Public surface:

* :mod:`repro.executor.expressions` — scalar expressions / predicates.
* :mod:`repro.executor.operators` — scan, filter, project, sort, hash join,
  sort-merge join, nested-loops joins, aggregation, limit, materialize.
* :mod:`repro.executor.plan` — tree utilities (walk, explain, validate).
* :mod:`repro.executor.pipeline` — decomposition into pipelines delimited by
  blocking operators, with driver-node identification.
* :mod:`repro.executor.engine` — the execution driver and tick bus.
"""

from repro.executor.engine import ExecutionEngine, ExecutionResult, TickBus
from repro.executor.expressions import (
    And,
    BinaryOp,
    Col,
    Comparison,
    Const,
    Expression,
    Not,
    Or,
    col,
    lit,
)
from repro.executor.pipeline import Pipeline, decompose_pipelines
from repro.executor.plan import explain, validate_plan, walk

__all__ = [
    "And",
    "BinaryOp",
    "Col",
    "Comparison",
    "Const",
    "ExecutionEngine",
    "ExecutionResult",
    "Expression",
    "Not",
    "Or",
    "Pipeline",
    "TickBus",
    "col",
    "decompose_pipelines",
    "explain",
    "lit",
    "validate_plan",
    "walk",
]
