"""Scalar expressions over rows.

Expressions form small immutable trees (:class:`Col`, :class:`Const`,
comparisons, boolean connectives, arithmetic). Before evaluation an
expression is *bound* to a schema, producing a plain Python closure
``row -> value``; binding resolves column names to tuple positions once, so
per-row evaluation does no name lookups — important because predicates run
inside the executor's innermost loops.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.storage.schema import Schema

__all__ = [
    "And",
    "Between",
    "BinaryOp",
    "Col",
    "Comparison",
    "Const",
    "Expression",
    "InList",
    "IsNull",
    "Not",
    "Or",
    "col",
    "lit",
]

_COMPARISONS: dict[str, Callable] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Expression(ABC):
    """Base class for scalar expressions."""

    @abstractmethod
    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        """Compile to a ``row -> value`` closure against ``schema``."""

    @abstractmethod
    def referenced_columns(self) -> frozenset[str]:
        """Names of all columns this expression reads."""

    # Operator sugar so predicates read naturally:
    # col("a") == lit(3), (col("a") > 1) & (col("b") < 2)
    def __eq__(self, other):  # type: ignore[override]
        return Comparison("=", self, _as_expr(other))

    def __ne__(self, other):  # type: ignore[override]
        return Comparison("!=", self, _as_expr(other))

    def __lt__(self, other):
        return Comparison("<", self, _as_expr(other))

    def __le__(self, other):
        return Comparison("<=", self, _as_expr(other))

    def __gt__(self, other):
        return Comparison(">", self, _as_expr(other))

    def __ge__(self, other):
        return Comparison(">=", self, _as_expr(other))

    def __and__(self, other):
        return And(self, _as_expr(other))

    def __or__(self, other):
        return Or(self, _as_expr(other))

    def __invert__(self):
        return Not(self)

    def __add__(self, other):
        return BinaryOp("+", self, _as_expr(other))

    def __sub__(self, other):
        return BinaryOp("-", self, _as_expr(other))

    def __mul__(self, other):
        return BinaryOp("*", self, _as_expr(other))

    def __truediv__(self, other):
        return BinaryOp("/", self, _as_expr(other))

    def __hash__(self):
        return hash(repr(self))


def _as_expr(value: object) -> Expression:
    return value if isinstance(value, Expression) else Const(value)


@dataclass(frozen=True, eq=False)
class Col(Expression):
    """Reference to a column by (optionally qualified) name."""

    name: str

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        idx = schema.index_of(self.name)
        return lambda row: row[idx]

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Const(Expression):
    """A literal value."""

    value: object

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        value = self.value
        return lambda row: value

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, eq=False)
class Comparison(Expression):
    """Binary comparison (=, !=, <, <=, >, >=)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self):
        if self.op not in _COMPARISONS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        fn = _COMPARISONS[self.op]
        lhs = self.left.bind(schema)
        rhs = self.right.bind(schema)
        return lambda row: fn(lhs(row), rhs(row))

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class BinaryOp(Expression):
    """Arithmetic expression (+, -, *, /)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self):
        if self.op not in _ARITHMETIC:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        fn = _ARITHMETIC[self.op]
        lhs = self.left.bind(schema)
        rhs = self.right.bind(schema)
        return lambda row: fn(lhs(row), rhs(row))

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class And(Expression):
    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        lhs = self.left.bind(schema)
        rhs = self.right.bind(schema)
        return lambda row: bool(lhs(row)) and bool(rhs(row))

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(frozen=True, eq=False)
class Or(Expression):
    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        lhs = self.left.bind(schema)
        rhs = self.right.bind(schema)
        return lambda row: bool(lhs(row)) or bool(rhs(row))

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(frozen=True, eq=False)
class Not(Expression):
    child: Expression

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        inner = self.child.bind(schema)
        return lambda row: not inner(row)

    def referenced_columns(self) -> frozenset[str]:
        return self.child.referenced_columns()

    def __repr__(self) -> str:
        return f"(NOT {self.child!r})"


@dataclass(frozen=True, eq=False)
class InList(Expression):
    """``expr IN (v1, v2, ...)`` over literal values."""

    child: Expression
    values: tuple

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        inner = self.child.bind(schema)
        members = frozenset(self.values)
        return lambda row: inner(row) in members

    def referenced_columns(self) -> frozenset[str]:
        return self.child.referenced_columns()

    def __repr__(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values)
        return f"({self.child!r} IN ({rendered}))"


@dataclass(frozen=True, eq=False)
class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive, SQL semantics)."""

    child: Expression
    low: Expression
    high: Expression

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        inner = self.child.bind(schema)
        low = self.low.bind(schema)
        high = self.high.bind(schema)
        return lambda row: low(row) <= inner(row) <= high(row)

    def referenced_columns(self) -> frozenset[str]:
        return (
            self.child.referenced_columns()
            | self.low.referenced_columns()
            | self.high.referenced_columns()
        )

    def __repr__(self) -> str:
        return f"({self.child!r} BETWEEN {self.low!r} AND {self.high!r})"


@dataclass(frozen=True, eq=False)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    child: Expression
    negated: bool = False

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        inner = self.child.bind(schema)
        if self.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None

    def referenced_columns(self) -> frozenset[str]:
        return self.child.referenced_columns()

    def __repr__(self) -> str:
        middle = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.child!r} {middle})"


def col(name: str) -> Col:
    """Shorthand constructor for a column reference."""
    return Col(name)


def lit(value: object) -> Const:
    """Shorthand constructor for a literal."""
    return Const(value)
