"""Scalar expressions over rows.

Expressions form small immutable trees (:class:`Col`, :class:`Const`,
comparisons, boolean connectives, arithmetic). Before evaluation an
expression is *bound* to a schema, producing a plain Python closure
``row -> value``; binding resolves column names to tuple positions once, so
per-row evaluation does no name lookups — important because predicates run
inside the executor's innermost loops.

Batch kernels
-------------
``bind`` still pays one Python call per tree node per row. For the batch
execution path each node can additionally render itself as a Python *source
fragment* over a ``row`` variable (:meth:`Expression.source`), and
:func:`compile_predicate_kernel` / :func:`compile_projection_kernel` splice
those fragments into a single list-comprehension lambda — one bytecode
object evaluating a whole batch with zero per-row Python calls. The
fragments are generated from the same operator tables ``bind`` uses
(``=`` → ``==``, ``/`` → true division, ``AND`` → short-circuit on
truthiness, ``IN`` → frozenset membership, ``BETWEEN`` → one chained
comparison evaluating the operand once), so a kernel is semantically
identical to mapping the bound closure over the batch. Nodes that cannot
render source (user-defined subclasses) make the compilers return None and
callers keep the bound-closure path — compilation is an optimization, never
a requirement.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.storage.schema import Schema

__all__ = [
    "And",
    "Between",
    "BinaryOp",
    "Col",
    "Comparison",
    "Const",
    "Expression",
    "InList",
    "IsNull",
    "Not",
    "Or",
    "col",
    "compile_predicate_kernel",
    "compile_projection_kernel",
    "lit",
]

_COMPARISONS: dict[str, Callable] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

#: SQL spelling -> Python source spelling; every entry maps to exactly the
#: operator-module function ``bind`` uses for the same key.
_COMPARISON_SOURCE: dict[str, str] = {
    "=": "==",
    "==": "==",
    "!=": "!=",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


class Expression(ABC):
    """Base class for scalar expressions."""

    @abstractmethod
    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        """Compile to a ``row -> value`` closure against ``schema``."""

    @abstractmethod
    def referenced_columns(self) -> frozenset[str]:
        """Names of all columns this expression reads."""

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        """Render this node as a Python source fragment over ``row``.

        Values that cannot be spelled as literals are registered in ``ctx``
        (name -> value) and referenced by name; ``ctx`` becomes the globals
        of the compiled kernel. Subclasses that cannot render themselves
        leave this default, which signals the kernel compilers to fall back
        to the bound-closure path.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support source compilation"
        )

    # Operator sugar so predicates read naturally:
    # col("a") == lit(3), (col("a") > 1) & (col("b") < 2)
    def __eq__(self, other):  # type: ignore[override]
        return Comparison("=", self, _as_expr(other))

    def __ne__(self, other):  # type: ignore[override]
        return Comparison("!=", self, _as_expr(other))

    def __lt__(self, other):
        return Comparison("<", self, _as_expr(other))

    def __le__(self, other):
        return Comparison("<=", self, _as_expr(other))

    def __gt__(self, other):
        return Comparison(">", self, _as_expr(other))

    def __ge__(self, other):
        return Comparison(">=", self, _as_expr(other))

    def __and__(self, other):
        return And(self, _as_expr(other))

    def __or__(self, other):
        return Or(self, _as_expr(other))

    def __invert__(self):
        return Not(self)

    def __add__(self, other):
        return BinaryOp("+", self, _as_expr(other))

    def __sub__(self, other):
        return BinaryOp("-", self, _as_expr(other))

    def __mul__(self, other):
        return BinaryOp("*", self, _as_expr(other))

    def __truediv__(self, other):
        return BinaryOp("/", self, _as_expr(other))

    def __hash__(self):
        return hash(repr(self))


def _as_expr(value: object) -> Expression:
    return value if isinstance(value, Expression) else Const(value)


def _value_source(value: object, ctx: dict[str, object]) -> str:
    """Spell ``value`` as a source fragment, via ``ctx`` when repr() does
    not round-trip (inf/nan floats, arbitrary objects)."""
    if value is None or value is True or value is False:
        return repr(value)
    if isinstance(value, (int, str, bytes)):
        return repr(value)
    if isinstance(value, float) and value == value and value not in (
        float("inf"),
        float("-inf"),
    ):
        return repr(value)
    name = f"_c{len(ctx)}"
    ctx[name] = value
    return name


@dataclass(frozen=True, eq=False)
class Col(Expression):
    """Reference to a column by (optionally qualified) name."""

    name: str

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        idx = schema.index_of(self.name)
        return lambda row: row[idx]

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        return f"row[{schema.index_of(self.name)}]"

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Const(Expression):
    """A literal value."""

    value: object

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        value = self.value
        return lambda row: value

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        return _value_source(self.value, ctx)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, eq=False)
class Comparison(Expression):
    """Binary comparison (=, !=, <, <=, >, >=)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self):
        if self.op not in _COMPARISONS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        fn = _COMPARISONS[self.op]
        lhs = self.left.bind(schema)
        rhs = self.right.bind(schema)
        return lambda row: fn(lhs(row), rhs(row))

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        lhs = self.left.source(schema, ctx)
        rhs = self.right.source(schema, ctx)
        return f"({lhs} {_COMPARISON_SOURCE[self.op]} {rhs})"

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class BinaryOp(Expression):
    """Arithmetic expression (+, -, *, /)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self):
        if self.op not in _ARITHMETIC:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        fn = _ARITHMETIC[self.op]
        lhs = self.left.bind(schema)
        rhs = self.right.bind(schema)
        return lambda row: fn(lhs(row), rhs(row))

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        lhs = self.left.source(schema, ctx)
        rhs = self.right.source(schema, ctx)
        return f"({lhs} {self.op} {rhs})"

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class And(Expression):
    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        lhs = self.left.bind(schema)
        rhs = self.right.bind(schema)
        return lambda row: bool(lhs(row)) and bool(rhs(row))

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        lhs = self.left.source(schema, ctx)
        rhs = self.right.source(schema, ctx)
        return f"(bool({lhs}) and bool({rhs}))"

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(frozen=True, eq=False)
class Or(Expression):
    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        lhs = self.left.bind(schema)
        rhs = self.right.bind(schema)
        return lambda row: bool(lhs(row)) or bool(rhs(row))

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        lhs = self.left.source(schema, ctx)
        rhs = self.right.source(schema, ctx)
        return f"(bool({lhs}) or bool({rhs}))"

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(frozen=True, eq=False)
class Not(Expression):
    child: Expression

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        inner = self.child.bind(schema)
        return lambda row: not inner(row)

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        return f"(not {self.child.source(schema, ctx)})"

    def referenced_columns(self) -> frozenset[str]:
        return self.child.referenced_columns()

    def __repr__(self) -> str:
        return f"(NOT {self.child!r})"


@dataclass(frozen=True, eq=False)
class InList(Expression):
    """``expr IN (v1, v2, ...)`` over literal values."""

    child: Expression
    values: tuple

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        inner = self.child.bind(schema)
        members = frozenset(self.values)
        return lambda row: inner(row) in members

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        name = f"_c{len(ctx)}"
        ctx[name] = frozenset(self.values)
        return f"({self.child.source(schema, ctx)} in {name})"

    def referenced_columns(self) -> frozenset[str]:
        return self.child.referenced_columns()

    def __repr__(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values)
        return f"({self.child!r} IN ({rendered}))"


@dataclass(frozen=True, eq=False)
class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive, SQL semantics)."""

    child: Expression
    low: Expression
    high: Expression

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        inner = self.child.bind(schema)
        low = self.low.bind(schema)
        high = self.high.bind(schema)
        return lambda row: low(row) <= inner(row) <= high(row)

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        # A chained comparison evaluates the middle operand exactly once,
        # matching the single inner(row) call in bind().
        inner = self.child.source(schema, ctx)
        low = self.low.source(schema, ctx)
        high = self.high.source(schema, ctx)
        return f"({low} <= {inner} <= {high})"

    def referenced_columns(self) -> frozenset[str]:
        return (
            self.child.referenced_columns()
            | self.low.referenced_columns()
            | self.high.referenced_columns()
        )

    def __repr__(self) -> str:
        return f"({self.child!r} BETWEEN {self.low!r} AND {self.high!r})"


@dataclass(frozen=True, eq=False)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    child: Expression
    negated: bool = False

    def bind(self, schema: Schema) -> Callable[[tuple], object]:
        inner = self.child.bind(schema)
        if self.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None

    def source(self, schema: Schema, ctx: dict[str, object]) -> str:
        middle = "is not" if self.negated else "is"
        return f"({self.child.source(schema, ctx)} {middle} None)"

    def referenced_columns(self) -> frozenset[str]:
        return self.child.referenced_columns()

    def __repr__(self) -> str:
        middle = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.child!r} {middle})"


def compile_predicate_kernel(
    predicate: Expression, schema: Schema
) -> Callable[[list[tuple]], list[tuple]] | None:
    """Compile a predicate into a ``batch -> surviving rows`` kernel.

    The kernel is one list comprehension over the rendered source fragment,
    so a whole batch is filtered with zero per-row Python calls. Returns
    None when the tree contains a node without source support; callers then
    fall back to filtering with the bound closure, which is always
    semantically identical.
    """
    ctx: dict[str, object] = {}
    try:
        src = predicate.source(schema, ctx)
    except NotImplementedError:
        return None
    namespace = {"__builtins__": {}, "bool": bool, **ctx}
    return eval(  # noqa: S307 - source is generated, not user input
        f"lambda batch: [row for row in batch if {src}]", namespace
    )


def compile_projection_kernel(
    expressions: Sequence[Expression], schema: Schema
) -> Callable[[list[tuple]], list[tuple]] | None:
    """Compile projection expressions into a ``batch -> projected rows``
    kernel building one output tuple per row in a single comprehension.

    Returns None (caller falls back to bound closures) if any expression
    lacks source support.
    """
    ctx: dict[str, object] = {}
    try:
        parts = [expr.source(schema, ctx) for expr in expressions]
    except NotImplementedError:
        return None
    # A parenthesized one-element "tuple display" needs the trailing comma.
    tuple_src = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
    namespace = {"__builtins__": {}, "bool": bool, **ctx}
    return eval(  # noqa: S307 - source is generated, not user input
        f"lambda batch: [{tuple_src} for row in batch]", namespace
    )


def col(name: str) -> Col:
    """Shorthand constructor for a column reference."""
    return Col(name)


def lit(value: object) -> Const:
    """Shorthand constructor for a literal."""
    return Const(value)
