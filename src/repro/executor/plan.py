"""Plan-tree utilities: traversal, validation, EXPLAIN-style printing.

The physical operator tree *is* the plan; these helpers assign node ids,
check structural sanity before execution, and render the tree for humans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.common.errors import PlanError
from repro.executor.operators.base import Operator, OperatorState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import DiagnosticReport

__all__ = ["check_plan", "explain", "validate_plan", "walk"]


def walk(root: Operator) -> Iterator[Operator]:
    """Pre-order traversal of the plan tree."""
    stack = [root]
    while stack:
        op = stack.pop()
        yield op
        stack.extend(reversed(op.children()))


def validate_plan(root: Operator) -> list[Operator]:
    """Validate the tree and assign sequential node ids (pre-order).

    Checks: no operator appears twice (DAGs/sharing are not supported by the
    Volcano contract here), all operators are freshly created or open,
    blocking/driver child declarations are in range.

    Returns the operators in pre-order.
    """
    seen: set[int] = set()
    ops: list[Operator] = []
    for op in walk(root):
        if id(op) in seen:
            raise PlanError(f"operator {op.describe()} appears twice in the plan")
        seen.add(id(op))
        n_children = len(op.children())
        for idx in op.blocking_child_indexes:
            if not 0 <= idx < n_children:
                raise PlanError(
                    f"{op.describe()}: blocking child index {idx} out of range"
                )
        drv = op.driver_child_index
        if drv is not None and not 0 <= drv < n_children:
            raise PlanError(f"{op.describe()}: driver child index {drv} out of range")
        if op.state is OperatorState.CLOSED:
            raise PlanError(f"{op.describe()}: operator already closed")
        ops.append(op)
    for i, op in enumerate(ops):
        op.node_id = i
    return ops


def check_plan(root: Operator, mode: str = "strict") -> "DiagnosticReport":
    """Run the static semantic analyzer over the plan (no execution).

    ``mode="strict"`` raises :class:`~repro.common.errors.AnalysisError` if
    any ERROR-severity diagnostic is found; ``mode="advisory"`` returns the
    full report for the caller to inspect. Structural validation
    (:func:`validate_plan`) remains the executor's hard gate — this adds the
    semantic layer: expression typing, join-key compatibility, pipeline
    invariants and estimator classification.
    """
    if mode not in ("strict", "advisory"):
        raise ValueError(f"mode must be 'strict' or 'advisory', got {mode!r}")
    from repro.analysis.plancheck import analyze_plan

    report = analyze_plan(root)
    if mode == "strict":
        report.raise_if_errors("plan analysis")
    return report


def explain(root: Operator, counts: bool = False) -> str:
    """Render the plan tree as an indented string.

    With ``counts=True``, appends each operator's emitted-tuple count and
    optimizer estimate — handy when debugging progress estimates.
    """
    lines: list[str] = []

    def visit(op: Operator, depth: int) -> None:
        suffix = ""
        if counts:
            est = (
                f", est={op.estimated_cardinality:.0f}"
                if op.estimated_cardinality is not None
                else ""
            )
            suffix = f"  [emitted={op.tuples_emitted}{est}]"
        lines.append("  " * depth + op.describe() + suffix)
        for child in op.children():
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)
