"""Blocking sort operator.

The sort's *input pass* — where every tuple of the input is seen exactly
once before any output is produced — is the preprocessing phase the paper
exploits for sort-merge joins (Section 4.1.2): "In the sort operator, every
tuple of R is seen at least once before any output is produced. Thus, it is
possible to build a histogram on the join attribute of R." ``input_hooks``
fire for each input row during that pass.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.executor.operators.base import Operator
from repro.storage.schema import Schema

__all__ = ["Sort"]


class Sort(Operator):
    """In-memory sort on one or more key columns."""

    op_name = "sort"
    blocking_child_indexes = (0,)

    __slots__ = (
        "child",
        "keys",
        "descending",
        "input_hooks",
        "rows_consumed",
        "_sorted_iter",
    )

    def __init__(self, child: Operator, keys: Sequence[str], descending: bool = False):
        super().__init__()
        if not keys:
            raise ValueError("sort needs at least one key column")
        self.child = child
        self.keys = tuple(keys)
        self.descending = descending
        self.input_hooks: list[Callable[[tuple], None]] = []
        self.rows_consumed: int = 0
        self._sorted_iter: Iterator[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def describe(self) -> str:
        direction = " desc" if self.descending else ""
        return f"sort({', '.join(self.keys)}{direction})"

    def _open(self) -> None:
        self._set_phase("init")

    def _next(self) -> tuple | None:
        if self._sorted_iter is None:
            self._consume_and_sort()
        assert self._sorted_iter is not None
        return next(self._sorted_iter, None)

    def _consume_and_sort(self) -> None:
        self._set_phase("read_input")
        schema = self.child.output_schema
        key_idxs = [schema.index_of(k) for k in self.keys]
        hooks = self.input_hooks
        rows: list[tuple] = []
        while True:
            row = self.child.next()
            if row is None:
                break
            self.rows_consumed += 1
            if hooks:
                for hook in hooks:
                    hook(row)
            rows.append(row)
            self._tick()
        self._set_phase("sort")
        if len(key_idxs) == 1:
            idx = key_idxs[0]
            rows.sort(key=lambda r: r[idx], reverse=self.descending)
        else:
            rows.sort(
                key=lambda r: tuple(r[i] for i in key_idxs), reverse=self.descending
            )
        self._set_phase("emit")
        self._sorted_iter = iter(rows)

    def _close(self) -> None:
        self._sorted_iter = None
