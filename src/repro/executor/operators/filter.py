"""Selection operator.

Selections have no preprocessing phase, so (Section 4.3) no estimation can
be pushed below them; the progress framework handles them with the
driver-node estimator, which "has zero error in expectation" on randomly
ordered input. The operator itself just evaluates a bound predicate.
It tracks ``rows_consumed`` so estimators can compute its selectivity
online.
"""

from __future__ import annotations

from typing import Callable

from repro.executor.expressions import Expression, compile_predicate_kernel
from repro.executor.operators.base import Operator
from repro.storage.schema import Schema

__all__ = ["Filter"]


class Filter(Operator):
    """Emit child rows satisfying a predicate."""

    op_name = "filter"
    driver_child_index = 0

    __slots__ = ("child", "predicate", "rows_consumed", "_bound", "_batch_kernel")

    def __init__(self, child: Operator, predicate: Expression):
        super().__init__()
        self.child = child
        self.predicate = predicate
        self.rows_consumed: int = 0
        self._bound: Callable[[tuple], object] | None = None
        self._batch_kernel: Callable[[list[tuple]], list[tuple]] | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def describe(self) -> str:
        return f"filter({self.predicate!r})"

    def _open(self) -> None:
        schema = self.child.output_schema
        self._bound = self.predicate.bind(schema)
        # Compiled batch kernel: one list comprehension filtering the whole
        # batch, semantically identical to mapping the bound closure; None
        # (expression without source support) keeps the closure fallback.
        self._batch_kernel = compile_predicate_kernel(self.predicate, schema)
        self._set_phase("filter")

    def _next(self) -> tuple | None:
        assert self._bound is not None
        while True:
            row = self.child.next()
            if row is None:
                return None
            self.rows_consumed += 1
            if self._bound(row):
                return row

    def _next_batch(self, max_rows: int) -> list[tuple]:
        assert self._bound is not None
        bound = self._bound
        kernel = self._batch_kernel
        child = self.child
        while True:
            batch = child.next_batch(max_rows)
            if not batch:
                return []
            self.rows_consumed += len(batch)
            if kernel is not None:
                survivors = kernel(batch)
            else:
                survivors = [row for row in batch if bound(row)]
            if survivors:
                return survivors

    @property
    def observed_selectivity(self) -> float:
        """Fraction of consumed rows that passed, so far."""
        if self.rows_consumed == 0:
            return 1.0
        return self.tuples_emitted / self.rows_consumed
