"""DISTINCT operator (duplicate elimination).

Blocking, hash-based: the input pass sees every tuple before any output —
the same preprocessing window as aggregation, and duplicate elimination *is*
the distinct-value problem of Section 4.2, so the GEE/MLE estimators attach
to ``input_hooks`` exactly as they do on a group-by (the whole row is the
grouping key).
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Iterator

from repro.executor.operators.base import Operator, make_batch_dispatch
from repro.storage.schema import Schema

__all__ = ["Distinct"]

KeyHook = Callable[[object, tuple], None]


class Distinct(Operator):
    """Emit each distinct input row once (first-seen order)."""

    op_name = "distinct"
    blocking_child_indexes = (0,)

    __slots__ = (
        "child",
        "input_hooks",
        "rows_consumed",
        "groups_seen",
        "_emit_iter",
    )

    def __init__(self, child: Operator):
        super().__init__()
        self.child = child
        self.input_hooks: list[KeyHook] = []
        self.rows_consumed: int = 0
        self.groups_seen: int = 0
        self._emit_iter: Iterator[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def _open(self) -> None:
        self._set_phase("init")

    def _next(self) -> tuple | None:
        if self._emit_iter is None:
            self._emit_iter = self._consume()
        return next(self._emit_iter, None)

    def _next_batch(self, max_rows: int) -> list[tuple]:
        # Blocking: the full input is drained either way, so draining it at
        # batch granularity on the first pull changes no emitted row.
        if self._emit_iter is None:
            self._emit_iter = self._consume(consume=max_rows)
        return list(islice(self._emit_iter, max_rows))

    def _close(self) -> None:
        self._emit_iter = None

    def _consume(self, consume: int = 1) -> Iterator[tuple]:
        self._set_phase("partition")
        hooks = self.input_hooks
        seen: dict[tuple, None] = {}  # dict preserves first-seen order
        if consume > 1:
            child = self.child
            setdefault = seen.setdefault
            # The whole row is the grouping key, so the key list for the
            # batch hook dispatch is the batch itself.
            dispatch = make_batch_dispatch(hooks)
            while True:
                batch = child.next_batch(consume)
                if not batch:
                    break
                self.rows_consumed += len(batch)
                if dispatch is not None:
                    dispatch(batch, batch)
                for row in batch:
                    setdefault(row, None)
                self._tick_n(len(batch))
        else:
            while True:
                row = self.child.next()
                if row is None:
                    break
                self.rows_consumed += 1
                if hooks:
                    for hook in hooks:
                        hook(row, row)
                seen.setdefault(row, None)
                self._tick()
        self.groups_seen = len(seen)
        self._set_phase("emit")
        yield from seen
