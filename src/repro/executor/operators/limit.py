"""LIMIT operator."""

from __future__ import annotations

from repro.executor.operators.base import Operator
from repro.storage.schema import Schema

__all__ = ["Limit"]


class Limit(Operator):
    """Emit at most ``n`` child rows."""

    op_name = "limit"
    driver_child_index = 0

    def __init__(self, child: Operator, n: int):
        super().__init__()
        if n < 0:
            raise ValueError(f"limit must be >= 0, got {n}")
        self.child = child
        self.n = n

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def describe(self) -> str:
        return f"limit({self.n})"

    def _next(self) -> tuple | None:
        if self.tuples_emitted >= self.n:
            return None
        return self.child.next()
