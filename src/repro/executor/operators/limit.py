"""LIMIT operator."""

from __future__ import annotations

from repro.executor.operators.base import Operator
from repro.storage.schema import Schema

__all__ = ["Limit"]


class Limit(Operator):
    """Emit at most ``n`` child rows."""

    op_name = "limit"
    driver_child_index = 0

    __slots__ = ("child", "n")

    def __init__(self, child: Operator, n: int):
        super().__init__()
        if n < 0:
            raise ValueError(f"limit must be >= 0, got {n}")
        self.child = child
        self.n = n

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def describe(self) -> str:
        return f"limit({self.n})"

    def _next(self) -> tuple | None:
        if self.tuples_emitted >= self.n:
            return None
        return self.child.next()

    def _next_batch(self, max_rows: int) -> list[tuple]:
        # Cap the *request*, not the result: the child is never pulled past
        # the limit, so neither its counter nor ours can over-emit when the
        # cutoff lands mid-batch.
        remaining = self.n - self.tuples_emitted
        if remaining <= 0:
            return []
        return self.child.next_batch(min(max_rows, remaining))
