"""Grouping / aggregation operators.

Both variants have the preprocessing pass the paper exploits (Section 4.2):
"In a hash based aggregation, the input is read and partitioned using a hash
function ... In sort-based aggregation, the input is first sorted on the
group-by attribute". ``input_hooks`` fire with the group key for every input
row during that pass — this is where the GEE/MLE group-count estimators
attach and where the exact group count is known the moment the pass ends.

Supported aggregate functions: count, sum, min, max, avg, count_distinct.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from operator import itemgetter
from typing import Callable, Iterator, Sequence

from repro.common.errors import PlanError
from repro.executor.operators.base import Operator, make_batch_dispatch
from repro.storage.schema import Column, ColumnType, Schema

__all__ = ["AggregateSpec", "HashAggregate", "SortAggregate"]

_SUPPORTED_FUNCS = ("count", "sum", "min", "max", "avg", "count_distinct")

KeyHook = Callable[[object, tuple], None]


@dataclass(frozen=True, slots=True)
class AggregateSpec:
    """One aggregate column: ``func(column) AS alias``.

    ``column`` may be None only for ``count`` (COUNT(*)).
    """

    func: str
    column: str | None = None
    alias: str | None = None

    def __post_init__(self):
        if self.func not in _SUPPORTED_FUNCS:
            raise PlanError(f"unsupported aggregate function {self.func!r}")
        if self.column is None and self.func != "count":
            raise PlanError(f"{self.func} requires a column")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        target = self.column.replace(".", "_") if self.column else "star"
        return f"{self.func}_{target}"

    @property
    def output_type(self) -> ColumnType:
        if self.func in ("count", "count_distinct"):
            return ColumnType.INT
        return ColumnType.FLOAT


class _AggregateBase(Operator):
    """Shared machinery for hash and sort aggregation."""

    blocking_child_indexes = (0,)

    __slots__ = (
        "child",
        "group_by",
        "aggregates",
        "input_hooks",
        "rows_consumed",
        "groups_seen",
        "_schema",
        "_emit_iter",
    )

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec] = (),
    ):
        super().__init__()
        if not group_by and not aggregates:
            raise PlanError("aggregate needs group columns and/or aggregates")
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates) or (AggregateSpec("count", alias="count_star"),)
        self.input_hooks: list[KeyHook] = []
        self.rows_consumed: int = 0
        self.groups_seen: int = 0
        self._schema = self._derive_schema()
        self._emit_iter: Iterator[tuple] | None = None

    def _derive_schema(self) -> Schema:
        in_schema = self.child.output_schema
        cols = [in_schema.column(g) for g in self.group_by]
        cols += [Column(a.output_name, a.output_type) for a in self.aggregates]
        return Schema(cols)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def describe(self) -> str:
        groups = ", ".join(self.group_by) or "()"
        aggs = ", ".join(a.output_name for a in self.aggregates)
        return f"{self.op_name}(by {groups}; {aggs})"

    def _open(self) -> None:
        self._set_phase("init")

    def _next(self) -> tuple | None:
        if self._emit_iter is None:
            self._emit_iter = self._consume_and_group()
        return next(self._emit_iter, None)

    def _next_batch(self, max_rows: int) -> list[tuple]:
        if self._emit_iter is None:
            # First batch pull fixes the input-drain granularity; the emit
            # stream is then sliced batch by batch.
            self._emit_iter = self._consume_and_group(consume=max_rows)
        return list(islice(self._emit_iter, max_rows))

    def _close(self) -> None:
        self._emit_iter = None

    # -- aggregation state ----------------------------------------------------

    def _make_state(self) -> list:
        states = []
        for spec in self.aggregates:
            if spec.func == "count":
                states.append(0)
            elif spec.func == "avg":
                states.append([0.0, 0])  # sum, count
            elif spec.func == "count_distinct":
                states.append(set())
            else:
                states.append(None)
        return states

    def _update_state(self, states: list, row: tuple, value_idxs: list[int | None]) -> None:
        for pos, spec in enumerate(self.aggregates):
            idx = value_idxs[pos]
            if spec.func == "count":
                if idx is None or row[idx] is not None:
                    states[pos] += 1
                continue
            value = row[idx]
            if value is None:
                continue
            if spec.func == "count_distinct":
                states[pos].add(value)
            elif spec.func == "sum":
                states[pos] = value if states[pos] is None else states[pos] + value
            elif spec.func == "min":
                states[pos] = value if states[pos] is None else min(states[pos], value)
            elif spec.func == "max":
                states[pos] = value if states[pos] is None else max(states[pos], value)
            else:  # avg
                states[pos][0] += value
                states[pos][1] += 1

    def _finalize_state(self, states: list) -> tuple:
        out = []
        for pos, spec in enumerate(self.aggregates):
            if spec.func == "avg":
                total, count = states[pos]
                out.append(total / count if count else None)
            elif spec.func == "count_distinct":
                out.append(len(states[pos]))
            else:
                out.append(states[pos])
        return tuple(out)

    def _bind_inputs(self) -> tuple[list[int], list[int | None]]:
        in_schema = self.child.output_schema
        group_idxs = [in_schema.index_of(g) for g in self.group_by]
        value_idxs: list[int | None] = [
            in_schema.index_of(a.column) if a.column else None for a in self.aggregates
        ]
        return group_idxs, value_idxs

    @staticmethod
    def _group_key_extractor(group_idxs: list[int]):
        """Precompiled group-key extractor for batch drains.

        Single-column grouping keys are the bare value, multi-column keys
        the value tuple — exactly what multi-arg ``itemgetter`` returns, and
        the same convention the per-row loops use.
        """
        if not group_idxs:
            return lambda row: ()
        return itemgetter(*group_idxs)

    def _consume_and_group(self, consume: int = 1) -> Iterator[tuple]:
        raise NotImplementedError


class HashAggregate(_AggregateBase):
    """Hash-partitioned aggregation."""

    op_name = "hash_aggregate"
    __slots__ = ()

    def _consume_and_group(self, consume: int = 1) -> Iterator[tuple]:
        self._set_phase("partition")
        group_idxs, value_idxs = self._bind_inputs()
        hooks = self.input_hooks
        single = len(group_idxs) == 1
        groups: dict[object, list] = {}
        # The row and batch drains are spelled out separately (same per-row
        # body) so neither path pays a per-row closure call.
        if consume > 1:
            child = self.child
            extract = self._group_key_extractor(group_idxs)
            dispatch = make_batch_dispatch(hooks)
            while True:
                batch = child.next_batch(consume)
                if not batch:
                    break
                self.rows_consumed += len(batch)
                keys = list(map(extract, batch))
                if dispatch is not None:
                    dispatch(keys, batch)
                for key, row in zip(keys, batch):
                    states = groups.get(key)
                    if states is None:
                        states = groups[key] = self._make_state()
                    self._update_state(states, row, value_idxs)
                self._tick_n(len(batch))
        else:
            while True:
                row = self.child.next()
                if row is None:
                    break
                self.rows_consumed += 1
                if single:
                    key = row[group_idxs[0]]
                elif group_idxs:
                    key = tuple(row[i] for i in group_idxs)
                else:
                    key = ()
                if hooks:
                    for hook in hooks:
                        hook(key, row)
                states = groups.get(key)
                if states is None:
                    states = groups[key] = self._make_state()
                self._update_state(states, row, value_idxs)
                self._tick()
        self.groups_seen = len(groups)
        self._set_phase("emit")
        for key, states in groups.items():
            group_part = (key,) if single else (tuple(key) if group_idxs else ())
            yield group_part + self._finalize_state(states)


class SortAggregate(_AggregateBase):
    """Sort-based aggregation: sort the input on the group key, then emit
    one row per run of equal keys."""

    op_name = "sort_aggregate"
    __slots__ = ()

    def _consume_and_group(self, consume: int = 1) -> Iterator[tuple]:
        if not self.group_by:
            # Degenerate to hash aggregation semantics for a global group.
            yield from HashAggregate._consume_and_group(self, consume)  # type: ignore[arg-type]
            return
        self._set_phase("read_input")
        group_idxs, value_idxs = self._bind_inputs()
        hooks = self.input_hooks
        single = len(group_idxs) == 1
        rows: list[tuple] = []
        if consume > 1:
            child = self.child
            extract = self._group_key_extractor(group_idxs)
            dispatch = make_batch_dispatch(hooks)
            while True:
                batch = child.next_batch(consume)
                if not batch:
                    break
                self.rows_consumed += len(batch)
                if dispatch is not None:
                    dispatch(list(map(extract, batch)), batch)
                rows.extend(batch)
                self._tick_n(len(batch))
        else:
            while True:
                row = self.child.next()
                if row is None:
                    break
                self.rows_consumed += 1
                if hooks:
                    key = row[group_idxs[0]] if single else tuple(row[i] for i in group_idxs)
                    for hook in hooks:
                        hook(key, row)
                rows.append(row)
                self._tick()
        self._set_phase("sort")
        if single:
            idx = group_idxs[0]
            rows.sort(key=lambda r: r[idx])
        else:
            rows.sort(key=lambda r: tuple(r[i] for i in group_idxs))
        self._set_phase("emit")
        current_key: object = _SENTINEL
        states: list | None = None
        for row in rows:
            key = row[group_idxs[0]] if single else tuple(row[i] for i in group_idxs)
            if key != current_key:
                if states is not None:
                    yield self._emit_group(current_key, states, single)
                current_key = key
                states = self._make_state()
                self.groups_seen += 1
            assert states is not None
            self._update_state(states, row, value_idxs)
        if states is not None:
            yield self._emit_group(current_key, states, single)

    def _emit_group(self, key: object, states: list, single: bool) -> tuple:
        group_part = (key,) if single else tuple(key)  # type: ignore[arg-type]
        return group_part + self._finalize_state(states)


class _Sentinel:
    __slots__ = ()


_SENTINEL = _Sentinel()
