"""Physical operators.

Every operator implements the Volcano iterator contract
(``open`` / ``next`` / ``close``) and counts emitted tuples; blocking
operators additionally expose per-tuple hooks at their preprocessing
phases, which is where the paper's estimators attach.
"""

from repro.executor.operators.aggregate import AggregateSpec, HashAggregate, SortAggregate
from repro.executor.operators.base import Operator, OperatorState
from repro.executor.operators.distinct import Distinct
from repro.executor.operators.filter import Filter
from repro.executor.operators.hash_join import HashJoin
from repro.executor.operators.limit import Limit
from repro.executor.operators.materialize import Materialize
from repro.executor.operators.merge_join import SortMergeJoin
from repro.executor.operators.nested_loops import IndexNestedLoopsJoin, NestedLoopsJoin
from repro.executor.operators.project import Project
from repro.executor.operators.scan import IndexScan, SampleScan, SeqScan
from repro.executor.operators.sort import Sort

__all__ = [
    "AggregateSpec",
    "Distinct",
    "Filter",
    "HashAggregate",
    "HashJoin",
    "IndexNestedLoopsJoin",
    "IndexScan",
    "Limit",
    "Materialize",
    "NestedLoopsJoin",
    "Operator",
    "OperatorState",
    "Project",
    "SampleScan",
    "SeqScan",
    "Sort",
    "SortAggregate",
    "SortMergeJoin",
]
