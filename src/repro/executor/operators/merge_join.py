"""Sort-merge join with internal sort phases.

Per Section 4.1.2 the sorts may live "within the sort-merge join and not in
some separate sort operator"; each input is fully read during its sort
phase, and ``left_input_hooks`` / ``right_input_hooks`` fire per tuple
there. The left (first-sorted) input plays the role of the hash join's
build side: ONCE builds its histogram during the left sort, then refines the
join estimate during the right sort — reaching the exact cardinality "at
the end of the sort of S", before the merge even begins.

``left_presorted`` / ``right_presorted`` skip the corresponding sort phase
(e.g. input from an index scan or a lower merge join). A presorted input is
*not* seen in advance, so estimation cannot be pushed into it — the paper
defaults to dne in that case, and the estimation manager honours that.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.common.errors import PlanError
from repro.executor.operators.base import Operator
from repro.storage.schema import Schema

__all__ = ["SortMergeJoin"]

RowHook = Callable[[object, tuple], None]


class SortMergeJoin(Operator):
    """Equijoin by sorting both inputs on the key, then merging."""

    op_name = "merge_join"

    __slots__ = (
        "left_child",
        "right_child",
        "left_key",
        "right_key",
        "left_presorted",
        "right_presorted",
        "left_input_hooks",
        "right_input_hooks",
        "left_rows_consumed",
        "right_rows_consumed",
        "_schema",
        "_gen",
    )

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: str,
        right_key: str,
        left_presorted: bool = False,
        right_presorted: bool = False,
    ):
        super().__init__()
        if not left_key or not right_key:
            raise PlanError("merge join requires key columns on both sides")
        self.left_child = left
        self.right_child = right
        self.left_key = left_key
        self.right_key = right_key
        self.left_presorted = left_presorted
        self.right_presorted = right_presorted
        self.left_input_hooks: list[RowHook] = []
        self.right_input_hooks: list[RowHook] = []
        self.left_rows_consumed: int = 0
        self.right_rows_consumed: int = 0
        self._schema = left.output_schema.concat(right.output_schema)
        self._gen: Iterator[tuple] | None = None

    # Blocking structure depends on presortedness: a sorted-here input is
    # consumed in a blocking sort phase (its subtree is a separate pipeline);
    # a presorted input streams through the merge.
    @property
    def blocking_child_indexes(self) -> tuple[int, ...]:  # type: ignore[override]
        blocked = []
        if not self.left_presorted:
            blocked.append(0)
        if not self.right_presorted:
            blocked.append(1)
        return tuple(blocked)

    @property
    def driver_child_index(self) -> int | None:  # type: ignore[override]
        if self.right_presorted:
            return 1
        if self.left_presorted:
            return 0
        return None  # both inputs blocked: merge phase drives itself

    def children(self) -> tuple[Operator, ...]:
        return (self.left_child, self.right_child)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def describe(self) -> str:
        return f"merge_join({self.left_key} = {self.right_key})"

    def _open(self) -> None:
        self._set_phase("init")
        self._gen = self._run()

    def _next(self) -> tuple | None:
        assert self._gen is not None, "next() before open()"
        return next(self._gen, None)

    def _close(self) -> None:
        self._gen = None

    def _read_side(
        self,
        child: Operator,
        key_idx: int,
        hooks: list[RowHook],
        presorted: bool,
        phase: str,
        count_attr: str,
    ) -> list[tuple]:
        self._set_phase(phase)
        rows: list[tuple] = []
        consumed = 0
        while True:
            row = child.next()
            if row is None:
                break
            consumed += 1
            if hooks:
                key = row[key_idx]
                for hook in hooks:
                    hook(key, row)
            rows.append(row)
            self._tick()
        setattr(self, count_attr, consumed)
        if not presorted:
            rows.sort(key=lambda r: r[key_idx])
        return rows

    def _run(self) -> Iterator[tuple]:
        left_idx = self.left_child.output_schema.index_of(self.left_key)
        right_idx = self.right_child.output_schema.index_of(self.right_key)
        left = self._read_side(
            self.left_child, left_idx, self.left_input_hooks,
            self.left_presorted, "sort_left", "left_rows_consumed",
        )
        right = self._read_side(
            self.right_child, right_idx, self.right_input_hooks,
            self.right_presorted, "sort_right", "right_rows_consumed",
        )

        self._set_phase("merge")
        i = j = 0
        n_left, n_right = len(left), len(right)
        while i < n_left and j < n_right:
            lv = left[i][left_idx]
            rv = right[j][right_idx]
            if lv < rv:
                i += 1
            elif lv > rv:
                j += 1
            else:
                # Gather the duplicate group on both sides and cross them.
                i_end = i
                while i_end < n_left and left[i_end][left_idx] == lv:
                    i_end += 1
                j_end = j
                while j_end < n_right and right[j_end][right_idx] == rv:
                    j_end += 1
                for a in range(i, i_end):
                    for b in range(j, j_end):
                        self._tick()
                        yield left[a] + right[b]
                i, j = i_end, j_end
