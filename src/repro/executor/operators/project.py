"""Projection operator (column pruning / computed columns)."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.executor.expressions import Col, Expression
from repro.executor.operators.base import Operator
from repro.storage.schema import Column, ColumnType, Schema

__all__ = ["Project"]


class Project(Operator):
    """Emit a tuple of expressions per input row.

    ``columns`` may mix plain column names (kept with their type and a
    fresh qualifier-less identity) and ``(alias, Expression)`` pairs for
    computed columns (typed FLOAT by default).
    """

    op_name = "project"
    driver_child_index = 0

    def __init__(self, child: Operator, columns: Sequence[str | tuple[str, Expression]]):
        super().__init__()
        if not columns:
            raise ValueError("projection needs at least one column")
        self.child = child
        self.columns = list(columns)
        self._schema = self._derive_schema()
        self._bound: list[Callable[[tuple], object]] | None = None

    def _derive_schema(self) -> Schema:
        in_schema = self.child.output_schema
        out: list[Column] = []
        for spec in self.columns:
            if isinstance(spec, str):
                out.append(in_schema.column(spec))
            else:
                alias, _expr = spec
                out.append(Column(alias, ColumnType.FLOAT))
        return Schema(out)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def describe(self) -> str:
        names = [s if isinstance(s, str) else s[0] for s in self.columns]
        return f"project({', '.join(names)})"

    def _open(self) -> None:
        in_schema = self.child.output_schema
        bound: list[Callable[[tuple], object]] = []
        for spec in self.columns:
            expr = Col(spec) if isinstance(spec, str) else spec[1]
            bound.append(expr.bind(in_schema))
        self._bound = bound
        self._set_phase("project")

    def _next(self) -> tuple | None:
        assert self._bound is not None
        row = self.child.next()
        if row is None:
            return None
        return tuple(fn(row) for fn in self._bound)

    def _next_batch(self, max_rows: int) -> list[tuple]:
        assert self._bound is not None
        bound = self._bound
        return [
            tuple(fn(row) for fn in bound)
            for row in self.child.next_batch(max_rows)
        ]
