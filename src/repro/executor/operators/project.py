"""Projection operator (column pruning / computed columns)."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.executor.expressions import Col, Expression, compile_projection_kernel
from repro.executor.operators.base import Operator
from repro.storage.schema import Column, ColumnType, Schema

__all__ = ["Project"]


class Project(Operator):
    """Emit a tuple of expressions per input row.

    ``columns`` may mix plain column names (kept with their type and a
    fresh qualifier-less identity) and ``(alias, Expression)`` pairs for
    computed columns (typed FLOAT by default).
    """

    op_name = "project"
    driver_child_index = 0

    __slots__ = ("child", "columns", "_schema", "_bound", "_batch_kernel")

    def __init__(self, child: Operator, columns: Sequence[str | tuple[str, Expression]]):
        super().__init__()
        if not columns:
            raise ValueError("projection needs at least one column")
        self.child = child
        self.columns = list(columns)
        self._schema = self._derive_schema()
        self._bound: list[Callable[[tuple], object]] | None = None
        self._batch_kernel: Callable[[list[tuple]], list[tuple]] | None = None

    def _derive_schema(self) -> Schema:
        in_schema = self.child.output_schema
        out: list[Column] = []
        for spec in self.columns:
            if isinstance(spec, str):
                out.append(in_schema.column(spec))
            else:
                alias, _expr = spec
                out.append(Column(alias, ColumnType.FLOAT))
        return Schema(out)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def describe(self) -> str:
        names = [s if isinstance(s, str) else s[0] for s in self.columns]
        return f"project({', '.join(names)})"

    def _open(self) -> None:
        in_schema = self.child.output_schema
        exprs = [
            Col(spec) if isinstance(spec, str) else spec[1] for spec in self.columns
        ]
        self._bound = [expr.bind(in_schema) for expr in exprs]
        # Compiled batch kernel building one output tuple per row in a
        # single comprehension; None keeps the bound-closure fallback.
        self._batch_kernel = compile_projection_kernel(exprs, in_schema)
        self._set_phase("project")

    def _next(self) -> tuple | None:
        assert self._bound is not None
        row = self.child.next()
        if row is None:
            return None
        return tuple(fn(row) for fn in self._bound)

    def _next_batch(self, max_rows: int) -> list[tuple]:
        assert self._bound is not None
        kernel = self._batch_kernel
        batch = self.child.next_batch(max_rows)
        if kernel is not None:
            return kernel(batch)
        bound = self._bound
        return [tuple(fn(row) for fn in bound) for row in batch]
