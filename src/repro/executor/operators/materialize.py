"""Materialization: a blocking buffer.

Fully consumes its child before emitting anything. Used to force a pipeline
break (e.g. to model a blocking boundary between two otherwise-pipelined
operators) and to let tests snapshot intermediate results.
"""

from __future__ import annotations

from typing import Iterator

from repro.executor.operators.base import Operator
from repro.storage.schema import Schema

__all__ = ["Materialize"]


class Materialize(Operator):
    """Buffer all child rows, then emit them in order."""

    op_name = "materialize"
    blocking_child_indexes = (0,)

    __slots__ = ("child", "rows_consumed", "_buffer", "_iter")

    def __init__(self, child: Operator):
        super().__init__()
        self.child = child
        self.rows_consumed: int = 0
        self._buffer: list[tuple] | None = None
        self._iter: Iterator[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    @property
    def output_schema(self) -> Schema:
        return self.child.output_schema

    def _next(self) -> tuple | None:
        if self._iter is None:
            self._set_phase("materialize")
            buffer: list[tuple] = []
            while True:
                row = self.child.next()
                if row is None:
                    break
                self.rows_consumed += 1
                buffer.append(row)
                self._tick()
            self._buffer = buffer
            self._set_phase("emit")
            self._iter = iter(buffer)
        return next(self._iter, None)

    def _close(self) -> None:
        self._buffer = None
        self._iter = None
