"""Operator base class: the Volcano iterator contract plus instrumentation.

Instrumentation is deliberately minimal, matching the paper's "lightweight"
requirement: each operator maintains a single integer ``tuples_emitted``
(the ``K_i`` of the getnext model), an optional :class:`TickBus` reference
that lets the progress monitor sample state *during* long blocking phases,
and hook lists that are skipped entirely when empty. Running a plan with no
estimators attached therefore pays almost nothing over a bare executor.

State machine
-------------
``CREATED -> OPEN -> EXHAUSTED -> CLOSED``; blocking operators additionally
publish a free-form ``phase`` string ("build", "partition_probe", "join",
...) and fire ``phase_hooks`` on transitions so estimators know which pass
is running.

Batched contract
----------------
:meth:`next_batch` is the amortized twin of :meth:`next`: it returns up to
``max_rows`` output rows as a list, in exactly the order :meth:`next` would
have produced them. An *empty* list signals exhaustion; a short non-empty
batch does **not** (callers loop until empty). The default implementation
falls back to repeated ``_next()`` calls, so every operator is batchable
out of the box; hot operators override ``_next_batch`` with vectorized
drains. Instrumentation equivalence is part of the contract:
``tuples_emitted`` advances by ``len(batch)``, per-row hooks (build/probe/
input) still fire once per row *in row order* inside native batch
implementations, and blocking-phase work reaches the tick bus through
:meth:`TickBus.tick_n`, so ``C(Q)``, phase transitions and every
estimator's ``D_{t+1}`` refinement observe the same counts and per-key
updates as the row-at-a-time path. See docs/BATCHING.md.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterator

from repro.common.errors import ExecutorError
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.engine import TickBus

__all__ = ["Operator", "OperatorState"]


class OperatorState(enum.Enum):
    CREATED = "created"
    OPEN = "open"
    EXHAUSTED = "exhausted"
    CLOSED = "closed"


class Operator(ABC):
    """Base class for all physical operators.

    Subclasses implement ``_open``, ``_next`` and ``_close`` and declare:

    * ``op_name`` — short name used in EXPLAIN output;
    * ``blocking_child_indexes`` — children that are fully consumed inside a
      preprocessing phase and therefore belong to a *different* pipeline
      (e.g. a hash join's build input);
    * ``driver_child_index`` — the child that continues the current pipeline
      (e.g. a hash join's probe input), or ``None`` for leaves.
    """

    op_name: str = "operator"
    blocking_child_indexes: tuple[int, ...] = ()
    driver_child_index: int | None = None

    def __init__(self) -> None:
        self.tuples_emitted: int = 0
        self.state: OperatorState = OperatorState.CREATED
        self._exhausted: bool = False
        self.phase: str = "init"
        self.node_id: int | None = None
        self.bus: "TickBus | None" = None
        self.phase_hooks: list[Callable[["Operator", str], None]] = []
        # Optimizer-estimated output cardinality; filled in by the planner
        # (or by hand in tests) and refined online by estimators.
        self.estimated_cardinality: float | None = None

    # -- tree structure ------------------------------------------------------

    @abstractmethod
    def children(self) -> tuple["Operator", ...]:
        """Child operators, build/outer side first where applicable."""

    @property
    @abstractmethod
    def output_schema(self) -> Schema:
        """Schema of emitted rows."""

    def describe(self) -> str:
        """One-line description for EXPLAIN output."""
        return self.op_name

    # -- iterator contract -----------------------------------------------------

    def open(self) -> None:
        """Open this operator and, by default, its children (pre-order)."""
        if self.state is OperatorState.OPEN:
            raise ExecutorError(f"{self.op_name}: open() called twice")
        if self.state is OperatorState.CLOSED:
            raise ExecutorError(f"{self.op_name}: open() after close()")
        for child in self.children():
            child.open()
        self.state = OperatorState.OPEN
        self._open()

    def next(self) -> tuple | None:
        """Produce the next output row, or None when exhausted."""
        if self.state is OperatorState.EXHAUSTED:
            return None
        if self.state is not OperatorState.OPEN:
            raise ExecutorError(
                f"{self.op_name}: next() called in state {self.state.value}"
            )
        row = self._next()
        if row is None:
            self.state = OperatorState.EXHAUSTED
            self._exhausted = True
            self._set_phase("done")
            return None
        self.tuples_emitted += 1
        return row

    def next_batch(self, max_rows: int) -> list[tuple]:
        """Produce up to ``max_rows`` output rows; ``[]`` means exhausted.

        Rows come in exactly the order repeated :meth:`next` calls would
        produce them, and a short non-empty batch does *not* imply
        exhaustion — callers pull until an empty batch. ``tuples_emitted``
        (the ``K_i`` counter) advances by ``len(batch)``, so ``C(Q)`` is
        identical between the row and batch paths.
        """
        if self.state is OperatorState.EXHAUSTED:
            return []
        if self.state is not OperatorState.OPEN:
            raise ExecutorError(
                f"{self.op_name}: next_batch() called in state {self.state.value}"
            )
        if max_rows < 1:
            raise ExecutorError(
                f"{self.op_name}: next_batch() needs max_rows >= 1, got {max_rows}"
            )
        batch = self._next_batch(max_rows)
        if not batch:
            self.state = OperatorState.EXHAUSTED
            self._exhausted = True
            self._set_phase("done")
            return batch
        self.tuples_emitted += len(batch)
        return batch

    def close(self) -> None:
        if self.state is OperatorState.CLOSED:
            return
        self._close()
        for child in self.children():
            child.close()
        self.state = OperatorState.CLOSED

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.next()
            if row is None:
                return
            yield row

    # -- subclass responsibilities --------------------------------------------

    def _open(self) -> None:
        """Hook for subclass open logic (children are already open)."""

    @abstractmethod
    def _next(self) -> tuple | None:
        """Produce one row or None."""

    def _next_batch(self, max_rows: int) -> list[tuple]:
        """Produce up to ``max_rows`` rows (``[]`` = exhausted).

        Default: the automatic row-at-a-time fallback — every operator is
        batchable without opting in. Overrides must emit rows in the same
        order as ``_next`` and keep firing per-row hooks in row order;
        ``tuples_emitted`` is maintained by :meth:`next_batch`, never here.
        ``_next`` must stay callable after it has returned None (all
        implementations use exhausted-iterator semantics), because a short
        batch defers the exhaustion transition to the following call.
        """
        batch: list[tuple] = []
        append = batch.append
        produce = self._next
        for _ in range(max_rows):
            row = produce()
            if row is None:
                break
            append(row)
        return batch

    def _close(self) -> None:
        """Hook for subclass close logic."""

    # -- instrumentation -------------------------------------------------------

    def _set_phase(self, phase: str) -> None:
        if phase == self.phase:
            return
        self.phase = phase
        for hook in self.phase_hooks:
            hook(self, phase)

    def _tick(self) -> None:
        """Report one unit of internal work to the tick bus, if attached.

        Called once per input row consumed during blocking phases; emitted
        rows tick via the engine's pull loop instead.
        """
        bus = self.bus
        if bus is not None:
            bus.tick()

    def _tick_n(self, k: int) -> None:
        """Report ``k`` units of internal work in one amortized call.

        The batch-path twin of :meth:`_tick`: native batch implementations
        call it once per input batch instead of once per row, so the bus
        count advances identically while the per-row bookkeeping vanishes.
        """
        bus = self.bus
        if bus is not None:
            bus.tick_n(k)

    def attach_bus(self, bus: "TickBus | None") -> None:
        """Attach a tick bus to this whole subtree."""
        self.bus = bus
        for child in self.children():
            child.attach_bus(bus)

    # -- convenience ------------------------------------------------------------

    @property
    def is_exhausted(self) -> bool:
        """True once this operator has produced its last row (sticky
        across close())."""
        return self._exhausted
