"""Operator base class: the Volcano iterator contract plus instrumentation.

Instrumentation is deliberately minimal, matching the paper's "lightweight"
requirement: each operator maintains a single integer ``tuples_emitted``
(the ``K_i`` of the getnext model), an optional :class:`TickBus` reference
that lets the progress monitor sample state *during* long blocking phases,
and hook lists that are skipped entirely when empty. Running a plan with no
estimators attached therefore pays almost nothing over a bare executor.

State machine
-------------
``CREATED -> OPEN -> EXHAUSTED -> CLOSED``; blocking operators additionally
publish a free-form ``phase`` string ("build", "partition_probe", "join",
...) and fire ``phase_hooks`` on transitions so estimators know which pass
is running.

Batched contract
----------------
:meth:`next_batch` is the amortized twin of :meth:`next`: it returns up to
``max_rows`` output rows as a list, in exactly the order :meth:`next` would
have produced them. An *empty* list signals exhaustion; a short non-empty
batch does **not** (callers loop until empty). The default implementation
falls back to repeated ``_next()`` calls, so every operator is batchable
out of the box; hot operators override ``_next_batch`` with vectorized
drains. Instrumentation equivalence is part of the contract:
``tuples_emitted`` advances by ``len(batch)``, hooks (build/probe/input)
observe every row in row order, and blocking-phase work reaches the tick
bus through :meth:`TickBus.tick_n`, so ``C(Q)``, phase transitions and
every estimator's ``D_{t+1}`` refinement observe the same counts and
per-key updates as the row-at-a-time path. See docs/BATCHING.md.

Batch-aggregated hooks
----------------------
Per-row hooks are the monitoring layer's hot path: with an estimator
attached, every consumed tuple costs a Python call per hook. A hook may
therefore declare a *batch twin* — a callable taking ``(keys, rows)`` for a
whole input batch — and native batch drains will invoke the twin once per
batch instead of the per-row form once per row. Pairing is declared on the
row hook itself, either as

* ``hook.batch_hook`` — the batch callable directly (closures), or
* ``hook.batch_hook_name`` — the *name* of a sibling method; for a bound
  method the twin is resolved against ``hook.__self__`` (a class-body
  ``on_probe.batch_hook_name = "on_probe_batch"`` marks every instance).

Hooks without a twin keep firing once per row, in row order, inside batch
drains — registering a plain callable keeps working unchanged. The batch
twin must leave the estimator in *exactly* the state the per-row sequence
would (same counts, same float sums, same histories); the differential
harness enforces this bit-for-bit.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterator

from repro.common.errors import ExecutorError
from repro.faults.plan import SHORT_READ, SITE_OPERATOR_PULL
from repro.storage.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executor.engine import TickBus
    from repro.faults.plan import FaultPlan

__all__ = ["Operator", "OperatorState", "batch_hook_of", "make_batch_dispatch"]


def batch_hook_of(hook: Callable) -> Callable | None:
    """Resolve the batch twin a per-row hook declares, if any.

    See the module docstring ("Batch-aggregated hooks") for the pairing
    protocol. Returns None for plain unpaired callables.
    """
    twin = getattr(hook, "batch_hook", None)
    if twin is not None:
        return twin
    name = getattr(hook, "batch_hook_name", None)
    if name:
        owner = getattr(hook, "__self__", None)
        if owner is not None:
            return getattr(owner, name, None)
    return None


def make_batch_dispatch(hooks: list[Callable]) -> Callable | None:
    """Compile a hook list into one ``(keys, rows)`` batch dispatcher.

    Returns None when there are no hooks (so drains can keep their
    zero-hook fast path). Hooks with a batch twin are invoked once per
    batch; unpaired hooks fall back to a per-row loop inside the dispatcher.
    Each hook still observes every (key, row) pair in row order; only the
    interleaving *between* hooks changes, which no estimator depends on.
    Native drains call this once per pass, never per row.
    """
    if not hooks:
        return None
    batch_fns: list[Callable] = []
    row_fns: list[Callable] = []
    for hook in hooks:
        twin = batch_hook_of(hook)
        if twin is not None:
            batch_fns.append(twin)
        else:
            row_fns.append(hook)
    if not row_fns and len(batch_fns) == 1:
        return batch_fns[0]

    def dispatch(keys: list, rows: list) -> None:
        for fn in batch_fns:
            fn(keys, rows)
        for row_fn in row_fns:
            for key, row in zip(keys, rows):
                row_fn(key, row)

    return dispatch


class OperatorState(enum.Enum):
    CREATED = "created"
    OPEN = "open"
    EXHAUSTED = "exhausted"
    CLOSED = "closed"


class Operator(ABC):
    """Base class for all physical operators.

    Subclasses implement ``_open``, ``_next`` and ``_close`` and declare:

    * ``op_name`` — short name used in EXPLAIN output;
    * ``blocking_child_indexes`` — children that are fully consumed inside a
      preprocessing phase and therefore belong to a *different* pipeline
      (e.g. a hash join's build input);
    * ``driver_child_index`` — the child that continues the current pipeline
      (e.g. a hash join's probe input), or ``None`` for leaves.
    """

    op_name: str = "operator"
    blocking_child_indexes: tuple[int, ...] = ()
    driver_child_index: int | None = None

    # Operators are per-tuple hot objects: __slots__ drops the per-instance
    # __dict__ and makes the tuples_emitted / bus / state attribute reads in
    # next()/next_batch() direct slot loads. Every concrete operator must
    # declare __slots__ too (the lint's operator registry catches strays).
    __slots__ = (
        "tuples_emitted",
        "state",
        "_exhausted",
        "phase",
        "node_id",
        "bus",
        "faults",
        "phase_hooks",
        "estimated_cardinality",
    )

    def __init__(self) -> None:
        self.tuples_emitted: int = 0
        self.state: OperatorState = OperatorState.CREATED
        self._exhausted: bool = False
        self.phase: str = "init"
        self.node_id: int | None = None
        self.bus: "TickBus | None" = None
        self.faults: "FaultPlan | None" = None
        self.phase_hooks: list[Callable[["Operator", str], None]] = []
        # Optimizer-estimated output cardinality; filled in by the planner
        # (or by hand in tests) and refined online by estimators.
        self.estimated_cardinality: float | None = None

    # -- tree structure ------------------------------------------------------

    @abstractmethod
    def children(self) -> tuple["Operator", ...]:
        """Child operators, build/outer side first where applicable."""

    @property
    @abstractmethod
    def output_schema(self) -> Schema:
        """Schema of emitted rows."""

    def describe(self) -> str:
        """One-line description for EXPLAIN output."""
        return self.op_name

    # -- iterator contract -----------------------------------------------------

    def open(self) -> None:
        """Open this operator and, by default, its children (pre-order)."""
        if self.state is OperatorState.OPEN:
            raise ExecutorError(f"{self.op_name}: open() called twice")
        if self.state is OperatorState.CLOSED:
            raise ExecutorError(f"{self.op_name}: open() after close()")
        for child in self.children():
            child.open()
        self.state = OperatorState.OPEN
        self._open()

    def next(self) -> tuple | None:
        """Produce the next output row, or None when exhausted."""
        if self.state is OperatorState.EXHAUSTED:
            return None
        if self.state is not OperatorState.OPEN:
            raise ExecutorError(
                f"{self.op_name}: next() called in state {self.state.value}"
            )
        if self.faults is not None:
            self.faults.fire(SITE_OPERATOR_PULL, detail=self.op_name)
        row = self._next()
        if row is None:
            self.state = OperatorState.EXHAUSTED
            self._exhausted = True
            self._set_phase("done")
            return None
        self.tuples_emitted += 1
        return row

    def next_batch(self, max_rows: int) -> list[tuple]:
        """Produce up to ``max_rows`` output rows; ``[]`` means exhausted.

        Rows come in exactly the order repeated :meth:`next` calls would
        produce them, and a short non-empty batch does *not* imply
        exhaustion — callers pull until an empty batch. ``tuples_emitted``
        (the ``K_i`` counter) advances by ``len(batch)``, so ``C(Q)`` is
        identical between the row and batch paths.
        """
        if self.state is OperatorState.EXHAUSTED:
            return []
        if self.state is not OperatorState.OPEN:
            raise ExecutorError(
                f"{self.op_name}: next_batch() called in state {self.state.value}"
            )
        if max_rows < 1:
            raise ExecutorError(
                f"{self.op_name}: next_batch() needs max_rows >= 1, got {max_rows}"
            )
        if self.faults is not None:
            spec = self.faults.fire(SITE_OPERATOR_PULL, detail=self.op_name)
            if spec is not None and spec.kind == SHORT_READ:
                max_rows = self.faults.short_read(max_rows)
        batch = self._next_batch(max_rows)
        if not batch:
            self.state = OperatorState.EXHAUSTED
            self._exhausted = True
            self._set_phase("done")
            return batch
        self.tuples_emitted += len(batch)
        return batch

    def close(self) -> None:
        if self.state is OperatorState.CLOSED:
            return
        self._close()
        for child in self.children():
            child.close()
        self.state = OperatorState.CLOSED

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.next()
            if row is None:
                return
            yield row

    # -- subclass responsibilities --------------------------------------------

    def _open(self) -> None:
        """Hook for subclass open logic (children are already open)."""

    @abstractmethod
    def _next(self) -> tuple | None:
        """Produce one row or None."""

    def _next_batch(self, max_rows: int) -> list[tuple]:
        """Produce up to ``max_rows`` rows (``[]`` = exhausted).

        Default: the automatic row-at-a-time fallback — every operator is
        batchable without opting in. Overrides must emit rows in the same
        order as ``_next`` and keep firing per-row hooks in row order;
        ``tuples_emitted`` is maintained by :meth:`next_batch`, never here.
        ``_next`` must stay callable after it has returned None (all
        implementations use exhausted-iterator semantics), because a short
        batch defers the exhaustion transition to the following call.
        """
        batch: list[tuple] = []
        append = batch.append
        produce = self._next
        for _ in range(max_rows):
            row = produce()
            if row is None:
                break
            append(row)
        return batch

    def _close(self) -> None:
        """Hook for subclass close logic."""

    # -- instrumentation -------------------------------------------------------

    def _set_phase(self, phase: str) -> None:
        if phase == self.phase:
            return
        self.phase = phase
        for hook in self.phase_hooks:
            hook(self, phase)

    def _tick(self) -> None:
        """Report one unit of internal work to the tick bus, if attached.

        Called once per input row consumed during blocking phases; emitted
        rows tick via the engine's pull loop instead.
        """
        bus = self.bus
        if bus is not None:
            bus.tick()

    def _tick_n(self, k: int) -> None:
        """Report ``k`` units of internal work in one amortized call.

        The batch-path twin of :meth:`_tick`: native batch implementations
        call it once per input batch instead of once per row, so the bus
        count advances identically while the per-row bookkeeping vanishes.
        """
        bus = self.bus
        if bus is not None:
            bus.tick_n(k)

    def attach_bus(self, bus: "TickBus | None") -> None:
        """Attach a tick bus to this whole subtree."""
        self.bus = bus
        for child in self.children():
            child.attach_bus(bus)

    def attach_faults(self, faults: "FaultPlan | None") -> None:
        """Install a fault plan on this whole subtree (None to remove).

        Arms the ``operator.pull`` site on every node and ``scan.read`` on
        the leaves. Without a plan the probes are single ``is None``
        checks, so unfaulted runs pay nothing measurable.
        """
        self.faults = faults
        for child in self.children():
            child.attach_faults(faults)

    # -- convenience ------------------------------------------------------------

    @property
    def is_exhausted(self) -> bool:
        """True once this operator has produced its last row (sticky
        across close())."""
        return self._exhausted
