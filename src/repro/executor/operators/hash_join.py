"""Hash join (grace-style partitioned, or in-memory streaming).

The grace/hybrid structure matters to the paper twice over:

* The **build pass** sees every build tuple before any probing — this is
  where ONCE builds its exact frequency histogram (``build_hooks``).
* The **probe partitioning pass** sees every probe tuple *in input (random)
  order* before any joining — this is where ONCE refines its estimate
  (``probe_hooks``) and why it converges "by the end of the first pass on
  the probe input".
* The **join pass** then reads data *partition-wise*, so output is clustered
  by hash partition. This physically reproduces the reordering that makes
  the dne and byte estimators fluctuate (Figure 4): partitions holding
  high-multiplicity keys emit disproportionately many tuples.

``memory_partitions`` controls the hybrid spectrum, as in hybrid hash join:
partitions below it are kept in memory and joined *during* the probe pass
(emitting immediately), the rest are spilled and joined partition-wise
afterwards. ``memory_partitions=0`` is pure grace (nothing emitted until
the probe pass completes); ``num_partitions=1`` degenerates to a fully
in-memory streaming join. The default (8 partitions, 1 in memory) matches
the behaviour the paper observes in PostgreSQL: a trickle of output during
probing whose rate reflects only the in-memory partition's key
multiplicities, then bursts per spilled partition — the exact reason dne
and byte estimates fluctuate under skew.
"""

from __future__ import annotations

from itertools import islice
from operator import itemgetter
from typing import Callable, Iterator, Sequence

from repro.common.errors import PlanError
from repro.executor.operators.base import Operator, make_batch_dispatch
from repro.storage.schema import Schema

__all__ = ["HashJoin", "JOIN_TYPES"]

KeyHook = Callable[[object, tuple], None]

#: Supported join semantics, all probe-side streaming:
#: ``inner``; ``outer`` (probe-preserving: unmatched probe rows padded with
#: NULLs on the build side); ``semi`` / ``anti`` (emit the probe row once if
#: it has any / no build match; output schema is the probe schema only).
#: Section 4.1.1: "similar estimators can be constructed for semijoins and
#: various kinds of outerjoins as well" — see
#: :func:`repro.core.join_estimators.attach_once_estimator`.
JOIN_TYPES = ("inner", "outer", "semi", "anti")


class HashJoin(Operator):
    """Equijoin of a build child (index 0) and probe child (index 1).

    Parameters
    ----------
    build_keys / probe_keys:
        Equal-length column name sequences; single-column keys join on the
        bare value, multi-column keys on the value tuple.
    num_partitions:
        Total hash partitions; 1 degenerates to a fully in-memory join.
    memory_partitions:
        Partitions joined in memory during the probe pass (hybrid hash
        join); 0 selects pure grace behaviour.
    join_type:
        One of :data:`JOIN_TYPES`; see the module docstring.
    """

    op_name = "hash_join"
    blocking_child_indexes = (0,)
    driver_child_index = 1

    __slots__ = (
        "build_child",
        "probe_child",
        "build_keys",
        "probe_keys",
        "num_partitions",
        "memory_partitions",
        "join_type",
        "build_hooks",
        "probe_hooks",
        "build_rows_consumed",
        "probe_rows_consumed",
        "_schema",
        "_gen",
    )

    def __init__(
        self,
        build: Operator,
        probe: Operator,
        build_keys: Sequence[str] | str,
        probe_keys: Sequence[str] | str,
        num_partitions: int = 8,
        memory_partitions: int = 1,
        join_type: str = "inner",
    ):
        super().__init__()
        if join_type not in JOIN_TYPES:
            raise PlanError(f"join_type must be one of {JOIN_TYPES}, got {join_type!r}")
        if isinstance(build_keys, str):
            build_keys = (build_keys,)
        if isinstance(probe_keys, str):
            probe_keys = (probe_keys,)
        if len(build_keys) != len(probe_keys) or not build_keys:
            raise PlanError(
                f"join key arity mismatch: {list(build_keys)} vs {list(probe_keys)}"
            )
        if num_partitions < 1:
            raise PlanError(f"num_partitions must be >= 1, got {num_partitions}")
        if not 0 <= memory_partitions <= num_partitions:
            raise PlanError(
                f"memory_partitions must be in [0, {num_partitions}], "
                f"got {memory_partitions}"
            )
        self.build_child = build
        self.probe_child = probe
        self.build_keys = tuple(build_keys)
        self.probe_keys = tuple(probe_keys)
        self.num_partitions = num_partitions
        self.memory_partitions = num_partitions if num_partitions == 1 else memory_partitions
        self.join_type = join_type
        self.build_hooks: list[KeyHook] = []
        self.probe_hooks: list[KeyHook] = []
        self.build_rows_consumed: int = 0
        self.probe_rows_consumed: int = 0
        if join_type in ("semi", "anti"):
            self._schema = probe.output_schema
        else:
            self._schema = build.output_schema.concat(probe.output_schema)
        self._gen: Iterator[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.build_child, self.probe_child)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def describe(self) -> str:
        conds = ", ".join(
            f"{b} = {p}" for b, p in zip(self.build_keys, self.probe_keys)
        )
        if self.memory_partitions == self.num_partitions:
            mode = "memory"
        elif self.memory_partitions == 0:
            mode = "grace"
        else:
            mode = "hybrid"
        kind = "" if self.join_type == "inner" else f" {self.join_type}"
        return f"hash_join[{mode}]{kind}({conds})"

    # -- key extraction --------------------------------------------------------

    def _key_extractor(self, schema: Schema, keys: tuple[str, ...]):
        # operator.itemgetter is a C-level extractor: single-column keys
        # join on the bare value, multi-column keys on the value tuple
        # (multi-arg itemgetter returns exactly that tuple).
        idxs = [schema.index_of(k) for k in keys]
        return itemgetter(*idxs)

    # -- execution ---------------------------------------------------------------

    def _open(self) -> None:
        self._set_phase("init")
        # The generator is created lazily on the first pull: the first
        # next_batch() call fixes the internal consume granularity, while a
        # first next() call yields the classic row-at-a-time loop. Either
        # way the emitted row stream is identical.
        self._gen = None

    def _next(self) -> tuple | None:
        gen = self._gen
        if gen is None:
            gen = self._gen = self._run_hybrid()
        return next(gen, None)

    def _next_batch(self, max_rows: int) -> list[tuple]:
        gen = self._gen
        if gen is None:
            gen = self._gen = self._run_hybrid(consume=max_rows)
        return list(islice(gen, max_rows))

    def _close(self) -> None:
        self._gen = None

    def _consume_build(
        self, on_row: Callable[[object, tuple], None], consume: int = 1
    ) -> None:
        """Read the whole build input, firing hooks and ``on_row``."""
        self._set_phase("build")
        extract = self._key_extractor(self.build_child.output_schema, self.build_keys)
        hooks = self.build_hooks
        if consume > 1:
            child = self.build_child
            dispatch = make_batch_dispatch(hooks)
            while True:
                batch = child.next_batch(consume)
                if not batch:
                    return
                self.build_rows_consumed += len(batch)
                keys = list(map(extract, batch))
                if dispatch is not None:
                    dispatch(keys, batch)
                for key, row in zip(keys, batch):
                    if key is not None:
                        on_row(key, row)
                self._tick_n(len(batch))
        while True:
            row = self.build_child.next()
            if row is None:
                return
            self.build_rows_consumed += 1
            key = extract(row)
            if hooks:
                for hook in hooks:
                    hook(key, row)
            if key is not None:
                on_row(key, row)
            self._tick()

    def _make_emitter(self):
        """Per-probe-row emission closure implementing the join semantics."""
        join_type = self.join_type
        if join_type == "inner":
            def emit(matches, probe_row):
                if matches:
                    for build_row in matches:
                        yield build_row + probe_row
        elif join_type == "outer":
            padding = (None,) * len(self.build_child.output_schema)

            def emit(matches, probe_row):
                if matches:
                    for build_row in matches:
                        yield build_row + probe_row
                else:
                    yield padding + probe_row
        elif join_type == "semi":
            def emit(matches, probe_row):
                if matches:
                    yield probe_row
        else:  # anti
            def emit(matches, probe_row):
                if not matches:
                    yield probe_row
        return emit

    def _run_hybrid(self, consume: int = 1) -> Iterator[tuple]:
        """Hybrid hash join.

        Build pass: partition the build input; partitions below
        ``memory_partitions`` become in-memory hash tables, the rest stay as
        spilled row lists. Probe pass: every probe tuple fires hooks in input
        order; tuples hitting an in-memory partition join and emit
        immediately, the rest are spilled. Join pass: spilled partitions are
        joined one at a time, so their output is clustered by partition.

        ``consume`` is the granularity at which the *inputs* are pulled:
        1 preserves the classic per-row loops; larger values drain children
        through ``next_batch``, amortize tick-bus traffic via ``tick_n``, and
        feed hooks through the batch dispatcher: hooks declaring a batch twin
        receive each pass's ``(keys, rows)`` once per batch, the rest fire
        once per input row in input order. Either way every hook observes
        the full (key, row) sequence, so estimator refinement is
        bit-identical in both modes.
        """
        n_parts = self.num_partitions
        n_memory = self.memory_partitions
        memory_tables: list[dict[object, list[tuple]]] = [
            {} for _ in range(n_memory)
        ]
        spilled_build: list[list[tuple[object, tuple]]] = [
            [] for _ in range(n_parts - n_memory)
        ]

        def insert(key: object, row: tuple) -> None:
            part = hash(key) % n_parts
            if part < n_memory:
                memory_tables[part].setdefault(key, []).append(row)
            else:
                spilled_build[part - n_memory].append((key, row))

        self._consume_build(insert, consume)

        emit = self._make_emitter()

        # Probe pass: hooks fire for every probe tuple while the stream is
        # still in input (random) order — this is where ONCE estimation
        # happens. In-memory partitions emit immediately (the hybrid
        # trickle); other tuples are spilled for the join pass.
        self._set_phase(
            "probe" if n_memory == n_parts else "partition_probe"
        )
        spilled_probe: list[list[tuple[object, tuple]]] = [
            [] for _ in range(n_parts - n_memory)
        ]
        extract = self._key_extractor(self.probe_child.output_schema, self.probe_keys)
        hooks = self.probe_hooks
        if consume > 1:
            probe_child = self.probe_child
            dispatch = make_batch_dispatch(hooks)
            while True:
                batch = probe_child.next_batch(consume)
                if not batch:
                    break
                self.probe_rows_consumed += len(batch)
                self._tick_n(len(batch))
                keys = list(map(extract, batch))
                if dispatch is not None:
                    dispatch(keys, batch)
                for key, probe_row in zip(keys, batch):
                    if key is None:
                        # NULL keys never match; outer/anti still emit.
                        yield from emit(None, probe_row)
                        continue
                    part = hash(key) % n_parts
                    if part < n_memory:
                        yield from emit(memory_tables[part].get(key), probe_row)
                    else:
                        spilled_probe[part - n_memory].append((key, probe_row))
        else:
            while True:
                probe_row = self.probe_child.next()
                if probe_row is None:
                    break
                self.probe_rows_consumed += 1
                key = extract(probe_row)
                if hooks:
                    for hook in hooks:
                        hook(key, probe_row)
                self._tick()
                if key is None:
                    # NULL keys never match; outer/anti semantics still emit.
                    yield from emit(None, probe_row)
                    continue
                part = hash(key) % n_parts
                if part < n_memory:
                    yield from emit(memory_tables[part].get(key), probe_row)
                else:
                    spilled_probe[part - n_memory].append((key, probe_row))

        # Join pass over spilled partitions: output clustered by partition,
        # the reordering the paper's Figure 4 discussion relies on.
        if n_memory < n_parts:
            self._set_phase("join")
            for part_id in range(n_parts - n_memory):
                table: dict[object, list[tuple]] = {}
                for key, row in spilled_build[part_id]:
                    table.setdefault(key, []).append(row)
                spilled_build[part_id] = []  # release as we go
                if consume > 1:
                    self._tick_n(len(spilled_probe[part_id]))
                    for key, probe_row in spilled_probe[part_id]:
                        yield from emit(table.get(key), probe_row)
                else:
                    for key, probe_row in spilled_probe[part_id]:
                        self._tick()
                        yield from emit(table.get(key), probe_row)
                spilled_probe[part_id] = []
