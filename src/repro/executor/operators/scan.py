"""Table scans.

:class:`SeqScan` reads a table in storage order. :class:`SampleScan` is the
paper's modified table scan (Section 5, "Implementation"): it first emits a
block-level random sample of the table, then the remaining blocks, excluding
sampled ones — so consumers see a statistically random prefix of the
relation, which is what gives the estimators their confidence guarantees.
``sample_boundary_hooks`` fire once, when the sample portion is exhausted;
this is the inter-operator punctuation the paper uses "to notify the
operator when the random sample is over".
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Iterator

from repro.executor.operators.base import Operator
from repro.faults.plan import SHORT_READ, SITE_SCAN_READ
from repro.storage.sampling import BlockSample, plan_block_sample
from repro.storage.schema import Schema
from repro.storage.table import Table

__all__ = ["IndexScan", "SampleScan", "SeqScan"]


class SeqScan(Operator):
    """Sequential scan over a registered table."""

    op_name = "seq_scan"
    __slots__ = ("table", "_iter")

    def __init__(self, table: Table):
        super().__init__()
        self.table = table
        self._iter: Iterator[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return ()

    @property
    def output_schema(self) -> Schema:
        return self.table.schema

    @property
    def total_rows(self) -> int:
        """Exact cardinality, known from the catalog."""
        return self.table.num_rows

    def describe(self) -> str:
        return f"seq_scan({self.table.name})"

    def _open(self) -> None:
        self._iter = iter(self.table.rows())
        self._set_phase("scan")

    def _next(self) -> tuple | None:
        assert self._iter is not None, "next() before open()"
        if self.faults is not None:
            self.faults.fire(SITE_SCAN_READ, detail=self.table.name)
        return next(self._iter, None)

    def _next_batch(self, max_rows: int) -> list[tuple]:
        assert self._iter is not None, "next_batch() before open()"
        if self.faults is not None:
            # Probe *before* touching the iterator: an injected error leaves
            # the scan position untouched, and a short read only shrinks the
            # budget (a short non-empty batch never implies exhaustion).
            spec = self.faults.fire(SITE_SCAN_READ, detail=self.table.name)
            if spec is not None and spec.kind == SHORT_READ:
                max_rows = self.faults.short_read(max_rows)
        return list(islice(self._iter, max_rows))

    def _close(self) -> None:
        self._iter = None


class IndexScan(Operator):
    """Scan that emits rows in key order, as an index scan would.

    Used to feed presorted inputs into merge joins (the shaded pipeline of
    the paper's Figure 1: "a merge join and the index scans feeding it").
    The emitted stream is *sorted, hence clustered, hence not random* — the
    case where the paper's estimators cannot push estimation into a
    preprocessing pass and the framework "defaults to the usual dne
    estimate" (Section 4.1.2). The (simulated) index is built eagerly at
    construction, mirroring a preexisting on-disk index.

    Optional ``low``/``high`` bounds restrict the scan to
    ``low <= key <= high`` (an index range scan).
    """

    op_name = "index_scan"
    __slots__ = ("table", "key", "low", "high", "_sorted_rows", "_iter")

    def __init__(
        self,
        table: Table,
        key: str,
        low: object | None = None,
        high: object | None = None,
    ):
        super().__init__()
        self.table = table
        self.key = key
        self.low = low
        self.high = high
        key_idx = table.schema.index_of(key)
        rows = sorted(table.rows(), key=lambda r: r[key_idx])
        if low is not None:
            rows = [r for r in rows if r[key_idx] >= low]
        if high is not None:
            rows = [r for r in rows if r[key_idx] <= high]
        self._sorted_rows: list[tuple] = rows
        self._iter: Iterator[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return ()

    @property
    def output_schema(self) -> Schema:
        return self.table.schema

    @property
    def total_rows(self) -> int:
        """Exact cardinality of the (range-restricted) scan."""
        return len(self._sorted_rows)

    def describe(self) -> str:
        bounds = ""
        if self.low is not None or self.high is not None:
            bounds = f", [{self.low!r}..{self.high!r}]"
        return f"index_scan({self.table.name}.{self.key.split('.')[-1]}{bounds})"

    def _open(self) -> None:
        self._iter = iter(self._sorted_rows)
        self._set_phase("scan")

    def _next(self) -> tuple | None:
        assert self._iter is not None, "next() before open()"
        if self.faults is not None:
            self.faults.fire(SITE_SCAN_READ, detail=self.table.name)
        return next(self._iter, None)

    def _next_batch(self, max_rows: int) -> list[tuple]:
        assert self._iter is not None, "next_batch() before open()"
        if self.faults is not None:
            spec = self.faults.fire(SITE_SCAN_READ, detail=self.table.name)
            if spec is not None and spec.kind == SHORT_READ:
                max_rows = self.faults.short_read(max_rows)
        return list(islice(self._iter, max_rows))

    def _close(self) -> None:
        self._iter = None


class SampleScan(Operator):
    """Scan that emits a block-level random sample first, then the remainder.

    Parameters
    ----------
    fraction:
        Target sample fraction of rows (block granularity, so the actual
        fraction can slightly exceed the target).
    seed:
        Sampling seed; the same (table, seed) pair always samples the same
        blocks, modelling a precomputed on-disk sample.
    """

    op_name = "sample_scan"
    __slots__ = (
        "table",
        "fraction",
        "seed",
        "sample",
        "sample_boundary_hooks",
        "in_sample_portion",
        "_sample_iter",
        "_remainder_iter",
    )

    def __init__(self, table: Table, fraction: float, seed: int = 0):
        super().__init__()
        self.table = table
        self.fraction = fraction
        self.seed = seed
        self.sample: BlockSample = plan_block_sample(table, fraction, seed)
        self.sample_boundary_hooks: list[Callable[["SampleScan"], None]] = []
        self.in_sample_portion: bool = True
        self._sample_iter: Iterator[tuple] | None = None
        self._remainder_iter: Iterator[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return ()

    @property
    def output_schema(self) -> Schema:
        return self.table.schema

    @property
    def total_rows(self) -> int:
        return self.table.num_rows

    @property
    def sample_rows(self) -> int:
        return self.sample.sample_row_count

    def describe(self) -> str:
        return f"sample_scan({self.table.name}, {self.fraction:.0%})"

    def _open(self) -> None:
        self._sample_iter = self.sample.iter_sample()
        self._remainder_iter = self.sample.iter_remainder()
        self.in_sample_portion = True
        self._set_phase("sample")

    def _next(self) -> tuple | None:
        if self.faults is not None:
            self.faults.fire(SITE_SCAN_READ, detail=self.table.name)
        if self.in_sample_portion:
            assert self._sample_iter is not None
            row = next(self._sample_iter, None)
            if row is not None:
                return row
            self.in_sample_portion = False
            self._set_phase("remainder")
            for hook in self.sample_boundary_hooks:
                hook(self)
        assert self._remainder_iter is not None
        return next(self._remainder_iter, None)

    def _next_batch(self, max_rows: int) -> list[tuple]:
        if self.faults is not None:
            spec = self.faults.fire(SITE_SCAN_READ, detail=self.table.name)
            if spec is not None and spec.kind == SHORT_READ:
                max_rows = self.faults.short_read(max_rows)
        if self.in_sample_portion:
            assert self._sample_iter is not None
            batch = list(islice(self._sample_iter, max_rows))
            if batch:
                # A batch never straddles the sample/remainder boundary:
                # consumers dispatch estimator updates only *after* the pull,
                # so firing the boundary punctuation (which may freeze an
                # estimator) mid-batch would retroactively drop the sample
                # rows in front of it. Return the short sample-only batch;
                # the punctuation fires on the next pull, before the first
                # remainder row — the same stream position as the row path.
                return batch
            self.in_sample_portion = False
            self._set_phase("remainder")
            for hook in self.sample_boundary_hooks:
                hook(self)
        assert self._remainder_iter is not None
        return list(islice(self._remainder_iter, max_rows))

    def _close(self) -> None:
        self._sample_iter = None
        self._remainder_iter = None
