"""Nested-loops joins.

Section 4.1.3: a plain nested-loops join has *no* preprocessing pass over
its outer input, so nothing can be pushed down — estimation reduces to the
driver-node estimator. The inner input, however, *is* fully materialised
(or indexed) before the outer loop begins; ``inner_input_hooks`` fire
during that pass, so when a temporary index is built
(:class:`IndexNestedLoopsJoin`) an exact inner histogram is available and
the outer pass can be estimated like a hash-join probe pass
(``outer_hooks``), which is the paper's "in the presence of such
preprocessing phases, we can construct estimators similar to the
incremental estimator for hash joins".
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.common.errors import PlanError
from repro.executor.expressions import Expression
from repro.executor.operators.base import Operator
from repro.storage.schema import Schema

__all__ = ["IndexNestedLoopsJoin", "NestedLoopsJoin"]

RowHook = Callable[[object, tuple], None]


class NestedLoopsJoin(Operator):
    """Theta join: materialise the inner input, loop it per outer row.

    ``predicate`` is evaluated against the concatenated (outer + inner) row;
    ``None`` yields the cross product.
    """

    op_name = "nl_join"
    blocking_child_indexes = (1,)
    driver_child_index = 0

    __slots__ = (
        "outer_child",
        "inner_child",
        "predicate",
        "inner_input_hooks",
        "outer_hooks",
        "outer_rows_consumed",
        "_schema",
        "_gen",
    )

    def __init__(self, outer: Operator, inner: Operator, predicate: Expression | None = None):
        super().__init__()
        self.outer_child = outer
        self.inner_child = inner
        self.predicate = predicate
        self.inner_input_hooks: list[Callable[[tuple], None]] = []
        self.outer_hooks: list[Callable[[tuple], None]] = []
        self.outer_rows_consumed: int = 0
        self._schema = outer.output_schema.concat(inner.output_schema)
        self._gen: Iterator[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.outer_child, self.inner_child)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def describe(self) -> str:
        pred = repr(self.predicate) if self.predicate is not None else "true"
        return f"nl_join({pred})"

    def _open(self) -> None:
        self._set_phase("init")
        self._gen = self._run()

    def _next(self) -> tuple | None:
        assert self._gen is not None, "next() before open()"
        return next(self._gen, None)

    def _close(self) -> None:
        self._gen = None

    def _materialize_inner(self) -> list[tuple]:
        self._set_phase("materialize_inner")
        rows: list[tuple] = []
        hooks = self.inner_input_hooks
        while True:
            row = self.inner_child.next()
            if row is None:
                return rows
            if hooks:
                for hook in hooks:
                    hook(row)
            rows.append(row)
            self._tick()

    def _run(self) -> Iterator[tuple]:
        inner_rows = self._materialize_inner()
        self._set_phase("loop")
        bound = (
            self.predicate.bind(self._schema) if self.predicate is not None else None
        )
        out_hooks = self.outer_hooks
        while True:
            outer_row = self.outer_child.next()
            if outer_row is None:
                return
            self.outer_rows_consumed += 1
            if out_hooks:
                for hook in out_hooks:
                    hook(outer_row)
            self._tick()
            for inner_row in inner_rows:
                joined = outer_row + inner_row
                if bound is None or bound(joined):
                    yield joined


class IndexNestedLoopsJoin(Operator):
    """Equijoin via a temporary hash index built on the inner input.

    The index-build pass gives the estimation framework an exact inner
    histogram; the outer pass then streams in input order, so the ONCE
    incremental estimator applies exactly as in the hash-join probe pass.
    """

    op_name = "index_nl_join"
    blocking_child_indexes = (1,)
    driver_child_index = 0

    __slots__ = (
        "outer_child",
        "inner_child",
        "outer_key",
        "inner_key",
        "inner_input_hooks",
        "outer_hooks",
        "outer_rows_consumed",
        "_schema",
        "_gen",
    )

    def __init__(self, outer: Operator, inner: Operator, outer_key: str, inner_key: str):
        super().__init__()
        if not outer_key or not inner_key:
            raise PlanError("index NL join requires key columns on both sides")
        self.outer_child = outer
        self.inner_child = inner
        self.outer_key = outer_key
        self.inner_key = inner_key
        self.inner_input_hooks: list[RowHook] = []
        self.outer_hooks: list[RowHook] = []
        self.outer_rows_consumed: int = 0
        self._schema = outer.output_schema.concat(inner.output_schema)
        self._gen: Iterator[tuple] | None = None

    def children(self) -> tuple[Operator, ...]:
        return (self.outer_child, self.inner_child)

    @property
    def output_schema(self) -> Schema:
        return self._schema

    def describe(self) -> str:
        return f"index_nl_join({self.outer_key} = {self.inner_key})"

    def _open(self) -> None:
        self._set_phase("init")
        self._gen = self._run()

    def _next(self) -> tuple | None:
        assert self._gen is not None, "next() before open()"
        return next(self._gen, None)

    def _close(self) -> None:
        self._gen = None

    def _run(self) -> Iterator[tuple]:
        self._set_phase("build_index")
        inner_idx = self.inner_child.output_schema.index_of(self.inner_key)
        index: dict[object, list[tuple]] = {}
        hooks = self.inner_input_hooks
        while True:
            row = self.inner_child.next()
            if row is None:
                break
            key = row[inner_idx]
            if hooks:
                for hook in hooks:
                    hook(key, row)
            if key is not None:
                index.setdefault(key, []).append(row)
            self._tick()

        self._set_phase("loop")
        outer_idx = self.outer_child.output_schema.index_of(self.outer_key)
        out_hooks = self.outer_hooks
        while True:
            outer_row = self.outer_child.next()
            if outer_row is None:
                return
            self.outer_rows_consumed += 1
            key = outer_row[outer_idx]
            if out_hooks:
                for hook in out_hooks:
                    hook(key, outer_row)
            self._tick()
            matches = index.get(key)
            if matches:
                for inner_row in matches:
                    yield outer_row + inner_row
