"""Execution driver.

:class:`ExecutionEngine` pulls the plan root to exhaustion, counting rows
and wall time. A :class:`TickBus` — shared by every operator in the tree —
lets observers (the progress monitor) sample execution state at a bounded
frequency *during* blocking phases, when no rows surface at the root for
long stretches; this plays the role of the paper's modification to
"the central control function for query execution in PostgreSQL, which acts
like a wrapper for all operators".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ExecutorError
from repro.common.locks import acquires, holds_lock
from repro.executor.operators.base import Operator
from repro.executor.plan import validate_plan
from repro.faults.plan import SHORT_READ, SITE_CURSOR_FETCH, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robust.store import HistoryStore

__all__ = ["ExecutionEngine", "ExecutionResult", "PlanCursor", "TickBus"]


class TickBus:
    """A shared work counter with bounded-frequency callbacks.

    Operators call :meth:`tick` once per unit of internal work (an input row
    consumed in a blocking phase, an output row emitted). Every
    ``interval`` ticks, the bus invokes its callbacks — cheap enough to run
    per-row, yet frequent enough for smooth progress curves.

    The bus also carries the plan's sampling lock (:attr:`lock`): the
    execution driver holds it while pulling the plan, and any thread that
    wants a consistent read of executor/estimator state (the progress
    monitor's :meth:`~repro.core.progress.ProgressMonitor.snapshot`)
    acquires it first. The lock is reentrant, so callbacks fired from
    inside a pull — which already holds the lock — may snapshot freely.
    Subscribe/unsubscribe are safe from any thread; callbacks are iterated
    over an immutable copy so a watcher detaching mid-fire is harmless.
    """

    __slots__ = ("count", "interval", "callbacks", "lock")

    # Lock discipline (machine-checked by repro.analysis.concurrency):
    # ``lock`` is the plan-wide *critical* sampling lock — nothing may block
    # while holding it (X005). ``count`` is read and written only under it;
    # ``callbacks`` holds an immutable tuple that is swapped under the lock
    # and may be read lock-free (the immutable-snapshot pattern).
    _critical_locks_ = ("lock",)
    _guarded_by_ = {"count": "lock"}
    _write_guarded_by_ = {"callbacks": "lock"}

    def __init__(self, interval: int = 1000):
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.count = 0
        self.interval = interval
        self.callbacks: tuple[Callable[[int], None], ...] = ()
        self.lock = threading.RLock()

    @holds_lock("lock")
    def tick(self) -> None:
        self.count += 1
        if self.count % self.interval == 0:
            for cb in self.callbacks:
                cb(self.count)

    @holds_lock("lock")
    def tick_n(self, k: int) -> None:
        """Advance the counter by ``k`` units in one call.

        The batched path's amortized twin of :meth:`tick`: the count ends up
        exactly where ``k`` single ticks would leave it, and callbacks fire
        **once** when the jump crosses one or more interval boundaries — not
        ``k // interval`` times — so a big batch never floods observers.
        """
        if k <= 0:
            return
        boundary = self.count // self.interval
        self.count += k
        if self.count // self.interval != boundary:
            for cb in self.callbacks:
                cb(self.count)

    @acquires("lock")
    def subscribe(self, callback: Callable[[int], None]) -> None:
        with self.lock:
            self.callbacks = (*self.callbacks, callback)

    @acquires("lock")
    def unsubscribe(self, callback: Callable[[int], None]) -> None:
        """Detach ``callback``; unknown callbacks are ignored.

        Watchers that come and go (a dropped ``watch`` connection, a
        finished dashboard) must detach or their callbacks leak — the bus
        would keep invoking them for the lifetime of the plan.
        """
        with self.lock:
            self.callbacks = tuple(
                cb for cb in self.callbacks if cb is not callback
            )


class PlanCursor:
    """The resumable pull loop: open once, fetch batches, close.

    This is the single place the repository drains a plan from.
    :class:`ExecutionEngine` wraps it for run-to-completion semantics, and
    the server's :class:`~repro.server.session.QuerySession` steps it one
    quantum at a time, suspending between quanta — which is what makes a
    query *schedulable*. Each :meth:`fetch` holds the bus's sampling lock
    (when a bus is attached) for the duration of the pull, so concurrent
    readers never observe half-updated estimator state.

    Parameters
    ----------
    root:
        Plan root. Validated (node ids assigned; ``validate_plan`` is
        idempotent, so wrapping an engine-validated root is fine).
    bus:
        Optional tick bus; attached to the subtree and ticked once per
        fetched batch via :meth:`TickBus.tick_n`.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; installed on the subtree
        (arming ``operator.pull`` / ``scan.read``) and probed at the
        ``cursor.fetch`` site before each pull.
    """

    def __init__(
        self,
        root: Operator,
        bus: TickBus | None = None,
        faults: FaultPlan | None = None,
    ):
        self.root = root
        self.bus = bus
        self.faults = faults
        self.operators = validate_plan(root)
        if bus is not None:
            root.attach_bus(bus)
        if faults is not None:
            root.attach_faults(faults)
        self.rows_pulled = 0
        self._opened = False
        self._closed = False

    @property
    def opened(self) -> bool:
        return self._opened

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def exhausted(self) -> bool:
        """True once the root has produced its last row (sticky)."""
        return self.root.is_exhausted

    def open(self) -> None:
        if self._opened:
            raise ExecutorError("PlanCursor.open() called twice")
        self._opened = True
        self.root.open()

    @acquires("bus.lock")
    def fetch(self, max_rows: int) -> list[tuple]:
        """Pull up to ``max_rows`` rows; ``[]`` means the plan is exhausted.

        A short non-empty batch does *not* imply exhaustion (same contract
        as :meth:`Operator.next_batch`). The pull — including any blocking
        phase it triggers — runs under the bus lock, so it is safe against
        concurrent :meth:`ProgressMonitor.snapshot` calls.
        """
        if not self._opened or self._closed:
            raise ExecutorError("PlanCursor.fetch() outside open/close window")
        if self.faults is not None:
            # The one *retryable* boundary: fired before the bus lock is
            # taken and before any operator runs, so nothing is mid-flight
            # when a TransientFault unwinds — the caller may simply call
            # fetch() again. (Also keeps injected stalls outside the
            # critical sampling lock.)
            spec = self.faults.fire(SITE_CURSOR_FETCH, detail=self.root.op_name)
            if spec is not None and spec.kind == SHORT_READ:
                max_rows = self.faults.short_read(max_rows)
        bus = self.bus
        if bus is not None:
            with bus.lock:
                batch = self.root.next_batch(max_rows)
                if batch:
                    bus.tick_n(len(batch))
        else:
            batch = self.root.next_batch(max_rows)
        self.rows_pulled += len(batch)
        return batch

    def close(self) -> None:
        if self._opened and not self._closed:
            self._closed = True
            self.root.close()


@dataclass
class ExecutionResult:
    """Outcome of running a plan to completion."""

    root: Operator
    row_count: int
    wall_time_s: float
    rows: list[tuple] | None = None
    operator_counts: dict[int, int] = field(default_factory=dict)

    def emitted(self, op: Operator) -> int:
        return op.tuples_emitted


class ExecutionEngine:
    """Run a plan to completion, optionally collecting output rows.

    Parameters
    ----------
    root:
        Plan root operator. The tree is validated and node ids assigned.
    bus:
        Optional tick bus to attach to every operator. When None, operators
        skip all instrumentation beyond the emitted-tuple counters.
    collect_rows:
        Keep output rows in the result (disable for large results).
    analyze:
        Optional static-analysis gate run before execution: ``"strict"``
        raises :class:`~repro.common.errors.AnalysisError` on any error
        diagnostic, ``"advisory"`` stores the report on ``self.diagnostics``.
        ``None`` (default) keeps the engine's overhead at bare structural
        validation — plans from :func:`repro.sql.compile_select` have
        already been analyzed there.
    faults:
        Optional :class:`~repro.faults.FaultPlan` installed on the plan for
        deterministic fault injection (see docs/FAULTS.md). ``None`` keeps
        every injection site a zero-cost no-op.
    history:
        Optional :class:`~repro.robust.HistoryStore`. When given, the
        engine attaches a history-enabled :class:`ProgressMonitor`
        (creating a :class:`TickBus` if none was passed) and, on a
        successful serial run, scores and appends the run record —
        plus its per-subtree cardinalities — to the store.
    """

    def __init__(
        self,
        root: Operator,
        bus: TickBus | None = None,
        collect_rows: bool = True,
        analyze: str | None = None,
        faults: FaultPlan | None = None,
        history: HistoryStore | None = None,
    ):
        self.root = root
        self.bus = bus
        self.faults = faults
        self.collect_rows = collect_rows
        self.diagnostics = None
        if analyze is not None:
            from repro.executor.plan import check_plan

            self.diagnostics = check_plan(root, mode=analyze)
        self.operators = validate_plan(root)
        self.history = history
        self.monitor = None
        if history is not None and bus is None:
            bus = TickBus()
            self.bus = bus
        if bus is not None:
            root.attach_bus(bus)
        if history is not None:
            # Imported here: repro.core.progress imports this module for
            # the TickBus, so the dependency must stay one-way.
            from repro.core.progress import ProgressMonitor

            self.monitor = ProgressMonitor(
                root, mode="once", bus=bus, history=history
            )

    @acquires("bus.lock")
    def run(
        self,
        row_callback: Callable[[tuple], None] | None = None,
        batch_size: int | None = None,
        parallel: int | None = None,
    ) -> ExecutionResult:
        """Open, drain, and close the plan.

        ``batch_size=None`` pulls the root row at a time (the classic
        Volcano loop); any positive value switches to the batched pull loop
        (``Operator.next_batch``), which produces the same rows, the same
        per-operator counts and the same bus totals with the per-row
        bookkeeping amortized over each batch.

        ``parallel=P`` (P > 1) hands the plan to :mod:`repro.parallel`:
        the plan is fragmented across P partitions and run on worker
        processes, with per-operator counts merged from the workers'
        progress deltas. Plans the fragmenter cannot split (see
        docs/PARALLEL.md) fall back to this engine's serial loop.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if parallel is not None and parallel > 1:
            result = self._run_parallel(parallel, row_callback)
            if result is not None:
                return result
            # Unfragmentable plan: fall through to the serial loop.
        rows: list[tuple] | None = [] if self.collect_rows else None
        bus = self.bus
        cursor = PlanCursor(self.root, bus=bus, faults=self.faults)
        started = time.perf_counter()
        cursor.open()
        try:
            count = 0
            if batch_size is None:
                root_next = self.root.next
                if bus is None:
                    while True:
                        row = root_next()
                        if row is None:
                            break
                        count += 1
                        if rows is not None:
                            rows.append(row)
                        if row_callback is not None:
                            row_callback(row)
                else:
                    # Pull + tick under the bus's sampling lock so a
                    # concurrent ProgressMonitor.snapshot() from another
                    # thread never sees half-updated estimator state.
                    lock = bus.lock
                    while True:
                        with lock:
                            row = root_next()
                            if row is not None:
                                bus.tick()
                        if row is None:
                            break
                        count += 1
                        if rows is not None:
                            rows.append(row)
                        if row_callback is not None:
                            row_callback(row)
            else:
                while True:
                    batch = cursor.fetch(batch_size)
                    if not batch:
                        break
                    count += len(batch)
                    if rows is not None:
                        rows.extend(batch)
                    if row_callback is not None:
                        for row in batch:
                            row_callback(row)
        finally:
            cursor.close()
        elapsed = time.perf_counter() - started
        counts = {
            op.node_id: op.tuples_emitted
            for op in self.operators
            if op.node_id is not None
        }
        if self.history is not None and self.monitor is not None:
            # Record only serial completions here: the parallel path returns
            # above, and its counters live in worker processes — the
            # partitioned session records its own merged runs.
            from repro.robust.feedback import record_run

            record_run(self.monitor, self.history, elapsed, count)
        return ExecutionResult(
            root=self.root,
            row_count=count,
            wall_time_s=elapsed,
            rows=rows,
            operator_counts=counts,
        )

    def _run_parallel(
        self,
        num_partitions: int,
        row_callback: Callable[[tuple], None] | None,
    ) -> ExecutionResult | None:
        """Fragment + coordinate; None when the plan is unfragmentable."""
        # Imported here: repro.parallel builds on this module, so the
        # dependency must stay one-way at import time.
        from repro.parallel.coordinator import Coordinator
        from repro.parallel.fragments import try_compile

        fragments = try_compile(self.root, num_partitions)
        if fragments is None:
            return None
        coordinator = Coordinator(fragments, faults=self.faults)
        result = coordinator.run()
        if row_callback is not None:
            for row in result.rows:
                row_callback(row)
        return ExecutionResult(
            root=self.root,
            row_count=result.row_count,
            wall_time_s=result.wall_time_s,
            rows=result.rows if self.collect_rows else None,
            operator_counts=result.operator_counts,
        )
