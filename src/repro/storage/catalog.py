"""System catalog: registered tables and their statistics.

The catalog is the meeting point of the substrate and the estimation
framework: operators resolve tables here, the optimizer pulls statistics
from here, and the progress framework reads base-table sizes (which the
paper assumes are "usually available in the system catalogs").
"""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import CatalogError
from repro.storage.statistics import TableStatistics, build_statistics
from repro.storage.table import Table

__all__ = ["Catalog"]


class Catalog:
    """A registry of named tables plus per-table statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._statistics: dict[str, TableStatistics] = {}

    def register(self, table: Table, analyze: bool = True, **analyze_kwargs) -> Table:
        """Register ``table`` under its name; optionally collect statistics.

        Re-registering a name replaces the table and invalidates its stats.
        """
        self._tables[table.name] = table
        self._statistics.pop(table.name, None)
        if analyze:
            self.analyze(table.name, **analyze_kwargs)
        return table

    def drop(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]
        self._statistics.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            known = sorted(self._tables)
            raise CatalogError(f"unknown table {name!r}; catalog has {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def analyze(self, name: str, **kwargs) -> TableStatistics:
        """(Re)collect statistics for a registered table."""
        stats = build_statistics(self.table(name), **kwargs)
        self._statistics[name] = stats
        return stats

    def statistics(self, name: str) -> TableStatistics:
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        if name not in self._statistics:
            self.analyze(name)
        return self._statistics[name]

    def row_count(self, name: str) -> int:
        return self.table(name).num_rows
