"""Block-level random sampling of base tables.

Section 3 of the paper: "we require that table scans on base relations obtain
on demand a (or have access to a precomputed) random sample of a specific
size from disk. ... Once such estimates are obtained, base tables can be read
(in the order determined by the plan), while excluding tuples that were
already in the sample."

:func:`plan_block_sample` chooses a random subset of block ids covering at
least the requested fraction of rows; the resulting :class:`BlockSample`
yields the sampled rows first (in random block order) and then the remainder
(every non-sampled block, in table order) — the "antijoin on block-ids" of
the paper's Section 5 implementation notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.rng import make_rng
from repro.storage.table import Table

__all__ = ["BlockSample", "plan_block_sample"]


@dataclass
class BlockSample:
    """A planned block-level sample of one table."""

    table: Table
    sampled_block_ids: tuple[int, ...]
    remainder_block_ids: tuple[int, ...]

    @property
    def sample_row_count(self) -> int:
        return sum(len(self.table.block(b)) for b in self.sampled_block_ids)

    @property
    def fraction(self) -> float:
        if self.table.num_rows == 0:
            return 0.0
        return self.sample_row_count / self.table.num_rows

    def iter_sample(self) -> Iterator[tuple]:
        """Rows of the sampled blocks, in the (random) sampled order."""
        return self.table.iter_blocks(self.sampled_block_ids)

    def iter_remainder(self) -> Iterator[tuple]:
        """Rows of all non-sampled blocks, in table order."""
        return self.table.iter_blocks(self.remainder_block_ids)

    def iter_all(self) -> Iterator[tuple]:
        """Sample first, then remainder — the scan order the paper's
        modified table scan produces."""
        yield from self.iter_sample()
        yield from self.iter_remainder()


def plan_block_sample(table: Table, fraction: float, seed: int = 0) -> BlockSample:
    """Choose a block-level random sample covering >= ``fraction`` of rows.

    ``fraction`` of 0 yields an empty sample (scan order == table order);
    1 samples every block (whole table in random block order). Blocks are
    drawn without replacement using a seeded RNG for reproducibility.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    n_blocks = table.num_blocks
    if n_blocks == 0 or fraction == 0.0:
        return BlockSample(table, (), tuple(range(n_blocks)))
    rng = make_rng(seed, "block-sample", table.name)
    target_rows = fraction * table.num_rows
    permuted = rng.permutation(n_blocks)
    chosen: list[int] = []
    covered = 0
    for bid in permuted:
        if covered >= target_rows:
            break
        chosen.append(int(bid))
        covered += len(table.block(int(bid)))
    chosen_set = set(chosen)
    remainder = tuple(b for b in range(n_blocks) if b not in chosen_set)
    return BlockSample(table, tuple(chosen), remainder)
