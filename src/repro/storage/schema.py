"""Schemas and column references.

Rows are plain Python tuples; a :class:`Schema` maps (optionally qualified)
column names to tuple positions. Qualification follows SQL conventions:
``Schema`` stores columns as ``(qualifier, name)`` pairs, and lookups accept
either ``"name"`` (must be unambiguous) or ``"qualifier.name"``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.common.errors import SchemaError

__all__ = ["Column", "ColumnType", "Schema"]


class ColumnType(enum.Enum):
    """Logical column types supported by the executor."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    @property
    def python_type(self) -> type:
        return {ColumnType.INT: int, ColumnType.FLOAT: float, ColumnType.STR: str}[self]

    @property
    def width_bytes(self) -> int:
        """Nominal on-disk width, used by the byte model of progress."""
        return {ColumnType.INT: 4, ColumnType.FLOAT: 8, ColumnType.STR: 16}[self]


@dataclass(frozen=True)
class Column:
    """A named, typed column, optionally qualified by a relation name."""

    name: str
    ctype: ColumnType = ColumnType.INT
    qualifier: str | None = None

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.qualifier is not None and "." in self.qualifier:
            raise SchemaError(f"invalid qualifier: {self.qualifier!r}")

    @property
    def qualified_name(self) -> str:
        if self.qualifier is None:
            return self.name
        return f"{self.qualifier}.{self.name}"

    def with_qualifier(self, qualifier: str | None) -> "Column":
        return Column(self.name, self.ctype, qualifier)


class Schema:
    """An ordered list of :class:`Column` with name-based resolution.

    ``index_of`` resolves a bare or qualified name to a tuple position and
    raises :class:`SchemaError` on unknown or ambiguous references.
    """

    def __init__(self, columns: Iterable[Column]):
        self.columns: tuple[Column, ...] = tuple(columns)
        qualified = [c.qualified_name for c in self.columns]
        if len(set(qualified)) != len(qualified):
            dupes = sorted({q for q in qualified if qualified.count(q) > 1})
            raise SchemaError(f"duplicate column names in schema: {dupes}")
        self._by_qualified: dict[str, int] = {q: i for i, q in enumerate(qualified)}
        self._by_bare: dict[str, list[int]] = {}
        for i, col in enumerate(self.columns):
            self._by_bare.setdefault(col.name, []).append(i)

    @classmethod
    def of(cls, *specs: str | Column, qualifier: str | None = None) -> "Schema":
        """Build a schema from ``"name:type"`` strings and/or Columns.

        >>> Schema.of("custkey:int", "name:str", qualifier="customer")
        """
        columns: list[Column] = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec if spec.qualifier else spec.with_qualifier(qualifier))
                continue
            name, _, type_name = spec.partition(":")
            ctype = ColumnType(type_name) if type_name else ColumnType.INT
            columns.append(Column(name, ctype, qualifier))
        return cls(columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        cols = ", ".join(c.qualified_name for c in self.columns)
        return f"Schema({cols})"

    def index_of(self, name: str) -> int:
        """Resolve a bare or qualified column name to its tuple position."""
        if "." in name:
            try:
                return self._by_qualified[name]
            except KeyError:
                raise SchemaError(f"unknown column {name!r} in {self!r}") from None
        hits = self._by_bare.get(name, [])
        if not hits:
            raise SchemaError(f"unknown column {name!r} in {self!r}")
        if len(hits) > 1:
            choices = [self.columns[i].qualified_name for i in hits]
            raise SchemaError(f"ambiguous column {name!r}: matches {choices}")
        return hits[0]

    def resolve(self, name: str) -> tuple[str, int | None]:
        """Non-raising :meth:`index_of`: classify how ``name`` resolves.

        Returns ``("ok", index)``, ``("unknown", None)`` or
        ``("ambiguous", None)`` — the static analyzer uses the outcome kind
        to pick a diagnostic code instead of parsing exception text.
        """
        if "." in name:
            idx = self._by_qualified.get(name)
            return ("ok", idx) if idx is not None else ("unknown", None)
        hits = self._by_bare.get(name, [])
        if not hits:
            return ("unknown", None)
        if len(hits) > 1:
            return ("ambiguous", None)
        return ("ok", hits[0])

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        try:
            self.index_of(name)
        except SchemaError:
            return False
        return True

    def names(self, qualified: bool = True) -> list[str]:
        if qualified:
            return [c.qualified_name for c in self.columns]
        return [c.name for c in self.columns]

    def row_width_bytes(self) -> int:
        """Nominal row width under the byte model of progress."""
        return sum(c.ctype.width_bytes for c in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation of rows from ``self`` and ``other``
        (the output schema of a join)."""
        return Schema(self.columns + other.columns)

    def project(self, names: Sequence[str]) -> "Schema":
        return Schema(self.columns[self.index_of(n)] for n in names)

    def with_qualifier(self, qualifier: str) -> "Schema":
        """Re-qualify every column (e.g. aliasing a relation)."""
        return Schema(c.with_qualifier(qualifier) for c in self.columns)
