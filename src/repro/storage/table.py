"""Block-structured in-memory tables.

A :class:`Table` is a row store: a list of plain tuples plus a
:class:`~repro.storage.schema.Schema`. Rows are grouped into fixed-size
*blocks* (pages). Blocks matter for one reason only — the paper's sampling
scheme draws a *block-level* random sample of each base table, then scans the
remainder "excluding tuples that were already in the sample" (a block-id
antijoin). :mod:`repro.storage.sampling` implements that over these blocks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.common.errors import SchemaError
from repro.storage.schema import Schema

__all__ = ["Table", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 128


class Table:
    """An immutable, block-structured relation.

    Parameters
    ----------
    name:
        Relation name; also the default qualifier of its columns.
    schema:
        Column layout. Columns without a qualifier are qualified by ``name``.
    rows:
        Row tuples. Each must match the schema arity.
    block_size:
        Rows per block (page) for block-level sampling.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[tuple],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.name = name
        # The un-aliased relation name: survives aliased() views, so plan
        # fingerprints hash self-join variants of one table identically.
        self.base_name = name
        self.schema = Schema(
            c if c.qualifier else c.with_qualifier(name) for c in schema
        )
        self._rows: list[tuple] = [tuple(r) for r in rows]
        arity = len(self.schema)
        for r in self._rows[:1] + self._rows[-1:]:
            if len(r) != arity:
                raise SchemaError(
                    f"row arity {len(r)} does not match schema arity {arity}"
                )
        self.block_size = block_size

    # -- basic accessors ----------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.num_rows}, blocks={self.num_blocks})"

    def rows(self) -> Sequence[tuple]:
        return self._rows

    def column_values(self, column: str) -> list:
        """All values of one column, in row order."""
        idx = self.schema.index_of(column)
        return [r[idx] for r in self._rows]

    # -- blocks --------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return (len(self._rows) + self.block_size - 1) // self.block_size

    def block(self, block_id: int) -> Sequence[tuple]:
        if not 0 <= block_id < self.num_blocks:
            raise IndexError(f"block {block_id} out of range [0, {self.num_blocks})")
        start = block_id * self.block_size
        return self._rows[start : start + self.block_size]

    def iter_blocks(self, block_ids: Iterable[int] | None = None) -> Iterator[tuple]:
        """Yield rows block by block, optionally restricted to ``block_ids``."""
        ids = range(self.num_blocks) if block_ids is None else block_ids
        for bid in ids:
            yield from self.block(bid)

    # -- derivation ----------------------------------------------------------

    def aliased(self, alias: str) -> "Table":
        """A view of this table under a different relation name/qualifier.

        Rows are shared, not copied; used for self-joins
        (e.g. the paper's ``C``, ``C¹``, ``C²`` customer variants join the
        same schema under distinct names).
        """
        view = Table.__new__(Table)
        view.name = alias
        view.base_name = getattr(self, "base_name", self.name)
        view.schema = self.schema.with_qualifier(alias)
        view._rows = self._rows
        view.block_size = self.block_size
        return view

    def filtered(self, predicate: Callable[[tuple], bool], name: str | None = None) -> "Table":
        """Materialise the subset of rows satisfying ``predicate``."""
        return Table(
            name or self.name,
            self.schema,
            (r for r in self._rows if predicate(r)),
            self.block_size,
        )
