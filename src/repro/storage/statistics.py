"""Base-table statistics, as a query optimizer would keep in its catalog.

The paper assumes "knowledge of the size of base tables, which is usually
available in the system catalogs" and optionally "histograms of the attribute
value distribution of single base table attributes". These statistics feed
the optimizer cardinality model (:mod:`repro.optimizer.cardinality`), whose
*textbook* estimates (uniformity + independence + containment) are exactly
what the paper's online estimators correct at run time — e.g. the 13x
misestimate of Figure 4(a) arises from the standard
``|R|·|S| / max(d_A, d_B)`` equijoin formula applied to skewed data.

Statistics can be built exactly or from a row-level sample (``sample_rows``),
mimicking ANALYZE-style collection.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.common.locks import acquires
from repro.common.rng import make_rng
from repro.storage.schema import ColumnType
from repro.storage.table import Table

__all__ = [
    "ColumnStatistics",
    "ObservedCardinalities",
    "TableStatistics",
    "build_statistics",
]

_HISTOGRAM_BUCKETS = 32
_NUM_MCVS = 8


@dataclass
class ColumnStatistics:
    """Optimizer-visible statistics for one column.

    ``histogram`` is equi-width over ``[min_value, max_value]`` (numeric
    columns only) and stores per-bucket row counts; ``mcvs`` are the most
    common values with their frequencies, as PostgreSQL keeps.
    """

    column: str
    n_distinct: int
    min_value: object | None = None
    max_value: object | None = None
    histogram: tuple[int, ...] = ()
    mcvs: tuple[tuple[object, int], ...] = ()
    sampled: bool = False
    row_count: int = 0

    def selectivity_eq(self, value: object) -> float:
        """Estimated selectivity of ``column = value``."""
        if self.row_count == 0:
            return 0.0
        for mcv, count in self.mcvs:
            if mcv == value:
                return count / self.row_count
        if self.n_distinct <= 0:
            return 0.0
        # Rows not covered by MCVs, spread uniformly over remaining values.
        mcv_rows = sum(c for _, c in self.mcvs)
        rest_distinct = max(self.n_distinct - len(self.mcvs), 1)
        return max(self.row_count - mcv_rows, 0) / rest_distinct / self.row_count

    def selectivity_range(self, low: float | None, high: float | None) -> float:
        """Estimated selectivity of ``low <= column < high`` via the
        equi-width histogram (numeric columns); falls back to 1/3 heuristics
        when no histogram exists, as real optimizers do for default
        selectivity."""
        if not self.histogram or self.min_value is None or self.max_value is None:
            return 1.0 / 3.0
        lo_bound = float(self.min_value)
        hi_bound = float(self.max_value)
        if hi_bound <= lo_bound:
            return 1.0
        low = lo_bound if low is None else max(float(low), lo_bound)
        high = hi_bound + 1e-12 if high is None else min(float(high), hi_bound + 1e-12)
        if high <= low:
            return 0.0
        total = sum(self.histogram) or 1
        width = (hi_bound - lo_bound) / len(self.histogram)
        covered = 0.0
        for b, count in enumerate(self.histogram):
            b_lo = lo_bound + b * width
            b_hi = b_lo + width
            overlap = max(0.0, min(high, b_hi) - max(low, b_lo))
            if overlap > 0.0 and width > 0.0:
                covered += count * (overlap / width)
        return min(covered / total, 1.0)


@dataclass
class TableStatistics:
    """Statistics for a whole table."""

    table_name: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        bare = name.split(".")[-1]
        try:
            return self.columns[bare]
        except KeyError:
            raise KeyError(
                f"no statistics for column {name!r} of {self.table_name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.split(".")[-1] in self.columns


@dataclass(frozen=True)
class _Observation:
    """One remembered subtree cardinality plus its staleness anchors."""

    rows: float
    table_rows: dict[str, int]
    seq: int


class ObservedCardinalities:
    """Observed-over-modeled cardinality overlay for the optimizer.

    The robust subsystem's feedback loop (:mod:`repro.robust.feedback`)
    records, per finished run, the *actual* output cardinality of every
    plan subtree, keyed by the subtree's canonical fingerprint digest.
    :class:`~repro.optimizer.cardinality.CardinalityModel` consults this
    overlay before its textbook model: for a subtree the system has
    executed before, the observed count wins.

    Staleness bound (both must hold for a hit):

    * **drift** — every base table under the subtree is within
      ``max_drift`` (relative row-count change) of where it stood when
      the observation was taken;
    * **age** — no more than ``max_age_runs`` runs have been absorbed
      since the observation (an old count on a hot store is suspect even
      if the table sizes happen to match).

    Thread-safe: the service absorbs finished runs from session listener
    threads while compile threads look subtrees up.
    """

    _guarded_by_ = {"_cards": "_lock", "_latest_seq": "_lock"}

    def __init__(self, max_drift: float = 0.1, max_age_runs: int = 32):
        if max_drift < 0:
            raise ValueError(f"max_drift must be >= 0, got {max_drift}")
        if max_age_runs < 1:
            raise ValueError(f"max_age_runs must be >= 1, got {max_age_runs}")
        self.max_drift = float(max_drift)
        self.max_age_runs = int(max_age_runs)
        self._lock = threading.Lock()
        self._cards: dict[str, _Observation] = {}
        self._latest_seq = 0

    @acquires("_lock")
    def absorb(
        self, node_cards: dict[str, float], table_rows: dict[str, int], seq: int
    ) -> None:
        """Fold one run's per-subtree cardinalities in (newest wins)."""
        with self._lock:
            self._latest_seq = max(self._latest_seq, int(seq))
            for digest, rows in node_cards.items():
                self._cards[digest] = _Observation(
                    rows=float(rows),
                    table_rows=dict(table_rows),
                    seq=int(seq),
                )

    @acquires("_lock")
    def lookup(
        self, digest: str, live_table_rows: dict[str, int] | None = None
    ) -> float | None:
        """The observed cardinality for a subtree digest, or None when the
        subtree was never observed or the observation is stale."""
        with self._lock:
            obs = self._cards.get(digest)
            if obs is None:
                return None
            if self._latest_seq - obs.seq > self.max_age_runs:
                return None
            for name, live in (live_table_rows or {}).items():
                then = obs.table_rows.get(name)
                if then is None:
                    return None  # new base table: observation predates it
                drift = abs(int(live) - then) / max(then, 1)
                if drift > self.max_drift:
                    return None
            return obs.rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._cards)


def build_statistics(
    table: Table,
    columns: Iterable[str] | None = None,
    sample_rows: int | None = None,
    seed: int = 0,
) -> TableStatistics:
    """Collect statistics for ``table``.

    Parameters
    ----------
    columns:
        Columns to analyse (default: all).
    sample_rows:
        If given, statistics are computed from a row-level random sample of
        this size and scaled up, which introduces realistic estimation noise.
        Distinct counts are scaled with the first-order jackknife-style
        ``d * n / sample`` cap, matching how sampled ANALYZE misjudges
        distinct counts.
    """
    names = list(columns) if columns is not None else table.schema.names(qualified=False)
    row_count = table.num_rows
    if sample_rows is not None and 0 < sample_rows < row_count:
        rng = make_rng(seed, "stats-sample", table.name)
        idx = rng.choice(row_count, size=sample_rows, replace=False)
        rows = [table.rows()[i] for i in idx]
        scale = row_count / sample_rows
        sampled = True
    else:
        rows = list(table.rows())
        scale = 1.0
        sampled = False

    stats = TableStatistics(table.name, row_count)
    for name in names:
        col_idx = table.schema.index_of(name)
        ctype = table.schema.columns[col_idx].ctype
        counts: dict[object, int] = {}
        for r in rows:
            v = r[col_idx]
            counts[v] = counts.get(v, 0) + 1
        n_distinct = len(counts)
        if sampled:
            # Scale singleton-heavy distinct counts up, capped by row count.
            n_distinct = min(int(n_distinct * scale ** 0.5) or n_distinct, row_count)
        mcvs = tuple(
            (v, int(c * scale))
            for v, c in sorted(counts.items(), key=lambda kv: -kv[1])[:_NUM_MCVS]
        )
        histogram: tuple[int, ...] = ()
        min_v = max_v = None
        if counts and ctype in (ColumnType.INT, ColumnType.FLOAT):
            min_v = min(counts)
            max_v = max(counts)
            if max_v > min_v:
                buckets = [0] * _HISTOGRAM_BUCKETS
                span = float(max_v) - float(min_v)
                for v, c in counts.items():
                    b = min(
                        int((float(v) - float(min_v)) / span * _HISTOGRAM_BUCKETS),
                        _HISTOGRAM_BUCKETS - 1,
                    )
                    buckets[b] += c
                histogram = tuple(int(b * scale) for b in buckets)
        elif counts:
            min_v = min(counts, key=str)
            max_v = max(counts, key=str)
        stats.columns[name] = ColumnStatistics(
            column=name,
            n_distinct=n_distinct,
            min_value=min_v,
            max_value=max_v,
            histogram=histogram,
            mcvs=mcvs,
            sampled=sampled,
            row_count=row_count,
        )
    return stats
