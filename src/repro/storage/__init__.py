"""Storage substrate: schemas, block-structured tables, catalog, statistics.

The paper's prototype lives inside PostgreSQL; this package supplies the
equivalent storage layer for the pure-Python executor. Tables are row stores
organised into fixed-size blocks so that the block-level random sampling the
paper relies on ("table scans ... first read in a precomputed block-level
random sample of the base tables before scanning the rest") has a faithful
physical analogue.
"""

from repro.storage.catalog import Catalog
from repro.storage.partition import PartitionError, Partitioner, stable_hash
from repro.storage.sampling import BlockSample, plan_block_sample
from repro.storage.schema import Column, ColumnType, Schema
from repro.storage.statistics import ColumnStatistics, TableStatistics, build_statistics
from repro.storage.table import Table

__all__ = [
    "BlockSample",
    "Catalog",
    "Column",
    "ColumnStatistics",
    "ColumnType",
    "PartitionError",
    "Partitioner",
    "Schema",
    "Table",
    "TableStatistics",
    "build_statistics",
    "plan_block_sample",
    "stable_hash",
]
