"""Base-table partitioning for parallel execution.

:class:`Partitioner` splits a :class:`~repro.storage.table.Table` into
``num_partitions`` disjoint shard tables whose union is exactly the input
(a *cover*). Three strategies:

* ``"hash"`` — rows are routed by a :func:`stable_hash` of one column.
  Co-partitioning two tables on their join keys with the same partitioner
  guarantees that equal keys land in the same partition id, which is what
  makes partition-wise hash joins exact (``R ⋈ S = ⋃_p R_p ⋈ S_p``).
* ``"range"`` — rows are routed by cut points over one column (explicit
  ``bounds``, or equi-depth quantiles sampled from the data). Equal values
  land in the same partition, so range co-partitioning is join-safe too.
* ``"rows"`` — contiguous row ranges, no column needed. The cheapest valid
  cover for partition-local scans feeding a coordinator merge (partial
  aggregates, filters, projections) where no key alignment is required.

``None`` keys always route to partition 0 (NULL never matches an equijoin,
so its placement cannot affect join results — it only has to be *some*
deterministic shard so the cover stays exact).

Shards share the parent's name, schema and block size: a plan fragment
cloned over a shard resolves every column reference exactly as the serial
plan does.

:func:`stable_hash` is deliberately *not* Python's builtin ``hash`` — str
hashing is randomized per process (PYTHONHASHSEED), and partition layouts
must be reproducible across runs and identical no matter which process
computes them.
"""

from __future__ import annotations

import zlib

from repro.storage.table import Table

__all__ = ["PartitionError", "Partitioner", "stable_hash"]

STRATEGIES = ("hash", "range", "rows")


class PartitionError(ValueError):
    """Invalid partitioning request (bad strategy, missing column/bounds)."""


def stable_hash(value: object) -> int:
    """A process-independent, run-independent hash for partition routing.

    Integers (and bools) map to themselves — cheap, and integer join keys
    are the overwhelmingly common case. Everything else goes through CRC32
    of a canonical text encoding. Floats that carry integral values hash
    like the matching int, mirroring Python equality (``2 == 2.0`` must
    land in one partition or co-partitioned joins would miss matches).
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return zlib.crc32(repr(value).encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, tuple):
        acc = 0x9E3779B9
        for item in value:
            acc = zlib.crc32(
                stable_hash(item).to_bytes(8, "little", signed=True), acc
            )
        return acc
    return zlib.crc32(repr(value).encode("utf-8"))


class Partitioner:
    """Split tables into ``num_partitions`` disjoint covering shards.

    Parameters
    ----------
    num_partitions:
        Shard count P (>= 1).
    strategy:
        ``"hash"`` (default), ``"range"`` or ``"rows"`` — see module
        docstring.
    bounds:
        For ``"range"``: ascending cut points ``b_1 < ... < b_{P-1}``;
        value ``v`` routes to the first partition with ``v <= b_i`` (the
        last partition takes the rest). When omitted, :meth:`partition`
        derives equi-depth bounds from the column's sorted values.
    """

    def __init__(
        self,
        num_partitions: int,
        strategy: str = "hash",
        bounds: list | tuple | None = None,
    ):
        if num_partitions < 1:
            raise PartitionError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        if strategy not in STRATEGIES:
            raise PartitionError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        if bounds is not None:
            if strategy != "range":
                raise PartitionError("bounds are only valid with strategy='range'")
            bounds = tuple(bounds)
            if len(bounds) != num_partitions - 1:
                raise PartitionError(
                    f"range partitioning into {num_partitions} needs "
                    f"{num_partitions - 1} bounds, got {len(bounds)}"
                )
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                raise PartitionError(f"bounds must be strictly ascending: {bounds}")
        self.num_partitions = num_partitions
        self.strategy = strategy
        self.bounds = bounds

    # -- routing -----------------------------------------------------------------

    def partition_id(self, value: object, bounds: tuple | None = None) -> int:
        """The shard a key value routes to (hash/range strategies)."""
        if self.strategy == "rows":
            raise PartitionError("partition_id is undefined for strategy='rows'")
        if value is None:
            return 0
        if self.strategy == "hash":
            return stable_hash(value) % self.num_partitions
        cuts = bounds if bounds is not None else self.bounds
        if cuts is None:
            raise PartitionError("range partitioning needs bounds")
        for pid, cut in enumerate(cuts):
            if value <= cut:
                return pid
        return self.num_partitions - 1

    def _derived_bounds(self, values: list) -> tuple:
        """Equi-depth cut points from the observed (non-None) values."""
        present = sorted(v for v in values if v is not None)
        if not present:
            return tuple(range(1, self.num_partitions))
        cuts: list = []
        for i in range(1, self.num_partitions):
            cut = present[min(len(present) - 1, i * len(present) // self.num_partitions)]
            # Strictly ascending cuts; duplicates collapse into a shard
            # that simply receives no rows.
            if cuts and cut <= cuts[-1]:
                continue
            cuts.append(cut)
        # Pad with sentinels past the max so the arity contract holds.
        top = present[-1]
        while len(cuts) < self.num_partitions - 1:
            top = top + 1 if isinstance(top, (int, float)) else f"{top}￿"
            cuts.append(top)
        return tuple(cuts)

    # -- sharding ----------------------------------------------------------------

    def partition(self, table: Table, column: str | None = None) -> list[Table]:
        """Shard ``table`` into P disjoint covering tables.

        ``column`` (resolved against the table's schema, qualified or bare
        names both fine) is required for hash/range and ignored for rows.
        """
        p = self.num_partitions
        if p == 1:
            return [table]
        rows = table.rows()
        if self.strategy == "rows":
            # Contiguous block-aligned slices: cheap, order-preserving
            # within each shard.
            per = (len(rows) + p - 1) // p
            if table.block_size > 1 and per % table.block_size:
                per += table.block_size - per % table.block_size
            per = max(per, 1)
            buckets = [rows[i * per : (i + 1) * per] for i in range(p)]
        else:
            if column is None:
                raise PartitionError(
                    f"strategy {self.strategy!r} requires a column"
                )
            idx = table.schema.index_of(column)
            buckets = [[] for _ in range(p)]
            if self.strategy == "hash":
                mod = p
                for row in rows:
                    value = row[idx]
                    buckets[stable_hash(value) % mod if value is not None else 0].append(row)
            else:
                bounds = (
                    self.bounds
                    if self.bounds is not None
                    else self._derived_bounds([r[idx] for r in rows])
                )
                route = self.partition_id
                for row in rows:
                    buckets[route(row[idx], bounds)].append(row)
        return [
            Table(table.name, table.schema, bucket, table.block_size)
            for bucket in buckets
        ]
