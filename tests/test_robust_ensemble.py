"""Unit tests for the online ensemble combiner (inverse-squared-error
weighting, warm/cold priors, hindsight scoring, post-run error scoring)."""

from __future__ import annotations

import pytest

from repro.robust import COLD, WARM, EnsembleState
from repro.robust.ensemble import MAX_PRIOR_COUNT

CANDIDATES = ("once", "dne", "byte")


def drive(ens, steps, totals_of):
    """Feed ``steps`` checkpoints where candidate totals come from
    ``totals_of(done)``; returns the final (combined, weights)."""
    out = None
    for done in steps:
        out = ens.update(done, totals_of(done))
    return out


class TestColdStart:
    def test_uniform_weights_before_any_evidence(self):
        ens = EnsembleState(CANDIDATES)
        assert ens.prior_source == COLD
        combined, weights = ens.update(10.0, {c: 100.0 for c in CANDIDATES})
        assert weights == pytest.approx({c: 1 / 3 for c in CANDIDATES})
        assert combined == pytest.approx(0.1)

    def test_agreeing_candidates_keep_uniform_weights(self):
        ens = EnsembleState(CANDIDATES)
        _, weights = drive(
            ens, [10.0, 20.0, 30.0], lambda d: {c: 100.0 for c in CANDIDATES}
        )
        assert weights == pytest.approx({c: 1 / 3 for c in CANDIDATES})

    def test_consistently_wrong_candidate_loses_weight(self):
        # 'dne' claims the query is 10x shorter than the other two agree
        # it is: its hindsight error dominates and its weight collapses.
        def totals(done):
            return {"once": 1000.0, "dne": 100.0, "byte": 1000.0}

        ens = EnsembleState(CANDIDATES)
        _, weights = drive(ens, [float(d) for d in range(5, 100, 5)], totals)
        assert weights["dne"] < weights["once"]
        assert weights["dne"] < 0.2
        assert weights["once"] == pytest.approx(weights["byte"])

    def test_combined_progress_is_clamped_to_unit_interval(self):
        ens = EnsembleState(CANDIDATES)
        combined, _ = ens.update(500.0, {c: 100.0 for c in CANDIDATES})
        assert combined == 1.0
        combined, _ = ens.update(600.0, {c: 0.0 for c in CANDIDATES})
        assert combined == 0.0


class TestWarmStart:
    def test_priors_set_opening_weights(self):
        ens = EnsembleState(
            CANDIDATES,
            priors={"once": (0.0001, 20), "dne": (0.09, 20), "byte": (0.04, 20)},
        )
        assert ens.prior_source == WARM
        _, weights = ens.update(10.0, {c: 100.0 for c in CANDIDATES})
        # Historically accurate 'once' opens dominant, before any online
        # evidence exists.
        assert weights["once"] > 0.5
        assert weights["once"] > weights["byte"] > weights["dne"]

    def test_prior_count_is_capped(self):
        ens = EnsembleState(CANDIDATES, priors={"once": (0.01, 10_000)})
        assert ens.priors["once"][1] == MAX_PRIOR_COUNT

    def test_zero_count_prior_is_ignored(self):
        ens = EnsembleState(CANDIDATES, priors={"once": (0.01, 0)})
        assert ens.prior_source == COLD
        assert ens.priors == {}

    def test_live_evidence_overrides_a_stale_prior(self):
        # History says 'dne' is great — but this run it is 10x off while
        # the others agree. The online record must win eventually.
        ens = EnsembleState(CANDIDATES, priors={"dne": (0.0001, 32)})

        def totals(done):
            return {"once": 1000.0, "dne": 100.0, "byte": 1000.0}

        _, weights = drive(ens, [float(d) for d in range(5, 500, 5)], totals)
        assert weights["dne"] < weights["once"]


class TestFinalErrors:
    def test_scores_trajectory_against_true_total(self):
        ens = EnsembleState(CANDIDATES)
        # 'once' is exactly right about T(Q)=200; 'byte' claims 100.
        for done in (50.0, 100.0, 150.0):
            ens.update(done, {"once": 200.0, "dne": 400.0, "byte": 100.0})
        errors, count = ens.final_errors(200.0)
        assert count == 3
        assert errors["once"] == pytest.approx(0.0)
        assert errors["byte"] > errors["once"]
        assert errors["dne"] > errors["once"]

    def test_empty_trajectory_scores_nothing(self):
        ens = EnsembleState(CANDIDATES)
        assert ens.final_errors(100.0) == ({}, 0)

    def test_unknown_true_total_scores_nothing(self):
        ens = EnsembleState(CANDIDATES)
        ens.update(10.0, {c: 100.0 for c in CANDIDATES})
        assert ens.final_errors(0.0) == ({}, 0)

    def test_feedback_loop_closes(self):
        """The errors scored by run N, fed back as priors, open run N+1
        with the accurate candidate dominant — the warm-start contract."""
        run1 = EnsembleState(CANDIDATES)
        for done in (50.0, 100.0, 150.0):
            run1.update(done, {"once": 200.0, "dne": 500.0, "byte": 120.0})
        errors, count = run1.final_errors(200.0)
        run2 = EnsembleState(
            CANDIDATES, priors={name: (mse, count) for name, mse in errors.items()}
        )
        assert run2.prior_source == WARM
        _, weights = run2.update(10.0, {c: 200.0 for c in CANDIDATES})
        assert weights["once"] > weights["byte"] > weights["dne"]
