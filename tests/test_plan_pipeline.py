"""Tests for plan utilities and pipeline decomposition."""

import pytest

from repro.common.errors import PlanError
from repro.executor.operators import (
    Filter,
    HashAggregate,
    HashJoin,
    SeqScan,
    Sort,
    SortMergeJoin,
)
from repro.executor.expressions import col, lit
from repro.executor.pipeline import decompose_pipelines
from repro.executor.plan import explain, validate_plan, walk


def join_plan(tiny_table):
    left = SeqScan(tiny_table)
    right = SeqScan(tiny_table.aliased("other"))
    return HashJoin(left, right, "tiny.id", "other.id"), left, right


class TestWalkAndValidate:
    def test_walk_preorder(self, tiny_table):
        join, left, right = join_plan(tiny_table)
        assert [op for op in walk(join)] == [join, left, right]

    def test_validate_assigns_ids(self, tiny_table):
        join, left, right = join_plan(tiny_table)
        ops = validate_plan(join)
        assert [op.node_id for op in ops] == [0, 1, 2]

    def test_shared_operator_rejected(self, tiny_table):
        # Normal joins can't share subtrees (schema concat would collide),
        # so exercise the validator with a minimal two-child operator whose
        # children are the same instance.
        from repro.executor.operators.base import Operator

        scan = SeqScan(tiny_table)

        class Pair(Operator):
            op_name = "pair"

            def children(self):
                return (scan, scan)

            @property
            def output_schema(self):
                return scan.output_schema

            def _next(self):
                return None

        with pytest.raises(PlanError, match="twice"):
            validate_plan(Pair())

    def test_explain_renders_tree(self, tiny_table):
        join, _, _ = join_plan(tiny_table)
        text = explain(join)
        lines = text.splitlines()
        assert lines[0].startswith("hash_join")
        assert lines[1].strip().startswith("seq_scan")

    def test_explain_with_counts(self, tiny_table):
        join, _, _ = join_plan(tiny_table)
        join.estimated_cardinality = 42.0
        assert "est=42" in explain(join, counts=True)


class TestPipelineDecomposition:
    def test_single_scan_one_pipeline(self, tiny_table):
        pipelines = decompose_pipelines(SeqScan(tiny_table))
        assert len(pipelines) == 1

    def test_hash_join_splits_build_side(self, tiny_table):
        join, left, right = join_plan(tiny_table)
        pipelines = decompose_pipelines(join)
        assert len(pipelines) == 2
        build_pipe, main_pipe = pipelines
        assert build_pipe.operators == [left]
        assert main_pipe.operators == [join, right]

    def test_partition_property(self, tiny_table):
        """Every operator appears in exactly one pipeline."""
        join, *_ = join_plan(tiny_table)
        agg = HashAggregate(Filter(join, col("tiny.id") > lit(0)), ["tiny.id"])
        pipelines = decompose_pipelines(agg)
        all_ops = [op for p in pipelines for op in p.operators]
        assert len(all_ops) == len(set(id(o) for o in all_ops))
        assert set(id(o) for o in all_ops) == set(id(o) for o in walk(agg))

    def test_join_chain_pipeline_structure(self, tiny_table):
        """Chain of two hash joins: three pipelines (two build sides,
        one probe pipeline holding both joins), matching Figure 2."""
        t = tiny_table
        lower = HashJoin(
            SeqScan(t.aliased("b")), SeqScan(t.aliased("c")), "b.id", "c.id"
        )
        upper = HashJoin(SeqScan(t.aliased("a")), lower, "a.id", "b.id")
        pipelines = decompose_pipelines(upper)
        assert len(pipelines) == 3
        main = pipelines[-1]
        assert upper in main and lower in main
        # Execution order: upper build first, then lower build, then main.
        assert pipelines[0].operators[0].table.name == "a"
        assert pipelines[1].operators[0].table.name == "b"

    def test_merge_join_both_sides_blocked(self, tiny_table):
        join = SortMergeJoin(
            SeqScan(tiny_table), SeqScan(tiny_table.aliased("o")), "tiny.id", "o.id"
        )
        pipelines = decompose_pipelines(join)
        assert len(pipelines) == 3
        assert pipelines[-1].operators == [join]

    def test_sort_blocks_input(self, tiny_table):
        sort = Sort(SeqScan(tiny_table), ["id"])
        pipelines = decompose_pipelines(sort)
        assert len(pipelines) == 2
        assert pipelines[-1].operators == [sort]


class TestDriverIdentification:
    def test_scan_is_its_own_driver(self, tiny_table):
        pipelines = decompose_pipelines(SeqScan(tiny_table))
        assert pipelines[0].driver is pipelines[0].operators[0]

    def test_probe_scan_drives_join_pipeline(self, tiny_table):
        join, _, right = join_plan(tiny_table)
        main = decompose_pipelines(join)[-1]
        assert main.driver is right

    def test_filter_chain_descends_to_scan(self, tiny_table):
        scan = SeqScan(tiny_table)
        plan = Filter(Filter(scan, col("id") > lit(0)), col("id") < lit(9))
        pipeline = decompose_pipelines(plan)[-1]
        assert pipeline.driver is scan

    def test_merge_join_drives_itself(self, tiny_table):
        join = SortMergeJoin(
            SeqScan(tiny_table), SeqScan(tiny_table.aliased("o")), "tiny.id", "o.id"
        )
        main = decompose_pipelines(join)[-1]
        assert main.driver is join


class TestPipelineState:
    def test_lifecycle_flags(self, tiny_table):
        from repro.executor.engine import ExecutionEngine

        join, _, _ = join_plan(tiny_table)
        pipelines = decompose_pipelines(join)
        main = pipelines[-1]
        assert not main.has_started
        assert not main.is_finished
        ExecutionEngine(join, collect_rows=False).run()
        assert main.has_started
        assert main.is_finished
        assert main.total_emitted() == join.tuples_emitted + join.probe_child.tuples_emitted
