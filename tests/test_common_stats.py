"""Tests for incremental statistics (γ², Welford, normal quantiles)."""

import math

import pytest

from repro.common.stats import (
    IncrementalFrequencyStats,
    RunningMeanVar,
    normal_quantile,
    squared_coefficient_of_variation,
)


class TestSquaredCoefficientOfVariation:
    def test_empty_is_zero(self):
        assert squared_coefficient_of_variation([]) == 0.0

    def test_constant_frequencies_have_zero_variation(self):
        assert squared_coefficient_of_variation([5, 5, 5, 5]) == 0.0

    def test_known_value(self):
        # freqs [1, 3]: mean 2, var 1 -> gamma^2 = 1/4
        assert squared_coefficient_of_variation([1, 3]) == pytest.approx(0.25)

    def test_scale_invariance(self):
        a = squared_coefficient_of_variation([1, 2, 3, 4])
        b = squared_coefficient_of_variation([10, 20, 30, 40])
        assert a == pytest.approx(b)


class TestIncrementalFrequencyStats:
    def test_matches_direct_computation(self):
        stats = IncrementalFrequencyStats()
        counts: dict[str, int] = {}
        for v in "abacbdaaeb":
            old = counts.get(v, 0)
            stats.observe(old)
            counts[v] = old + 1
        direct = squared_coefficient_of_variation(counts.values())
        assert stats.gamma_squared == pytest.approx(direct)
        assert stats.num_groups == len(counts)
        assert stats.sum_freq == sum(counts.values())

    def test_observe_transition_bulk(self):
        stats = IncrementalFrequencyStats()
        stats.observe_transition(0, 5)
        stats.observe_transition(5, 7)
        stats.observe_transition(0, 3)
        assert stats.num_groups == 2
        assert stats.sum_freq == 10
        assert stats.sum_freq_sq == 49 + 9

    def test_transition_equivalent_to_unit_steps(self):
        bulk = IncrementalFrequencyStats()
        unit = IncrementalFrequencyStats()
        bulk.observe_transition(0, 4)
        for old in range(4):
            unit.observe(old)
        assert bulk.sum_freq_sq == unit.sum_freq_sq
        assert bulk.gamma_squared == unit.gamma_squared

    def test_rejects_negative(self):
        stats = IncrementalFrequencyStats()
        with pytest.raises(ValueError):
            stats.observe(-1)
        with pytest.raises(ValueError):
            stats.observe_transition(3, 2)

    def test_uniform_data_low_gamma(self):
        # 100 groups each reaching frequency 10: zero variation.
        stats = IncrementalFrequencyStats()
        for count in range(10):
            for _group in range(100):
                stats.observe(count)
        assert stats.gamma_squared == pytest.approx(0.0)

    def test_mean_frequency(self):
        stats = IncrementalFrequencyStats()
        stats.observe_transition(0, 6)
        stats.observe_transition(0, 2)
        assert stats.mean_frequency == pytest.approx(4.0)


class TestRunningMeanVar:
    def test_matches_reference(self):
        values = [1.0, 4.0, 9.0, 16.0, 25.0]
        acc = RunningMeanVar()
        for v in values:
            acc.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert acc.mean == pytest.approx(mean)
        assert acc.variance == pytest.approx(var)
        assert acc.stddev == pytest.approx(math.sqrt(var))

    def test_sample_variance_bessel(self):
        acc = RunningMeanVar()
        for v in [2.0, 4.0]:
            acc.add(v)
        assert acc.sample_variance == pytest.approx(2.0)

    def test_empty(self):
        acc = RunningMeanVar()
        assert acc.variance == 0.0
        assert acc.sample_variance == 0.0


class TestNormalQuantile:
    @pytest.mark.parametrize(
        "alpha,expected",
        [(0.6827, 1.0), (0.9545, 2.0), (0.9973, 3.0), (0.95, 1.95996), (0.99, 2.57583)],
    )
    def test_standard_values(self, alpha, expected):
        assert normal_quantile(alpha) == pytest.approx(expected, abs=2e-3)

    def test_monotone_in_alpha(self):
        qs = [normal_quantile(a) for a in (0.5, 0.8, 0.9, 0.99, 0.999)]
        assert qs == sorted(qs)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_out_of_range(self, alpha):
        with pytest.raises(ValueError):
            normal_quantile(alpha)
