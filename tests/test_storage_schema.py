"""Tests for schemas and column resolution."""

import pytest

from repro.common.errors import SchemaError
from repro.storage.schema import Column, ColumnType, Schema


class TestColumn:
    def test_qualified_name(self):
        assert Column("x", ColumnType.INT, "t").qualified_name == "t.x"
        assert Column("x").qualified_name == "x"

    def test_rejects_dotted_names(self):
        with pytest.raises(SchemaError):
            Column("a.b")
        with pytest.raises(SchemaError):
            Column("a", qualifier="t.u")

    def test_with_qualifier(self):
        c = Column("x", ColumnType.STR).with_qualifier("r")
        assert c.qualifier == "r"
        assert c.ctype is ColumnType.STR

    def test_width_bytes(self):
        assert ColumnType.INT.width_bytes == 4
        assert ColumnType.FLOAT.width_bytes == 8
        assert ColumnType.STR.width_bytes == 16


class TestSchema:
    def test_of_parses_specs(self):
        s = Schema.of("a:int", "b:str", "c:float", qualifier="t")
        assert s.names() == ["t.a", "t.b", "t.c"]
        assert s.column("b").ctype is ColumnType.STR

    def test_default_type_is_int(self):
        s = Schema.of("k")
        assert s.column("k").ctype is ColumnType.INT

    def test_index_of_bare_and_qualified(self):
        s = Schema.of("a:int", "b:int", qualifier="t")
        assert s.index_of("a") == 0
        assert s.index_of("t.b") == 1

    def test_unknown_column_raises(self):
        s = Schema.of("a:int")
        with pytest.raises(SchemaError, match="unknown column"):
            s.index_of("zzz")

    def test_ambiguous_bare_name_raises(self):
        s = Schema(
            [Column("k", qualifier="l"), Column("k", qualifier="r")]
        )
        with pytest.raises(SchemaError, match="ambiguous"):
            s.index_of("k")
        # Qualified lookups still work.
        assert s.index_of("l.k") == 0
        assert s.index_of("r.k") == 1

    def test_duplicate_qualified_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("k", qualifier="t"), Column("k", qualifier="t")])

    def test_concat_for_join_output(self):
        left = Schema.of("a:int", qualifier="l")
        right = Schema.of("b:int", qualifier="r")
        joined = left.concat(right)
        assert joined.names() == ["l.a", "r.b"]

    def test_project(self):
        s = Schema.of("a:int", "b:str", "c:float", qualifier="t")
        p = s.project(["c", "a"])
        assert p.names() == ["t.c", "t.a"]

    def test_row_width_bytes(self):
        s = Schema.of("a:int", "b:str", "c:float")
        assert s.row_width_bytes() == 4 + 16 + 8

    def test_with_qualifier_requalifies_all(self):
        s = Schema.of("a:int", "b:int", qualifier="t").with_qualifier("u")
        assert s.names() == ["u.a", "u.b"]

    def test_has_column(self):
        s = Schema.of("a:int", qualifier="t")
        assert s.has_column("a")
        assert s.has_column("t.a")
        assert not s.has_column("t.b")

    def test_equality(self):
        assert Schema.of("a:int") == Schema.of("a:int")
        assert Schema.of("a:int") != Schema.of("b:int")
