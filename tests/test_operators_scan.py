"""Tests for scan operators."""

import pytest

from repro.common.errors import ExecutorError
from repro.executor.operators import SampleScan, SeqScan
from repro.executor.operators.base import OperatorState


class TestSeqScan:
    def test_emits_all_rows_in_order(self, tiny_table):
        scan = SeqScan(tiny_table)
        scan.open()
        rows = list(scan)
        assert rows == list(tiny_table)
        assert scan.tuples_emitted == 5
        assert scan.is_exhausted

    def test_next_before_open_raises(self, tiny_table):
        with pytest.raises(ExecutorError):
            SeqScan(tiny_table).next()

    def test_double_open_raises(self, tiny_table):
        scan = SeqScan(tiny_table)
        scan.open()
        with pytest.raises(ExecutorError):
            scan.open()

    def test_next_after_exhaustion_is_none(self, tiny_table):
        scan = SeqScan(tiny_table)
        scan.open()
        list(scan)
        assert scan.next() is None

    def test_close_idempotent(self, tiny_table):
        scan = SeqScan(tiny_table)
        scan.open()
        scan.close()
        scan.close()
        assert scan.state is OperatorState.CLOSED

    def test_total_rows(self, tiny_table):
        assert SeqScan(tiny_table).total_rows == 5


class TestSampleScan:
    def test_partition_property(self, tiny_table):
        scan = SampleScan(tiny_table, 0.5, seed=1)
        scan.open()
        rows = list(scan)
        assert sorted(rows) == sorted(tiny_table)
        assert scan.tuples_emitted == 5

    def test_sample_boundary_hook_fires_once(self, tiny_table):
        scan = SampleScan(tiny_table, 0.5, seed=1)
        fired = []
        scan.sample_boundary_hooks.append(lambda s: fired.append(s.tuples_emitted))
        scan.open()
        list(scan)
        assert len(fired) == 1
        # The hook fires exactly when the sample portion is exhausted.
        assert fired[0] == scan.sample_rows

    def test_zero_fraction_never_in_sample(self, tiny_table):
        scan = SampleScan(tiny_table, 0.0, seed=1)
        fired = []
        scan.sample_boundary_hooks.append(lambda s: fired.append(True))
        scan.open()
        rows = list(scan)
        assert rows == list(tiny_table)  # table order
        assert fired  # boundary fires immediately (empty sample)

    def test_phase_transitions(self, tiny_table):
        scan = SampleScan(tiny_table, 0.5, seed=1)
        phases = []
        scan.phase_hooks.append(lambda op, p: phases.append(p))
        scan.open()
        list(scan)
        assert phases == ["sample", "remainder", "done"]

    def test_sample_rows_matches_plan(self, tiny_table):
        scan = SampleScan(tiny_table, 0.5, seed=1)
        assert scan.sample_rows == scan.sample.sample_row_count
