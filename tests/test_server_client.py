"""Unit tests for ProgressClient's transport-failure handling.

These run against tiny hand-scripted TCP servers (not ProgressService), so
each failure mode — truncated reply, slammed connection, refused port,
server verdicts — is produced exactly, and the client's typed
:class:`ServiceError` contract plus the watch/wait retry machinery can be
asserted in isolation.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.server.client import TRANSIENT_CODES, ProgressClient, ServiceError
from repro.server.protocol import decode, encode


class ScriptedServer:
    """Accept connections; for each, read one line and run the next script
    step. Steps are callables ``(conn, request_line) -> None``; the server
    replays the last step for any extra connections."""

    def __init__(self, *steps):
        self.steps = list(steps)
        self.requests: list[dict | None] = []
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        index = 0
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                try:
                    line = conn.makefile("rb").readline()
                    try:
                        self.requests.append(decode(line) if line else None)
                    except Exception:  # noqa: BLE001 - scripted peer, keep going
                        self.requests.append(None)
                    step = self.steps[min(index, len(self.steps) - 1)]
                    index += 1
                    step(conn, line)
                except OSError:
                    pass

    def close(self):
        self._stop.set()
        self.sock.close()
        self._thread.join(timeout=5.0)


def reply(*messages):
    def step(conn, _line):
        for message in messages:
            conn.sendall(encode(message))

    return step


def reply_raw(data: bytes):
    def step(conn, _line):
        conn.sendall(data)

    return step


def slam(conn, _line):
    conn.close()


@pytest.fixture
def scripted(request):
    servers = []

    def make(*steps):
        server = ScriptedServer(*steps)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


class TestRoundtripErrors:
    def test_truncated_reply_is_protocol_error(self, scripted):
        server = scripted(reply_raw(b'{"ok": true, "po'))
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.code == "protocol"
        assert "malformed" in str(excinfo.value)

    def test_immediate_close_is_closed_error(self, scripted):
        server = scripted(slam)
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.code in ("closed", "connection")

    def test_refused_port_is_connection_error(self):
        # Bind-then-close guarantees nothing is listening on the port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ProgressClient("127.0.0.1", port, timeout=2.0)
        with pytest.raises(ServiceError) as excinfo:
            client.ping()
        assert excinfo.value.code == "connection"

    def test_server_verdict_code_preserved(self, scripted):
        server = scripted(
            reply({"ok": False, "error": {"code": "unknown_session", "message": "s9"}})
        )
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        with pytest.raises(ServiceError) as excinfo:
            client.status("s9")
        assert excinfo.value.code == "unknown_session"
        assert excinfo.value.message == "s9"
        assert excinfo.value.code not in TRANSIENT_CODES

    def test_ok_response_passes_through(self, scripted):
        server = scripted(reply({"ok": True, "pong": True}))
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        assert client.ping() is True
        assert server.requests == [{"op": "ping"}]


def _snapshot(sid, seq, progress, state="running"):
    return {
        "event": "snapshot",
        "session": {"session_id": sid, "seq": seq, "progress": progress, "state": state},
    }


class TestWatchReconnect:
    def test_resume_sends_since_cursor(self, scripted):
        # First stream dies after seq 3 without an "end"; the reconnect
        # must carry since=3 and the merged stream must not duplicate.
        server = scripted(
            reply(_snapshot("s1", 1, 0.1), _snapshot("s1", 3, 0.3)),
            reply(
                _snapshot("s1", 4, 0.6),
                _snapshot("s1", 5, 1.0, state="finished"),
                {"event": "end", "reason": "finished"},
            ),
        )
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        events = list(client.watch("s1", backoff_s=0.01))
        seqs = [e["session"]["seq"] for e in events if e["event"] == "snapshot"]
        assert seqs == [1, 3, 4, 5]
        assert events[-1]["event"] == "end"
        first, second = server.requests
        assert "since" not in first
        assert second["since"] == 3

    def test_duplicate_snapshots_across_seam_suppressed(self, scripted):
        # A server that ignores `since` and replays seq 1-2 anyway: the
        # client must still deliver each seq exactly once.
        server = scripted(
            reply(_snapshot("s1", 1, 0.1), _snapshot("s1", 2, 0.2)),
            reply(
                _snapshot("s1", 1, 0.1),
                _snapshot("s1", 2, 0.2),
                _snapshot("s1", 3, 1.0, state="finished"),
                {"event": "end", "reason": "finished"},
            ),
        )
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        seqs = [
            e["session"]["seq"]
            for e in client.watch("s1", backoff_s=0.01)
            if e["event"] == "snapshot"
        ]
        assert seqs == [1, 2, 3]

    def test_gives_up_after_max_reconnects(self, scripted):
        server = scripted(slam)
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        with pytest.raises(ServiceError) as excinfo:
            list(client.watch("s1", max_reconnects=2, backoff_s=0.01))
        assert excinfo.value.code == "connection"
        assert len(server.requests) == 3  # initial + 2 reconnects

    def test_server_verdict_ends_watch_without_retry(self, scripted):
        server = scripted(
            reply({"ok": False, "error": {"code": "unknown_session", "message": "s9"}})
        )
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        with pytest.raises(ServiceError) as excinfo:
            list(client.watch("s9", backoff_s=0.01))
        assert excinfo.value.code == "unknown_session"
        assert len(server.requests) == 1


class TestWaitRetry:
    def test_wait_retries_transient_then_succeeds(self, scripted):
        final = {"session_id": "s1", "seq": 9, "progress": 1.0, "state": "finished"}
        server = scripted(
            slam,
            reply_raw(b"garbage that is not json\n"),
            reply({"ok": True, "session": final}),
        )
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        snap = client.wait("s1", timeout=10.0, backoff_s=0.01)
        assert snap == final
        assert len(server.requests) == 3

    def test_wait_does_not_retry_verdicts(self, scripted):
        server = scripted(
            reply({"ok": False, "error": {"code": "unknown_session", "message": "s9"}})
        )
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        with pytest.raises(ServiceError) as excinfo:
            client.wait("s9", timeout=5.0, backoff_s=0.01)
        assert excinfo.value.code == "unknown_session"
        assert len(server.requests) == 1

    def test_wait_gives_up_after_consecutive_failures(self, scripted):
        server = scripted(slam)
        client = ProgressClient("127.0.0.1", server.port, timeout=5.0)
        with pytest.raises(ServiceError):
            client.wait("s1", timeout=10.0, max_retries=2, backoff_s=0.01)
        assert len(server.requests) == 3
