"""Differential row-vs-batch oracle harness.

Generates ~200 seeded random plans over skewed (Zipf) data and asserts that
row-at-a-time execution and batched execution (batch sizes 1, 7 and 1024)
are observationally identical: same output rows in the same order, same
per-operator ``tuples_emitted`` (the K_i of the progress model), same
``TickBus`` counts, bit-identical final T(Q) / ONCE join estimates, and —
since the batch-aggregated estimator updates — bit-identical *estimator
internals*: t, Σcounts, build histograms (base and derived), sufficient
statistics of every confidence interval, group-count moments, and
``record_every`` history checkpoints.

History *estimates* recorded mid-pass consult probe-total providers (e.g.
``Filter.observed_selectivity``) whose value at a given t legitimately
differs between modes: the batch path has read further ahead through the
provider's operator. Full ``(t, estimate)`` histories are therefore only
compared when every provider on the resolution path is a catalog constant
(``_provider_stable``); the checkpoint *t sequences* — which depend only on
the estimator's own observation count — are compared always.

Plan shapes follow the instrumentation-equivalence contract documented in
``docs/BATCHING.md``: a *truncating* LIMIT is only placed where equivalence
is exact — directly over a scan (the request is capped, not the result), or
over a blocking operator (``Distinct``, aggregates, ``Materialize``: full
input drain either way). Over a streaming ``Filter``/``HashJoin`` the batch
path's bounded read-ahead makes upstream counts diverge by design; that
bound is covered by ``tests/test_batch_operators.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.common.rng import make_rng
from repro.core.progress import ProgressMonitor
from repro.datagen.skew import customer_variant
from repro.executor.engine import ExecutionEngine, TickBus
from repro.executor.expressions import col, lit
from repro.executor.operators import (
    AggregateSpec,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    IndexScan,
    Limit,
    Materialize,
    Project,
    SampleScan,
    SeqScan,
    Sort,
    SortAggregate,
)
from repro.executor.plan import walk
from repro.storage.schema import ColumnType, Schema
from repro.storage.table import Table

HARNESS_SEED = 0xD1FF
NUM_PLANS = 200
BATCH_SIZES = (1, 7, 1024)
TICK_INTERVAL = 64

# -- shared data ---------------------------------------------------------------
# Built once: the harness re-instantiates *operators* per run, never data.

_TABLES: list[Table] | None = None
_NULLABLE: Table | None = None


def _customer_tables() -> list[Table]:
    global _TABLES
    if _TABLES is None:
        _TABLES = [
            customer_variant(z=1.0, domain_size=20, variant=0, num_rows=220, name="c1"),
            customer_variant(z=1.5, domain_size=20, variant=1, num_rows=180, name="c2"),
            customer_variant(z=0.3, domain_size=30, variant=2, num_rows=150, name="c3"),
        ]
    return _TABLES


def _nullable_table() -> Table:
    """A pair table whose join key is NULL ~10% of the time."""
    global _NULLABLE
    if _NULLABLE is None:
        rng = make_rng(HARNESS_SEED, "nullable")
        rows = [
            (None if rng.random() < 0.1 else int(rng.integers(1, 21)), i)
            for i in range(160)
        ]
        _NULLABLE = Table("tn", Schema.of("k:int", "v:int"), rows, block_size=16)
    return _NULLABLE


# -- random plan generator -----------------------------------------------------


@dataclass
class _Shape:
    """A plan under construction plus the flags the generator tracks."""

    op: object
    schema: Schema
    nonnull: list[str]  # columns that can never hold None
    exact_under_limit: bool  # see the module docstring / docs/BATCHING.md


def _pick(rng, items):
    return items[int(rng.integers(0, len(items)))]


def _scan(rng, *, allow_nullable: bool, alias_suffix: str = "") -> _Shape:
    if allow_nullable and rng.random() < 0.18:
        table = _nullable_table()
        if alias_suffix:
            table = table.aliased(table.name + alias_suffix)
        return _Shape(SeqScan(table), table.schema, [f"{table.name}.v"], True)
    table = _pick(rng, _customer_tables())
    if alias_suffix:
        table = table.aliased(table.name + alias_suffix)
    names = table.schema.names()
    kind = rng.random()
    if kind < 0.25:
        low = int(rng.integers(1, 8))
        op = IndexScan(table, f"{table.name}.nationkey", low=low)
    elif kind < 0.45:
        fraction = float(rng.uniform(0.1, 0.4))
        op = SampleScan(table, fraction, seed=int(rng.integers(0, 2**31)))
    else:
        op = SeqScan(table)
    return _Shape(op, table.schema, list(names), True)


def _maybe_filter(rng, shape: _Shape) -> _Shape:
    if rng.random() >= 0.5:
        return shape
    candidates = [
        c.qualified_name
        for c in shape.schema
        if c.ctype is ColumnType.INT and c.qualified_name in shape.nonnull
    ]
    if not candidates:
        return shape
    column = _pick(rng, candidates)
    cutoff = int(rng.integers(2, 26))
    pred = col(column) < lit(cutoff) if rng.random() < 0.7 else col(column) >= lit(cutoff)
    return _Shape(Filter(shape.op, pred), shape.schema, shape.nonnull, False)


def _maybe_join(rng, probe: _Shape) -> _Shape:
    if rng.random() >= 0.75:
        return probe
    build = _scan(rng, allow_nullable=rng.random() < 0.25, alias_suffix="b")
    build = _maybe_filter(rng, build)

    def join_key(schema: Schema) -> str:
        # The nullable table joins on "k", the customer tables on "nationkey".
        for column in schema:
            if column.name in ("k", "nationkey"):
                return column.qualified_name
        raise AssertionError(f"no join key in {schema!r}")

    build_key = join_key(build.schema)
    probe_key = join_key(probe.schema)
    join_type = _pick(rng, ["inner", "inner", "semi", "anti", "outer"])
    num_partitions = _pick(rng, [1, 2, 4, 8])
    memory_partitions = _pick(rng, [1, num_partitions])
    join = HashJoin(
        build.op,
        probe.op,
        build_key,
        probe_key,
        num_partitions=num_partitions,
        memory_partitions=memory_partitions,
        join_type=join_type,
    )
    if join_type == "inner":
        nonnull = build.nonnull + probe.nonnull
    else:
        # semi/anti keep only probe columns; outer NULL-pads the build side.
        nonnull = list(probe.nonnull)
    return _Shape(join, join.output_schema, nonnull, False)


def _maybe_shaper(rng, shape: _Shape) -> _Shape:
    """Optionally cap the plan with a projection, aggregation, distinct or
    sort.  Sort-based operators only see columns proven non-NULL."""
    choice = rng.random()
    int_cols = [c.qualified_name for c in shape.schema if c.ctype is ColumnType.INT]
    sum_col = _pick(rng, int_cols) if int_cols and rng.random() < 0.7 else None
    aggregates = [AggregateSpec("count", alias="n")]
    if sum_col is not None:
        aggregates.append(AggregateSpec("sum", sum_col, alias="s"))
    if choice < 0.2:
        return shape
    if choice < 0.4:
        names = shape.schema.names()
        keep = max(1, int(rng.integers(1, len(names) + 1)))
        picked = [names[i] for i in sorted(rng.choice(len(names), size=keep, replace=False))]
        proj = Project(shape.op, picked)
        nonnull = [n for n in picked if n in shape.nonnull]
        return _Shape(proj, proj.output_schema, nonnull, shape.exact_under_limit)
    if choice < 0.6:
        group = _pick(rng, shape.schema.names())
        agg = HashAggregate(shape.op, [group], aggregates)
        return _Shape(agg, agg.output_schema, [], True)
    if choice < 0.72 and shape.nonnull:
        group = _pick(rng, shape.nonnull)
        agg = SortAggregate(shape.op, [group], aggregates)
        return _Shape(agg, agg.output_schema, [], True)
    if choice < 0.86:
        names = shape.schema.names()
        keep = min(len(names), 2)
        picked = [names[i] for i in sorted(rng.choice(len(names), size=keep, replace=False))]
        op = Distinct(Project(shape.op, picked))
        return _Shape(op, op.output_schema, [], True)
    if shape.nonnull:
        key = _pick(rng, shape.nonnull)
        op = Sort(shape.op, [key])
        return _Shape(op, op.output_schema, shape.nonnull, True)
    return shape


def _maybe_limit(rng, shape: _Shape) -> _Shape:
    if rng.random() >= 0.35:
        return shape
    if shape.exact_under_limit and rng.random() < 0.7:
        n = int(rng.integers(1, 80))
        return _Shape(Limit(shape.op, n), shape.schema, shape.nonnull, True)
    if rng.random() < 0.4:
        # Materialize is a blocking barrier: a truncating LIMIT above it is
        # exact even when the subtree below streams.
        n = int(rng.integers(1, 80))
        op = Limit(Materialize(shape.op), n)
        return _Shape(op, shape.schema, shape.nonnull, True)
    return _Shape(Limit(shape.op, 10**6), shape.schema, shape.nonnull, shape.exact_under_limit)


def build_plan(trial: int):
    """Deterministically build trial ``i``'s plan; every call with the same
    ``trial`` yields a structurally identical plan with fresh operators."""
    rng = make_rng(HARNESS_SEED, "plan", trial)
    shape = _scan(rng, allow_nullable=True)
    shape = _maybe_filter(rng, shape)
    shape = _maybe_join(rng, shape)
    shape = _maybe_shaper(rng, shape)
    shape = _maybe_limit(rng, shape)
    return shape.op


# -- execution + comparison ----------------------------------------------------


def _provider_stable(op) -> bool:
    """Is ``resolve_stream_total(op)`` constant for the whole execution?

    Mirrors the provider's recursion: scan totals are catalog constants;
    ``Filter`` consults ``observed_selectivity`` and the generic fallback
    consults ``tuples_emitted``, both of which sit at different points
    between modes *while the pass is in flight* (batch read-ahead). Only
    when every node on the path is constant are mid-pass history estimates
    bit-comparable between row and batch execution.
    """
    if isinstance(op, (SeqScan, SampleScan, IndexScan)):
        return True
    if isinstance(op, (Project, Sort, Materialize, Limit)):
        return _provider_stable(op.children()[0])
    return False


def _interval_state(interval) -> tuple[int, float, float]:
    return (interval.count, interval.sum_x, interval.sum_x_sq)


def _history_view(history: list[tuple[int, float]], stable: bool):
    return list(history) if stable else [t for t, _ in history]


def _estimator_state(manager, ops_by_id: dict[int, object]) -> list[tuple]:
    """Deep snapshot of every attached estimator's internal state."""
    state: list[tuple] = []
    for chain in manager.chain_estimators:
        stable = _provider_stable(chain.base_stream)
        state.append((
            "chain",
            chain.t,
            list(chain.sums),
            chain.exact,
            [_interval_state(iv) for iv in chain._intervals],
            [dict(h.counts) for h in chain.base_hists],
            {key: dict(h.counts) for key, h in chain.derived.items()},
            [_history_view(h, stable) for h in chain.history],
            chain.confidence_interval(),
        ))
    for op_id, est in manager.join_estimators.items():
        stable = _provider_stable(ops_by_id[op_id].probe_child)
        state.append((
            "once",
            est.t,
            est.sum_counts,
            est.exact,
            _interval_state(est._interval),
            dict(est.histogram.counts),
            _history_view(est.history, stable),
            est.confidence_interval(),
        ))
    for op_id, est in manager.group_estimators.items():
        hybrid = est.hybrid
        # Pushed-down totals track the feeding chain's (provider-backed)
        # estimate, so their estimate-side state is mode-dependent too.
        stable = not est.pushed_down and _provider_stable(ops_by_id[op_id].child)
        group_state = hybrid.state
        moments = group_state.moments
        entry = (
            "group",
            group_state.t,
            dict(group_state.histogram.counts),
            dict(group_state.histogram.freq_of_freq),
            (moments.num_groups, moments.sum_freq, moments.sum_freq_sq),
            hybrid.exact,
            _history_view(hybrid.history, stable),
        )
        if stable:
            entry += ((
                hybrid._cached_mle,
                hybrid.scheduler.interval,
                hybrid.scheduler.recompute_count,
                hybrid.estimate(),
            ),)
        state.append(entry)
    return state


@dataclass
class _Observation:
    rows: list[tuple]
    counts: list[tuple[str, int]]
    bus_count: int
    true_total: float
    t_q: float
    join_estimates: list[float | None]
    estimator_state: list[tuple]


def _observe(trial: int, batch_size: int | None) -> _Observation:
    plan = build_plan(trial)
    bus = TickBus(interval=TICK_INTERVAL)
    monitor = ProgressMonitor(plan, mode="once", bus=bus, record_every=TICK_INTERVAL)
    result = ExecutionEngine(plan, bus=bus, collect_rows=True).run(batch_size=batch_size)
    final = monitor.snapshot()
    assert monitor.manager is not None
    ops_by_id = {id(op): op for op in walk(plan)}
    join_estimates = [
        monitor.manager.estimate_for(op)
        for op in walk(plan)
        if isinstance(op, HashJoin)
    ]
    return _Observation(
        rows=result.rows or [],
        counts=[(op.op_name, op.tuples_emitted) for op in walk(plan)],
        bus_count=bus.count,
        true_total=monitor.true_total(),
        t_q=final.work_total_estimate,
        join_estimates=join_estimates,
        estimator_state=_estimator_state(monitor.manager, ops_by_id),
    )


@pytest.mark.parametrize("trial", range(NUM_PLANS))
def test_row_and_batch_modes_agree(trial):
    reference = _observe(trial, batch_size=None)
    assert reference.t_q == reference.true_total  # final estimate is exact
    for batch_size in BATCH_SIZES:
        got = _observe(trial, batch_size=batch_size)
        context = f"trial={trial} batch_size={batch_size}"
        assert got.rows == reference.rows, context
        assert got.counts == reference.counts, context
        assert got.bus_count == reference.bus_count, context
        assert got.true_total == reference.true_total, context
        assert got.t_q == reference.t_q, context
        assert got.join_estimates == reference.join_estimates, context
        assert got.estimator_state == reference.estimator_state, context


# -- history/ensemble differential guarantee -----------------------------------
# Enabling run history (the repro.robust ensemble) must be observationally
# invisible to execution: the ensemble is a read-only overlay on the same
# tick stream. Rows, ticks, per-operator counts, every recorded snapshot's
# work_done / work_total_estimate and the full estimator internals must be
# bit-identical with history off, cold, and warm.

HISTORY_TRIALS = range(0, NUM_PLANS, 10)


@dataclass
class _HistoryObservation:
    rows: list[tuple]
    counts: list[tuple[str, int]]
    bus_count: int
    true_total: float
    t_q: float
    snapshots: list[tuple[float, float, float]]
    estimator_state: list[tuple]
    prior_source: str | None


def _observe_history(trial: int, store) -> _HistoryObservation:
    plan = build_plan(trial)
    bus = TickBus(interval=TICK_INTERVAL)
    monitor = ProgressMonitor(
        plan, mode="once", bus=bus, record_every=TICK_INTERVAL, history=store
    )
    result = ExecutionEngine(plan, bus=bus, collect_rows=True).run()
    final = monitor.snapshot()
    assert monitor.manager is not None
    ops_by_id = {id(op): op for op in walk(plan)}
    with monitor._lock:
        snapshots = [
            (s.work_done, s.work_total_estimate, s.progress)
            for s in monitor.snapshots
        ]
    if store is not None:
        from repro.robust.feedback import record_run

        record_run(monitor, store, 0.1, len(result.rows or []))
    return _HistoryObservation(
        rows=result.rows or [],
        counts=[(op.op_name, op.tuples_emitted) for op in walk(plan)],
        bus_count=bus.count,
        true_total=monitor.true_total(),
        t_q=final.work_total_estimate,
        snapshots=snapshots,
        estimator_state=_estimator_state(monitor.manager, ops_by_id),
        prior_source=final.prior_source,
    )


@pytest.mark.parametrize("trial", HISTORY_TRIALS)
def test_history_enabled_runs_are_bit_identical(trial, tmp_path):
    from repro.robust import HistoryStore

    reference = _observe_history(trial, store=None)
    assert reference.prior_source is None

    path = tmp_path / "history.jsonl"
    cold = _observe_history(trial, HistoryStore(path))
    assert cold.prior_source == "cold"
    warm = _observe_history(trial, HistoryStore(path))
    assert warm.prior_source == "warm"

    for label, got in (("cold", cold), ("warm", warm)):
        context = f"trial={trial} {label}"
        assert got.rows == reference.rows, context
        assert got.counts == reference.counts, context
        assert got.bus_count == reference.bus_count, context
        assert got.true_total == reference.true_total, context
        assert got.t_q == reference.t_q, context
        assert got.snapshots == reference.snapshots, context
        assert got.estimator_state == reference.estimator_state, context


def test_harness_covers_the_plan_space():
    """Meta-check: the random generator actually exercises joins, shapers
    and truncating limits rather than collapsing to bare scans."""
    kinds = set()
    for trial in range(NUM_PLANS):
        for op in walk(build_plan(trial)):
            kinds.add(op.op_name)
    assert {
        "seq_scan",
        "index_scan",
        "sample_scan",
        "filter",
        "hash_join",
        "project",
        "hash_aggregate",
        "sort_aggregate",
        "distinct",
        "sort",
        "limit",
        "materialize",
    } <= kinds
