"""Parallel-vs-serial differential oracle.

Reuses the PR-2 random plan generator (``tests.test_differential_batch``)
and checks, for every fragmentable plan and P ∈ {1, 2, 4}:

1. **Row multisets identical** — merged parallel output equals the
   serial run's output as a multiset (ordering differs only where the
   serial plan itself had no order guarantee; peeled SortSteps restore
   exact order and are compared exactly in the fragments tests).
2. **Final progress exactly 1.0** — the merged monitor's last snapshot
   pins ``total = done``.
3. **Monotone merged progress** — the coordinator's snapshot stream
   never regresses.
4. **Merged estimator state bit-identical to serial** — after both runs
   finish, every ONCE/chain/group estimator's merged sufficient
   statistics (``t``, ``sum_counts``/per-level sums, histogram counts,
   interval moment sums, exactness) equal the serial estimator's state
   exactly. This is the strongest form of the paper-level claim: the
   parallel progress indicator is not merely *close* — at probe end it
   is the *same* estimator.

The broad sweep runs the deterministic inline backend; a smoke subset
re-runs through real ``multiprocessing`` workers to cover the pipe
protocol end to end.
"""

from __future__ import annotations

import collections

import pytest

from repro.core.progress import ProgressMonitor
from repro.executor.engine import ExecutionEngine, TickBus
from repro.executor.plan import walk
from repro.parallel import Coordinator, try_compile

from tests.test_differential_batch import build_plan

NUM_TRIALS = 48
PROCESS_TRIALS = (3, 11, 17, 28)  # fragmentable subset re-run with real processes
PARALLELISMS = (1, 2, 4)


def _serial_observation(trial: int):
    """Run trial ``trial`` serially with full monitoring; return
    ``(rows multiset, estimator manager, node ops by python id)``."""
    plan = build_plan(trial)
    bus = TickBus(1000)
    monitor = ProgressMonitor(plan, mode="once", bus=bus)
    result = ExecutionEngine(plan, bus=bus).run(batch_size=256)
    ops = {id(op): op for op in walk(plan)}
    return collections.Counter(result.rows), monitor.manager, ops


def _assert_merged_state_matches(manager, ops, merged, trial, p):
    """Invariant 4: merged parallel statistics == serial statistics."""
    context = f"trial={trial} P={p}"
    for op_key, once in manager.join_estimators.items():
        nid = ops[op_key].node_id
        state = merged.get(("once", (nid,)))
        assert state is not None, f"{context}: once@{nid} missing from merge"
        assert state.t == once.t, f"{context}: once@{nid} t"
        assert state.sum_counts == once.sum_counts, f"{context}: once@{nid} Σcounts"
        assert state.exact and once.exact, f"{context}: once@{nid} exactness"
        assert dict(state.counts) == dict(once.histogram.counts), (
            f"{context}: once@{nid} histogram"
        )
        interval = once._interval
        assert state.interval_sums == (
            interval.count,
            interval.sum_x,
            interval.sum_x_sq,
        ), f"{context}: once@{nid} interval sums"
        assert state.estimate() == float(once.sum_counts), (
            f"{context}: once@{nid} estimate must collapse to exact"
        )
    for chain in manager.chain_estimators:
        sids = tuple(join.node_id for join in chain.chain)
        state = merged.get(("chain", sids))
        assert state is not None, f"{context}: chain@{sids} missing from merge"
        assert state.t == chain.t, f"{context}: chain@{sids} t"
        assert list(state.sums) == list(chain.sums), f"{context}: chain@{sids} sums"
        for level, hist in enumerate(chain.base_hists):
            assert dict(state.hists[level]) == dict(hist.counts), (
                f"{context}: chain@{sids} level-{level} histogram"
            )
    for op_key, group in manager.group_estimators.items():
        nid = ops[op_key].node_id
        state = merged.get(("group", (nid,)))
        assert state is not None, f"{context}: group@{nid} missing from merge"
        assert dict(state.counts) == dict(
            group.hybrid.state.histogram.counts
        ), f"{context}: group@{nid} histogram"
        assert state.exact == group.hybrid.exact, f"{context}: group@{nid} exactness"


def _run_parallel(trial, p, backend):
    fragments = try_compile(build_plan(trial), p)
    if fragments is None:
        return None
    coordinator = Coordinator(fragments, backend=backend, delta_every=512)
    result = coordinator.run(poll_s=0.02)
    return coordinator, result


@pytest.mark.parametrize("trial", range(NUM_TRIALS))
def test_inline_parallel_matches_serial(trial):
    serial_rows, manager, ops = _serial_observation(trial)
    fragmented_any = False
    for p in PARALLELISMS:
        run = _run_parallel(trial, p, "inline")
        if run is None:
            continue
        fragmented_any = True
        coordinator, result = run
        # 1: identical row multisets.
        assert collections.Counter(result.rows) == serial_rows, (
            f"trial={trial} P={p}: rows diverged "
            f"({len(result.rows)} vs {sum(serial_rows.values())})"
        )
        # 2: final progress exactly 1.0.
        final = coordinator.monitor.snapshot()
        assert final.work_done == final.work_total_estimate, (
            f"trial={trial} P={p}: final total not pinned to done"
        )
        assert final.progress == 1.0
        # 3: monotone merged progress stream.
        fractions = [
            s.progress
            for s in coordinator.monitor.snapshots
            if s.work_total_estimate > 0
        ]
        assert all(
            b >= a - 1e-12 for a, b in zip(fractions, fractions[1:])
        ), f"trial={trial} P={p}: progress regressed: {fractions}"
        # 4: merged estimator state bit-identical to serial.
        if manager is not None:
            _assert_merged_state_matches(
                manager, ops, coordinator.monitor.merged_estimators(), trial, p
            )
    if not fragmented_any:
        pytest.skip(f"trial {trial} not fragmentable at any P (serial fallback)")


@pytest.mark.parametrize("trial", PROCESS_TRIALS)
def test_process_backend_matches_serial(trial):
    serial_rows, manager, ops = _serial_observation(trial)
    run = _run_parallel(trial, 4, "process")
    if run is None:
        pytest.skip(f"trial {trial} not fragmentable at P=4")
    coordinator, result = run
    assert collections.Counter(result.rows) == serial_rows
    final = coordinator.monitor.snapshot()
    assert final.progress == 1.0
    if manager is not None:
        _assert_merged_state_matches(
            manager, ops, coordinator.monitor.merged_estimators(), trial, 4
        )


def test_sweep_actually_covers_fragmentable_plans():
    """Meta-test: the generator must keep feeding the oracle real work —
    a harness where everything falls back to serial proves nothing."""
    fragmentable = sum(
        1
        for trial in range(NUM_TRIALS)
        if try_compile(build_plan(trial), 4) is not None
    )
    assert fragmentable >= NUM_TRIALS // 3, (
        f"only {fragmentable}/{NUM_TRIALS} trials fragmentable — "
        "the differential sweep lost its coverage"
    )
