"""Tests for the confidence interval machinery."""

import pytest

from repro.core.confidence import MeanEstimateInterval, binomial_beta, proportion_interval


class TestBinomialBeta:
    def test_shrinks_as_sqrt_t(self):
        b100 = binomial_beta(100)
        b400 = binomial_beta(400)
        assert b400 == pytest.approx(b100 / 2)

    def test_infinite_at_zero(self):
        assert binomial_beta(0) == float("inf")

    def test_known_value(self):
        # beta = Z_alpha / (2 sqrt(t)); Z_0.9545 ~ 2.
        assert binomial_beta(100, alpha=0.9545) == pytest.approx(0.1, abs=2e-3)

    def test_higher_confidence_wider(self):
        assert binomial_beta(100, 0.999) > binomial_beta(100, 0.9)


class TestProportionInterval:
    def test_contains_estimate(self):
        lo, hi = proportion_interval(30, 100)
        assert lo < 0.3 < hi

    def test_clipped_to_unit_interval(self):
        lo, hi = proportion_interval(0, 100)
        assert lo == 0.0
        lo, hi = proportion_interval(100, 100)
        assert hi == 1.0

    def test_degenerate_t(self):
        assert proportion_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_t(self):
        w1 = (lambda lo_hi: lo_hi[1] - lo_hi[0])(proportion_interval(30, 100))
        w2 = (lambda lo_hi: lo_hi[1] - lo_hi[0])(proportion_interval(300, 1000))
        assert w2 < w1


class TestMeanEstimateInterval:
    def test_mean_and_variance(self):
        acc = MeanEstimateInterval()
        for x in [2.0, 4.0, 6.0]:
            acc.observe(x)
        assert acc.mean == pytest.approx(4.0)
        assert acc.variance == pytest.approx(8 / 3)

    def test_interval_contains_scaled_mean(self):
        acc = MeanEstimateInterval()
        for x in [1.0, 2.0, 3.0, 4.0]:
            acc.observe(x)
        lo, hi = acc.interval(scale=100.0)
        assert lo < 250.0 < hi

    def test_empty_interval_is_vacuous(self):
        lo, hi = MeanEstimateInterval().interval(scale=10.0)
        assert (lo, hi) == (0.0, float("inf"))

    def test_single_observation_degenerate(self):
        acc = MeanEstimateInterval()
        acc.observe(5.0)
        assert acc.interval(scale=2.0) == (10.0, 10.0)

    def test_fpc_narrows_interval(self):
        acc = MeanEstimateInterval()
        for x in [1.0, 5.0, 2.0, 8.0, 3.0, 9.0]:
            acc.observe(x)
        lo_inf, hi_inf = acc.interval(scale=1.0)
        lo_fpc, hi_fpc = acc.interval(scale=1.0, population=8)
        assert (hi_fpc - lo_fpc) < (hi_inf - lo_inf)

    def test_fpc_zero_width_at_full_population(self):
        acc = MeanEstimateInterval()
        for x in [1.0, 2.0, 3.0]:
            acc.observe(x)
        lo, hi = acc.interval(scale=1.0, population=3)
        assert hi - lo == pytest.approx(0.0, abs=1e-12)

    def test_coverage_simulation(self):
        """~99% of intervals should cover the true scaled mean."""
        import numpy as np

        rng = np.random.default_rng(0)
        population = rng.integers(0, 20, size=2000).astype(float)
        true_total = population.sum()
        covered = 0
        trials = 200
        for _ in range(trials):
            sample = rng.permutation(population)[:200]
            acc = MeanEstimateInterval()
            for x in sample:
                acc.observe(float(x))
            lo, hi = acc.interval(
                scale=len(population), alpha=0.99, population=len(population)
            )
            if lo <= true_total <= hi:
                covered += 1
        assert covered / trials >= 0.95
