"""Tests for block-level random sampling."""

import pytest

from repro.storage.sampling import plan_block_sample
from repro.storage.schema import Schema
from repro.storage.table import Table


def make_table(rows: int, block_size: int = 10) -> Table:
    return Table(
        "t", Schema.of("k:int"), [(i,) for i in range(rows)], block_size=block_size
    )


class TestPlanBlockSample:
    def test_zero_fraction_is_empty(self):
        sample = plan_block_sample(make_table(100), 0.0)
        assert sample.sampled_block_ids == ()
        assert sample.sample_row_count == 0
        assert list(sample.iter_all()) == list(make_table(100))

    def test_full_fraction_covers_everything(self):
        sample = plan_block_sample(make_table(100), 1.0, seed=1)
        assert sample.fraction == 1.0
        assert sorted(r[0] for r in sample.iter_sample()) == list(range(100))
        assert list(sample.iter_remainder()) == []

    def test_fraction_at_least_target(self):
        table = make_table(1000)
        sample = plan_block_sample(table, 0.1, seed=2)
        assert 0.1 <= sample.fraction <= 0.1 + 10 / 1000 + 1e-9

    def test_partition_property(self):
        """Sample + remainder = whole table, no duplicates (the antijoin)."""
        table = make_table(500, block_size=7)
        sample = plan_block_sample(table, 0.25, seed=3)
        seen = [r[0] for r in sample.iter_all()]
        assert sorted(seen) == list(range(500))
        assert len(set(sample.sampled_block_ids) & set(sample.remainder_block_ids)) == 0

    def test_deterministic_per_seed(self):
        table = make_table(300)
        a = plan_block_sample(table, 0.2, seed=9)
        b = plan_block_sample(table, 0.2, seed=9)
        assert a.sampled_block_ids == b.sampled_block_ids

    def test_different_seed_different_sample(self):
        table = make_table(1000)
        a = plan_block_sample(table, 0.2, seed=1)
        b = plan_block_sample(table, 0.2, seed=2)
        assert a.sampled_block_ids != b.sampled_block_ids

    def test_sample_blocks_randomly_ordered(self):
        table = make_table(2000)
        sample = plan_block_sample(table, 0.5, seed=4)
        assert list(sample.sampled_block_ids) != sorted(sample.sampled_block_ids)

    def test_remainder_in_table_order(self):
        table = make_table(200)
        sample = plan_block_sample(table, 0.3, seed=5)
        assert list(sample.remainder_block_ids) == sorted(sample.remainder_block_ids)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rejects_bad_fraction(self, bad):
        with pytest.raises(ValueError):
            plan_block_sample(make_table(10), bad)

    def test_empty_table(self):
        sample = plan_block_sample(make_table(0), 0.5)
        assert sample.sample_row_count == 0
        assert sample.fraction == 0.0
