"""Chaos/invariant harness: randomized fault schedules vs. hard invariants.

Every test in this tree follows the same shape: build a deterministic
fault schedule from a fixed seed (CI runs a small seed matrix), run real
queries through the engine or the TCP service with the schedule installed,
and assert the invariants that must survive *any* fault sequence — see
:mod:`tests.chaos.invariants`. On failure, the full fault schedule plus
its firing log is dumped as JSON so the run can be replayed exactly.
"""
