"""Chaos invariant for the run-history store (satellite of repro.robust):
**history faults never change row results or terminal progress**.

History is an accelerant, never a dependency. A fault at ``history.read``
(store load) degrades the ensemble to cold-start priors; a fault at
``history.write`` (run recording) drops the record — and that is the
*whole* blast radius. Rows, tick counts and the terminal progress state
must be bit-identical to a fault-free history-enabled run, with
``degraded_reason`` surfaced on the store (and through session
snapshots) so the degradation is observable, not silent.
"""

from __future__ import annotations

import pytest

from repro.executor.engine import ExecutionEngine
from repro.faults import ERROR, SHORT_READ, FaultPlan, FaultSpec
from repro.faults.plan import SITE_HISTORY_READ, SITE_HISTORY_WRITE
from repro.robust import HistoryStore
from repro.server.session import QuerySession, SessionState

from tests.chaos.schedules import chaos_seeds
from tests.test_differential_batch import build_plan

TRIALS = (0, 3, 11, 29)
MAX_STEPS = 10_000
QUANTUM = 64

#: Every way the two history sites can fail, plus both together.
FAULT_SHAPES = [
    [FaultSpec(SITE_HISTORY_READ, kind=ERROR, every=1)],
    [FaultSpec(SITE_HISTORY_READ, kind=SHORT_READ, every=1)],
    [FaultSpec(SITE_HISTORY_WRITE, kind=ERROR, every=1)],
    [FaultSpec(SITE_HISTORY_WRITE, kind=SHORT_READ, every=1)],
    [
        FaultSpec(SITE_HISTORY_READ, kind=ERROR, every=1),
        FaultSpec(SITE_HISTORY_WRITE, kind=SHORT_READ, every=1),
    ],
]


@pytest.fixture(autouse=True)
def _lock_asserts(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_ASSERTS", "1")


def run_session(plan, store) -> QuerySession:
    session = QuerySession(
        plan, quantum_rows=QUANTUM, row_cap=1_000_000, history=store
    )
    for _ in range(MAX_STEPS):
        if not session.step():
            break
    else:
        pytest.fail(f"session wedged: still {session.state} after {MAX_STEPS} steps")
    return session


def terminal_facts(session: QuerySession):
    snap = session.snapshot()
    return (
        session.state,
        sorted(session.rows),
        session.row_count,
        snap.progress,
        snap.work_done,
        snap.work_total_estimate,
    )


@pytest.mark.parametrize("seed", chaos_seeds())
def test_history_faults_never_change_rows_or_terminal_progress(seed, tmp_path):
    for trial in TRIALS:
        path = tmp_path / f"history-{trial}.jsonl"
        # Warm the store with one clean run, then take the fault-free
        # warm-start run as the reference for rows + terminal progress.
        run_session(build_plan(trial), HistoryStore(path))
        reference = terminal_facts(run_session(build_plan(trial), HistoryStore(path)))
        assert reference[0] is SessionState.FINISHED
        assert reference[3] == 1.0

        shape = FAULT_SHAPES[seed % len(FAULT_SHAPES)]
        plan = FaultPlan(seed=seed, specs=[s for s in shape])
        store = HistoryStore(path, faults=plan)
        session = run_session(build_plan(trial), store)
        context = f"seed={seed} trial={trial} sites={[s.site for s in shape]}"

        # The one allowed effect: the store reports why it degraded.
        assert plan.records(), f"history fault never fired: {context}"
        assert store.degraded_reason is not None, context
        # Everything else is bit-identical to the fault-free reference.
        assert terminal_facts(session) == reference, context


def test_read_fault_degradation_is_visible_in_snapshots(tmp_path):
    """A degraded store surfaces through the session's wire snapshots:
    ``degraded`` set with the store's reason, cold-start prior source."""
    path = tmp_path / "history.jsonl"
    run_session(build_plan(0), HistoryStore(path))  # warm the file
    plan = FaultPlan(
        seed=7, specs=[FaultSpec(SITE_HISTORY_READ, kind=ERROR, every=1)]
    )
    session = run_session(build_plan(0), HistoryStore(path, faults=plan))
    snap = session.snapshot()
    assert snap.degraded
    assert snap.degraded_reason is not None
    assert "history read fault" in snap.degraded_reason
    assert snap.prior_source == "cold"

    # The same plan without the fault warm-starts from the same file.
    clean = run_session(build_plan(0), HistoryStore(path))
    assert clean.snapshot().prior_source == "warm"


def test_write_fault_drops_record_but_engine_rows_survive(tmp_path):
    """Engine-level: a faulted history write loses only the record."""
    baseline = ExecutionEngine(build_plan(1), collect_rows=True).run()
    plan = FaultPlan(
        seed=3, specs=[FaultSpec(SITE_HISTORY_WRITE, kind=ERROR, every=1)]
    )
    store = HistoryStore(tmp_path / "h.jsonl", faults=plan)
    result = ExecutionEngine(build_plan(1), collect_rows=True, history=store).run()
    assert result.rows == baseline.rows
    assert len(store) == 0
    assert store.degraded_reason is not None
    assert "history write" in store.degraded_reason
