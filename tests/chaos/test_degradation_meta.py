"""Meta-test: the harness must *catch* broken degradation, not just pass.

A chaos harness that never fails is indistinguishable from one that checks
nothing. Here we deliberately break the graceful-degradation contract —
estimator-hook faults armed with the dne fallback disabled
(``resilient=False``) — and assert that invariant 7
(:func:`check_estimator_faults_survivable`) flags the run. The same
schedule with the fallback enabled must sail through, pinning down that
the invariant discriminates on exactly the degradation behaviour.
"""

from __future__ import annotations

import pytest

from repro.server.session import QuerySession, SessionState

from tests.chaos.invariants import check_estimator_faults_survivable
from tests.chaos.schedules import chaos_seeds, estimator_only_schedule
from tests.test_differential_batch import build_plan

TRIAL = 4  # any differential-harness plan with estimators attached
MAX_STEPS = 10_000


@pytest.fixture(autouse=True)
def _lock_asserts(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_ASSERTS", "1")


def _run(session: QuerySession) -> None:
    for _ in range(MAX_STEPS):
        if not session.step():
            return
    pytest.fail(f"session wedged after {MAX_STEPS} steps")


def _find_firing_trial(plan_builder, resilient: bool, seed: int):
    """Not every generated plan attaches hookable estimators; scan a few
    trials for one where the schedule actually fires."""
    for trial in range(TRIAL, TRIAL + 10):
        plan = plan_builder(seed)
        session = QuerySession(
            build_plan(trial),
            quantum_rows=32,
            row_cap=0,
            faults=plan,
            resilient=resilient,
        )
        _run(session)
        if plan.records():
            return session, plan
    pytest.skip("no trial in range attached estimator hooks")


@pytest.mark.parametrize("seed", chaos_seeds())
def test_harness_catches_disabled_fallback(seed):
    """resilient=False + estimator faults ⇒ the query dies — and the
    invariant must catch that, loudly."""
    session, plan = _find_firing_trial(estimator_only_schedule, False, seed)
    assert session.state is SessionState.FAILED, (
        "with the fallback disabled, an estimator fault should kill the "
        f"query, got {session.state}"
    )
    with pytest.raises(AssertionError, match="degrade the progress estimate"):
        check_estimator_faults_survivable(session, plan.specs, None)


@pytest.mark.parametrize("seed", chaos_seeds())
def test_same_schedule_passes_with_fallback(seed):
    """The control arm: identical schedule, fallback enabled ⇒ invariant 7
    holds and the session reports itself degraded."""
    session, plan = _find_firing_trial(estimator_only_schedule, True, seed)
    check_estimator_faults_survivable(session, plan.specs, None)
    final = session.snapshot()
    assert final.degraded
    assert final.degraded_reason


def test_invariant_rejects_mixed_schedules():
    """Invariant 7 only speaks about estimator-only schedules; feeding it
    anything else is a harness bug and must be rejected."""
    from repro.faults import ERROR, SITE_SCAN_READ, FaultSpec

    session = QuerySession(build_plan(TRIAL), row_cap=0)
    _run(session)
    mixed = (FaultSpec(SITE_SCAN_READ, kind=ERROR, every=1),)
    with pytest.raises(AssertionError, match="only applies"):
        check_estimator_faults_survivable(session, mixed, None)
