"""TCP-level chaos: connection + engine faults against the live service.

A :class:`ProgressService` runs with a seeded schedule mixing socket-level
faults (``server.read`` / ``server.write`` errors and short reads — dropped
connections, truncated frames) with engine-side noise (transient cursor
faults, short scan reads). All counts are finite, so the service always
becomes healthy again; what is under test is the client's typed-error +
retry/resume machinery and the wire-level invariants: merged watch streams
(across reconnects, resumed via the ``since`` cursor) keep strictly
increasing ``seq`` and non-regressing progress, finished queries deliver
exactly the fault-free rows, and the service stays serviceable throughout.
"""

from __future__ import annotations

import time

import pytest

from repro.executor.engine import ExecutionEngine
from repro.server import ProgressClient, ProgressService, ServiceError
from repro.server.client import TRANSIENT_CODES
from repro.sql import compile_select

from tests.chaos.invariants import TERMINAL_WIRE, check_wire_stream
from tests.chaos.schedules import chaos_seeds, dump_failure, service_schedule

QUERIES = [
    "SELECT c.name, o.totalprice FROM customer c JOIN orders o"
    " ON c.custkey = o.custkey",
    "SELECT o.custkey, COUNT(*) FROM orders o GROUP BY o.custkey",
    "SELECT o.orderkey, o.totalprice FROM orders o WHERE o.totalprice > 1000",
]


@pytest.fixture(autouse=True)
def _lock_asserts(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_ASSERTS", "1")


@pytest.fixture(scope="module")
def db():
    from repro.datagen import generate_tpch

    return generate_tpch(sf=0.002, seed=21)


@pytest.fixture(scope="module")
def expected(db):
    return [
        ExecutionEngine(compile_select(db, sql).plan).run().rows for sql in QUERIES
    ]


def submit_with_retry(client, sql, name, attempts=12):
    """Chaos-aware submit: transport errors are retried, server verdicts
    are not — exactly the contract TRANSIENT_CODES encodes."""
    for attempt in range(attempts):
        try:
            return client.submit(sql, name=name)
        except ServiceError as exc:
            if exc.code not in TRANSIENT_CODES or attempt == attempts - 1:
                raise
            time.sleep(0.02 * (attempt + 1))
    raise AssertionError("unreachable")


def fetch_with_retry(client, session_id, attempts=12):
    for attempt in range(attempts):
        try:
            return client.fetch(session_id)
        except ServiceError as exc:
            if exc.code not in TRANSIENT_CODES or attempt == attempts - 1:
                raise
            time.sleep(0.02 * (attempt + 1))
    raise AssertionError("unreachable")


@pytest.mark.parametrize("seed", chaos_seeds())
def test_service_chaos_invariants(db, expected, seed):
    plan = service_schedule(seed)
    svc = ProgressService(
        db,
        port=0,
        workers=2,
        quantum_rows=64,
        tick_interval=200,
        row_cap=50_000,
        faults=plan,
    )
    svc.start()
    client = ProgressClient(svc.host, svc.port, timeout=30.0)
    try:
        submitted = []
        for i, sql in enumerate(QUERIES):
            snap = submit_with_retry(client, sql, name=f"chaos{seed}-{i}")
            submitted.append((i, snap["session_id"]))

        streams = {
            sid: list(client.watch(sid, max_reconnects=10)) for _i, sid in submitted
        }
        finals = {sid: client.wait(sid, timeout=120.0) for _i, sid in submitted}

        try:
            for i, sid in submitted:
                final = finals[sid]
                assert final["state"] in TERMINAL_WIRE, (
                    f"session {sid} not terminal: {final['state']}"
                )
                events = streams[sid]
                assert events and events[-1]["event"] == "end", (
                    f"watch stream for {sid} never ended cleanly"
                )
                check_wire_stream(events, sid)
                # Engine faults in this schedule are all within the retry
                # budget, and socket faults never touch execution — every
                # query must actually finish with exactly the clean rows.
                assert final["state"] == "finished", (
                    f"{sid} ended {final['state']}: {final.get('error')}"
                )
                assert final["progress"] == 1.0
                fetched = fetch_with_retry(client, sid)
                assert not fetched["truncated"]
                got = [tuple(row) for row in fetched["rows"]]
                assert got == expected[i], f"rows diverged for {sid}"
        except AssertionError:
            dump_failure(
                f"service-seed{seed}",
                plan,
                [e for evs in streams.values() for e in evs],
                extra={"finals": finals},
            )
            raise

        # The schedule must have actually fired: a chaos run where nothing
        # went wrong proves nothing about the retry machinery.
        fired_sites = {record["site"] for record in plan.records()}
        assert fired_sites, f"schedule for seed {seed} never fired"

        # And the service is healthy once the budgets are exhausted. The
        # budgets drain on a timing-dependent schedule (status polls vary
        # with host load), so the health probe retries transport errors
        # like every other call here instead of assuming drain order.
        for attempt in range(12):
            try:
                assert client.ping()
                break
            except ServiceError as exc:
                if exc.code not in TRANSIENT_CODES or attempt == 11:
                    raise
                time.sleep(0.02 * (attempt + 1))
    finally:
        svc.shutdown()


@pytest.mark.parametrize("seed", chaos_seeds())
def test_watch_resumes_via_since_cursor(db, seed):
    """A watch that reconnects mid-query resumes from its ``since`` cursor:
    the merged stream has no duplicate and no regressing snapshot."""
    from repro.faults import ERROR, SITE_SERVER_WRITE, FaultPlan, FaultSpec

    # Kill the watch stream's socket every ~20 written lines, a few times.
    plan = FaultPlan(
        seed=seed,
        specs=[FaultSpec(SITE_SERVER_WRITE, kind=ERROR, every=20, count=3)],
    )
    svc = ProgressService(
        db, port=0, workers=2, quantum_rows=16, tick_interval=50, faults=plan
    )
    svc.start()
    client = ProgressClient(svc.host, svc.port, timeout=30.0)
    try:
        long_sql = (
            "SELECT a.orderkey, b.orderkey FROM orders a JOIN orders b"
            " ON a.custkey = b.custkey"
        )
        sid = submit_with_retry(client, long_sql, name="resume-target")["session_id"]
        events = list(client.watch(sid, max_reconnects=10))
        final = client.wait(sid, timeout=120.0)
        assert final["state"] == "finished"
        assert events[-1]["event"] == "end"
        snaps = [e["session"] for e in events if e["event"] == "snapshot"]
        assert snaps, "watch saw no snapshots at all"
        seqs = [s["seq"] for s in snaps]
        assert len(seqs) == len(set(seqs)), f"duplicate seq across resume: {seqs}"
        check_wire_stream(events, sid)
        # The stream really did break and resume at least once.
        assert plan.records(), "server.write fault never fired"
    finally:
        svc.shutdown()


@pytest.mark.parametrize("seed", chaos_seeds())
def test_delta_watch_resyncs_via_keyframe_after_write_faults(db, seed):
    """``server.write`` faults landing mid-delta-stream force reconnects;
    every resume must resync through a full keyframe, so the merged
    delta-reassembled stream never duplicates or regresses a ``seq`` and
    every yielded snapshot is complete (no fields lost to a delta applied
    against state the client never saw)."""
    from repro.faults import ERROR, SITE_SERVER_WRITE, FaultPlan, FaultSpec

    wire_fields = {
        "session_id", "name", "state", "seq", "progress", "work_done",
        "work_total_estimate", "row_count", "elapsed_s", "error", "degraded",
        "degraded_reason", "retries", "ensemble", "weights", "prior_source",
    }
    # Fire every ~15 written lines so faults land between keyframes
    # (default cadence 16), i.e. while the stream is mid-delta.
    plan = FaultPlan(
        seed=seed,
        specs=[FaultSpec(SITE_SERVER_WRITE, kind=ERROR, every=15, count=4)],
    )
    svc = ProgressService(
        db, port=0, workers=2, quantum_rows=16, tick_interval=50, faults=plan
    )
    svc.start()
    client = ProgressClient(svc.host, svc.port, timeout=30.0)
    try:
        long_sql = (
            "SELECT a.orderkey, b.orderkey FROM orders a JOIN orders b"
            " ON a.custkey = b.custkey"
        )
        sid = submit_with_retry(client, long_sql, name="delta-resync")["session_id"]
        events = list(client.watch(sid, max_reconnects=12, delta=True))
        final = client.wait(sid, timeout=120.0)
        assert final["state"] == "finished"
        assert events[-1]["event"] == "end"
        snaps = [e["session"] for e in events if e["event"] == "snapshot"]
        assert snaps, "delta watch saw no snapshots at all"
        seqs = [s["seq"] for s in snaps]
        assert len(seqs) == len(set(seqs)), f"duplicate seq across resync: {seqs}"
        assert seqs == sorted(seqs), f"seq regressed across resync: {seqs}"
        for snap in snaps:
            assert set(snap) == wire_fields, (
                f"incomplete reassembled snapshot at seq {snap['seq']}"
            )
        check_wire_stream(events, sid)
        assert snaps[-1]["progress"] == 1.0 and snaps[-1]["state"] == "finished"
        assert plan.records(), "server.write fault never fired mid-delta"
    finally:
        svc.shutdown()
