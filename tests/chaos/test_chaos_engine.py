"""In-process chaos: randomized fault schedules against QuerySession.

Each trial reuses the differential harness's seeded plan generator
(:func:`tests.test_differential_batch.build_plan` — fresh operators per
call, identical shape per trial), computes the fault-free baseline rows
with a bare engine, then replays the same plan under a seeded fault
schedule through a :class:`QuerySession` stepper and asserts the full
invariant set from :mod:`tests.chaos.invariants`. Runs with the in-tree
lock-ownership asserts live (``REPRO_LOCK_ASSERTS=1``).
"""

from __future__ import annotations

import pytest

from repro.executor.engine import ExecutionEngine
from repro.server.session import QuerySession, SessionState

from tests.chaos.invariants import (
    check_estimator_faults_survivable,
    check_session_invariants,
)
from tests.chaos.schedules import (
    chaos_seeds,
    dump_failure,
    engine_schedule,
    estimator_only_schedule,
)
from tests.test_differential_batch import build_plan

TRIALS_PER_SEED = 6
MAX_STEPS = 10_000  # wedge bound: far beyond any plan the generator emits
QUANTUM = 64


@pytest.fixture(autouse=True)
def _lock_asserts(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_ASSERTS", "1")


def _baseline_rows(trial: int) -> list[tuple]:
    result = ExecutionEngine(build_plan(trial), collect_rows=True).run()
    assert result.rows is not None
    return result.rows


def _run_session(session: QuerySession) -> list:
    """Step to a terminal state, collecting every published snapshot.

    Fails the test (wedge) if the session is still live after MAX_STEPS.
    """
    events = []
    session.add_listener(lambda _s, snap: events.append(snap))
    for _ in range(MAX_STEPS):
        if not session.step():
            break
    else:
        pytest.fail(f"session wedged: still {session.state} after {MAX_STEPS} steps")
    return events


@pytest.mark.parametrize("seed", chaos_seeds())
def test_engine_chaos_invariants(seed):
    for trial in range(TRIALS_PER_SEED):
        plan = engine_schedule(seed, trial)
        baseline = _baseline_rows(trial)
        session = QuerySession(
            build_plan(trial),
            name=f"chaos-{seed}-{trial}",
            quantum_rows=QUANTUM,
            row_cap=1_000_000,
            faults=plan,
        )
        events = _run_session(session)
        try:
            check_session_invariants(session, events, baseline)
        except AssertionError:
            path = dump_failure(
                f"engine-seed{seed}-trial{trial}",
                plan,
                events,
                extra={"state": session.state.value, "error": session.error},
            )
            print(f"fault schedule dumped to {path}")
            raise


@pytest.mark.parametrize("seed", chaos_seeds())
def test_engine_chaos_outcome_mix(seed):
    """The schedule generator must exercise both outcomes across a seed's
    trials — all-FAILED (or all-FINISHED) chaos proves much less."""
    outcomes = set()
    for trial in range(TRIALS_PER_SEED):
        session = QuerySession(
            build_plan(trial),
            quantum_rows=QUANTUM,
            row_cap=0,
            faults=engine_schedule(seed, trial),
        )
        _run_session(session)
        outcomes.add(session.state)
    assert SessionState.FINISHED in outcomes, (
        f"no trial survived its schedule (seed {seed}): {outcomes}"
    )


@pytest.mark.parametrize("seed", chaos_seeds())
def test_engine_chaos_is_deterministic(seed):
    """Same seed + trial ⇒ identical outcome, firing log and row count."""
    trial = 0

    def run():
        plan = engine_schedule(seed, trial)
        session = QuerySession(
            build_plan(trial),
            quantum_rows=QUANTUM,
            row_cap=1_000_000,
            faults=plan,
        )
        _run_session(session)
        fired = [
            (r["site"], r["kind"], r["opportunity"]) for r in plan.records()
        ]
        return session.state, session.error, session.row_count, fired

    assert run() == run()


@pytest.mark.parametrize("seed", chaos_seeds())
def test_estimator_faults_degrade_not_die(seed):
    """Invariant 7: estimator-hook-only schedules always FINISH, flagged
    degraded, with exactly the baseline rows."""
    trial = 1
    plan = estimator_only_schedule(seed)
    baseline = _baseline_rows(trial)
    session = QuerySession(
        build_plan(trial),
        quantum_rows=QUANTUM,
        row_cap=1_000_000,
        faults=plan,
    )
    events = _run_session(session)
    try:
        check_estimator_faults_survivable(session, plan.specs, baseline)
        check_session_invariants(session, events, baseline)
    except AssertionError:
        dump_failure(f"estimator-seed{seed}", plan, events)
        raise
    if plan.records():
        # The hooks actually fired, so the demotion must be visible.
        final = session.snapshot()
        assert final.degraded, "estimator fault fired but snapshot not degraded"
        assert final.degraded_reason


@pytest.mark.parametrize("seed", chaos_seeds())
def test_transient_faults_within_budget_finish(seed):
    """Cursor-boundary faults inside the retry budget are absorbed: the
    session FINISHES with exact rows and reports the retries it spent."""
    from repro.faults import ERROR, SITE_CURSOR_FETCH, FaultPlan, FaultSpec

    trial = 2
    baseline = _baseline_rows(trial)
    plan = FaultPlan(
        seed=seed,
        specs=[FaultSpec(SITE_CURSOR_FETCH, kind=ERROR, every=2, count=3)],
    )
    session = QuerySession(
        build_plan(trial),
        quantum_rows=QUANTUM,
        row_cap=1_000_000,
        faults=plan,
        retry_budget=3,
    )
    events = _run_session(session)
    check_session_invariants(session, events, baseline)
    assert session.state is SessionState.FINISHED
    assert session.retry_count == len(plan.records()) > 0
    assert events[-1].retries == session.retry_count


@pytest.mark.parametrize("seed", chaos_seeds())
def test_transient_faults_past_budget_fail_cleanly(seed):
    """One fault past the budget: FAILED with a diagnosis, locks released,
    stream invariants intact — never a wedge, never silent rows."""
    from repro.faults import ERROR, SITE_CURSOR_FETCH, FaultPlan, FaultSpec

    trial = 3
    plan = FaultPlan(
        seed=seed,
        specs=[FaultSpec(SITE_CURSOR_FETCH, kind=ERROR, every=1, count=None)],
    )
    session = QuerySession(
        build_plan(trial),
        quantum_rows=QUANTUM,
        faults=plan,
        retry_budget=2,
    )
    events = _run_session(session)
    check_session_invariants(session, events, None)
    assert session.state is SessionState.FAILED
    assert "cursor.fetch" in (session.error or "")
    assert session.retry_count == 2
