"""Worker-kill chaos for ``repro.parallel``.

The schedule hard-kills workers mid-fragment (``worker.exec``) and aborts
spawns (``worker.spawn``). The invariants:

1. **Terminal, never hung** — the coordinator reaches a terminal state in
   bounded wall time on every backend; a dead worker is an event, not a
   deadlock.
2. **Dead worker ⇒ degraded or FAILED** — with ``degrade=True`` a kill
   leaves the run FINISHED-degraded with *exactly* the fault-free rows
   (the fragment re-ran from scratch; partial rows were discarded); with
   ``degrade=False`` it raises :class:`ParallelExecutionError` with a
   diagnosis. Silent row loss is never an outcome.
3. **No leaked workers** — after the terminal state every spawned process
   is dead (no orphan consuming the machine).
4. **Scheduler slot released** — a parallel session that dies under
   chaos still leaves the scheduler's pending count at zero, so the
   admission budget is returned.
5. **Monotone progress** — published snapshots never regress, even
   across a worker death that discards that worker's progress.

Worker-side faults fire inside rebuilt per-worker plans (``seed +
worker_id``), invisible to the coordinator's own ``FaultPlan`` log — so
the seeded sweeps assert outcome-conditional invariants, and the
deterministic ``every=1`` cases pin down that kills *do* happen and *do*
degrade.
"""

from __future__ import annotations

import time

import pytest

from repro.executor.engine import ExecutionEngine
from repro.faults import ERROR, SITE_WORKER_EXEC, SITE_WORKER_SPAWN, FaultPlan, FaultSpec
from repro.parallel import (
    Coordinator,
    ParallelExecutionError,
    ParallelQuerySession,
    try_compile,
)
from repro.server.scheduler import Scheduler
from repro.sql import compile_select

from tests.chaos.invariants import check_snapshot_stream
from tests.chaos.schedules import chaos_seeds, dump_failure, parallel_schedule

QUERY = (
    "SELECT c.name, o.totalprice FROM customer c JOIN orders o"
    " ON c.custkey = o.custkey"
)

RUN_TIMEOUT_S = 60.0


@pytest.fixture(autouse=True)
def _lock_asserts(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_ASSERTS", "1")


@pytest.fixture(scope="module")
def db():
    from repro.datagen import generate_tpch

    return generate_tpch(sf=0.002, seed=21)


@pytest.fixture(scope="module")
def fragmented(db):
    plan = compile_select(db, QUERY).plan
    fragments = try_compile(plan, 4)
    assert fragments is not None, "chaos query must be fragmentable"
    return plan, fragments


@pytest.fixture(scope="module")
def baseline_rows(db, fragmented):
    plan, _ = fragmented
    return ExecutionEngine(plan).run().rows


def run_bounded(coordinator: Coordinator) -> None:
    """Invariant 1: pump to terminal within a hard wall-clock budget."""
    deadline = time.monotonic() + RUN_TIMEOUT_S
    coordinator.start()
    while not coordinator.finished:
        assert time.monotonic() < deadline, (
            "coordinator still not terminal after "
            f"{RUN_TIMEOUT_S}s — hung on a dead worker?"
        )
        coordinator.pump(0.05)


def check_no_leaked_workers(coordinator: Coordinator) -> None:
    """Invariant 3: every spawned process is dead once we are terminal."""
    for worker_id, proc in coordinator._procs.items():
        # Grace period: terminate() is asynchronous.
        for _ in range(100):
            if not proc.is_alive():
                break
            time.sleep(0.05)
        assert not proc.is_alive(), f"worker {worker_id} leaked past terminal state"


def kill_every_worker_plan() -> FaultPlan:
    """A deterministic schedule: first ``worker.exec`` probe kills, every
    worker (per-worker rebuilt plans all fire at opportunity 1)."""
    return FaultPlan(
        seed=7,
        specs=[FaultSpec(SITE_WORKER_EXEC, kind=ERROR, every=1, count=1)],
    )


@pytest.mark.parametrize("backend", ["inline", "process"])
@pytest.mark.parametrize("seed", chaos_seeds())
def test_worker_chaos_degrades_to_exact_rows(fragmented, baseline_rows, seed, backend):
    """Invariant 2, degrade=True: chaos never changes the answer."""
    _plan, fragments = fragmented
    plan = parallel_schedule(seed)
    snaps = []
    coordinator = Coordinator(
        fragments,
        backend=backend,
        faults=plan,
        degrade=True,
        on_progress=snaps.append,
    )
    run_bounded(coordinator)
    try:
        result = coordinator.result()
        assert sorted(result.rows) == sorted(baseline_rows), (
            "degraded run diverged from the fault-free baseline"
        )
        if result.degraded:
            assert result.degraded_reason, "degraded without a reason"
        spawn_aborts = [
            r
            for r in plan.records()
            if r["site"] == SITE_WORKER_SPAWN and r["kind"] == ERROR
        ]
        if spawn_aborts:
            assert result.degraded, "a spawn abort must mark the run degraded"
        fractions = [s.progress for s in snaps]
        assert all(b >= a - 1e-12 for a, b in zip(fractions, fractions[1:])), (
            f"merged progress regressed: {fractions}"
        )
    except AssertionError:
        dump_failure(f"parallel-{backend}-seed{seed}", plan, [])
        raise
    finally:
        check_no_leaked_workers(coordinator)


@pytest.mark.parametrize("backend", ["inline", "process"])
def test_guaranteed_kill_degrades(fragmented, baseline_rows, backend):
    """Deterministic invariant 2: every worker dies once, the run still
    finishes degraded with exact rows."""
    _plan, fragments = fragmented
    coordinator = Coordinator(
        fragments, backend=backend, faults=kill_every_worker_plan(), degrade=True
    )
    run_bounded(coordinator)
    result = coordinator.result()
    check_no_leaked_workers(coordinator)
    assert result.degraded, "every worker was killed; the run must be degraded"
    assert "died" in (result.degraded_reason or "")
    assert sorted(result.rows) == sorted(baseline_rows)


@pytest.mark.parametrize("backend", ["inline", "process"])
def test_guaranteed_kill_fails_without_degrade(fragmented, backend):
    """Deterministic invariant 2, degrade=False: the kill is a diagnosed
    failure, never a hang and never a silent partial result."""
    _plan, fragments = fragmented
    coordinator = Coordinator(
        fragments, backend=backend, faults=kill_every_worker_plan(), degrade=False
    )
    run_bounded(coordinator)
    check_no_leaked_workers(coordinator)
    assert coordinator.error, "worker death without degrade must diagnose a failure"
    with pytest.raises(ParallelExecutionError):
        coordinator.result()


@pytest.mark.parametrize("seed", chaos_seeds())
def test_worker_chaos_fails_cleanly_without_degrade(fragmented, baseline_rows, seed):
    """Seeded invariant 2, degrade=False: either a diagnosed failure or a
    fault-free-identical success — nothing in between."""
    _plan, fragments = fragmented
    plan = parallel_schedule(seed)
    coordinator = Coordinator(
        fragments, backend="inline", faults=plan, degrade=False
    )
    run_bounded(coordinator)
    check_no_leaked_workers(coordinator)
    if coordinator.error:
        with pytest.raises(ParallelExecutionError):
            coordinator.result()
    else:
        result = coordinator.result()
        assert sorted(result.rows) == sorted(baseline_rows)


@pytest.mark.parametrize("seed", chaos_seeds())
def test_parallel_session_releases_scheduler_slot(fragmented, baseline_rows, seed):
    """Invariants 4 + 5 at the session/scheduler layer."""
    plan, fragments = fragmented
    faults = parallel_schedule(seed)
    session = ParallelQuerySession(
        plan,
        fragments,
        name=f"chaos-parallel-{seed}",
        backend="inline",
        faults=faults,
        degrade=True,
    )
    snaps = []
    session.add_listener(lambda _s, snap: snaps.append(snap))
    scheduler = Scheduler(workers=2, policy="fair")
    scheduler.start()
    try:
        scheduler.submit(session)
        assert scheduler.run_until_complete(timeout=RUN_TIMEOUT_S), (
            "scheduler never drained — parallel session hung under chaos"
        )
    finally:
        scheduler.shutdown()
    assert session.finished, f"session not terminal: {session.state}"
    assert scheduler.pending == 0, "terminal session still holds its slot"
    assert session.state.value in ("finished", "failed"), session.state
    if session.state.value == "finished":
        assert sorted(session.rows) == sorted(baseline_rows)
        assert session.snapshot().progress == 1.0
    else:
        assert session.error
    check_snapshot_stream(snaps)
    # Terminal sessions must have released their locks.
    for name in ("_step_lock", "_snap_lock"):
        lock = getattr(session, name)
        assert lock.acquire(blocking=False), f"leaked {name}"
        lock.release()
