"""The invariant set that must survive any fault schedule.

1. **Terminal, never wedged** — every session ends FINISHED / CANCELLED /
   FAILED within a bounded number of steps.
2. **Strictly increasing seq** — published snapshot sequence numbers for
   one session never repeat or regress.
3. **Monotone progress** — reported per-session progress never decreases,
   and a FINISHED session reports exactly 1.0.
4. **FINISHED ⇒ exact rows** — if a session claims success, its result
   rows equal the fault-free baseline bit for bit (a fault may kill a
   query, it may never silently drop rows).
5. **FAILED ⇒ diagnosed** — a failed session carries a non-empty error.
6. **No leaked locks** — after the terminal transition every session lock
   is immediately acquirable (runs with ``REPRO_LOCK_ASSERTS=1`` so the
   in-tree ownership asserts are live too).
7. **Estimator faults are survivable** — a schedule whose only faults hit
   ``estimator.hook`` must FINISH (degraded, not dead): the estimators
   exist for the progress bar, and the paper's framework deliberately
   degrades to dne rather than perturbing the query.
"""

from __future__ import annotations

from repro.faults import SITE_ESTIMATOR_HOOK, FaultSpec
from repro.server.session import QuerySession, SessionSnapshot, SessionState

TERMINAL_WIRE = ("finished", "cancelled", "failed")


def check_snapshot_stream(snaps: list[SessionSnapshot]) -> None:
    """Invariants 2 and 3 over one session's published snapshot stream."""
    prev_seq: int | None = None
    prev_progress = 0.0
    for snap in snaps:
        if prev_seq is not None:
            assert snap.seq > prev_seq, (
                f"seq regressed: {prev_seq} -> {snap.seq} ({snap.session_id})"
            )
        prev_seq = snap.seq
        assert snap.progress >= prev_progress - 1e-12, (
            f"progress regressed: {prev_progress} -> {snap.progress} "
            f"({snap.session_id} seq={snap.seq})"
        )
        prev_progress = max(prev_progress, snap.progress)


def check_wire_stream(events: list[dict], session_id: str) -> None:
    """The wire-level twin of :func:`check_snapshot_stream`, over decoded
    ``watch`` events (possibly merged across reconnects)."""
    prev_seq: int | None = None
    prev_progress = 0.0
    for event in events:
        if event.get("event") != "snapshot":
            continue
        wire = event.get("session", {})
        if wire.get("session_id") != session_id:
            continue
        seq = int(wire["seq"])
        if prev_seq is not None:
            assert seq > prev_seq, f"wire seq regressed: {prev_seq} -> {seq}"
        prev_seq = seq
        progress = float(wire["progress"])
        assert progress >= prev_progress - 1e-12, (
            f"wire progress regressed: {prev_progress} -> {progress} (seq={seq})"
        )
        prev_progress = max(prev_progress, progress)
        if wire.get("state") == "finished":
            assert progress == 1.0, f"finished snapshot at {progress}, not 1.0"


def check_locks_released(session: QuerySession) -> None:
    """Invariant 6: no terminal session holds (or leaked) a lock."""
    for name, lock in (
        ("bus.lock", session.bus.lock),
        ("_step_lock", session._step_lock),
        ("_snap_lock", session._snap_lock),
    ):
        acquired = lock.acquire(blocking=False)
        assert acquired, f"leaked lock after terminal state: {name}"
        lock.release()


def check_session_invariants(
    session: QuerySession,
    events: list[SessionSnapshot],
    baseline_rows: list[tuple] | None,
) -> None:
    """The full in-process invariant set for one completed session.

    ``baseline_rows`` is the fault-free reference result; pass None when
    the baseline is unknown (invariant 4 is then skipped).
    """
    assert session.finished, f"session not terminal: {session.state}"
    assert session.state.value in TERMINAL_WIRE
    final = session.snapshot()
    if session.state is SessionState.FINISHED:
        assert final.progress == 1.0, f"finished at progress {final.progress}"
        if baseline_rows is not None:
            assert session.row_count == len(baseline_rows), (
                f"FINISHED with {session.row_count} rows, "
                f"baseline has {len(baseline_rows)}"
            )
            assert session.rows == baseline_rows, "FINISHED but rows differ from baseline"
    elif session.state is SessionState.FAILED:
        assert session.error, "FAILED without a diagnosis"
    check_snapshot_stream(events)
    check_locks_released(session)


def check_estimator_faults_survivable(
    session: QuerySession,
    specs: list[FaultSpec] | tuple[FaultSpec, ...],
    baseline_rows: list[tuple] | None,
) -> None:
    """Invariant 7: a schedule that only ever faults the estimator hooks
    must leave the query FINISHED with exact rows (degraded, not dead)."""
    assert specs and all(spec.site == SITE_ESTIMATOR_HOOK for spec in specs), (
        "invariant 7 only applies to estimator-hook-only schedules"
    )
    assert session.state is SessionState.FINISHED, (
        "an estimator fault must degrade the progress estimate, not kill "
        f"the query — session ended {session.state.value} "
        f"(error: {session.error})"
    )
    if baseline_rows is not None:
        assert session.rows == baseline_rows, (
            "estimator degradation changed the query result"
        )
