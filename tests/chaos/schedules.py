"""Deterministic fault-schedule builders + failure replay dumps.

Schedules are derived from a seed via the repo's :func:`make_rng` ladder,
so a CI seed reproduces the exact same fault plan locally. The seed list
comes from ``REPRO_CHAOS_SEEDS`` (comma-separated), letting the CI matrix
shard one seed per job; the default trio keeps a local run fast.

On an invariant violation, :func:`dump_failure` writes the complete fault
plan (specs + firing log) and the observed event stream as JSON under
``chaos-failures/`` — CI uploads that directory as an artifact, and
feeding the recorded seed back through the same builder replays the run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.common.rng import make_rng
from repro.faults import (
    ERROR,
    SHORT_READ,
    SITE_CURSOR_FETCH,
    SITE_ESTIMATOR_HOOK,
    SITE_OPERATOR_PULL,
    SITE_SCAN_READ,
    SITE_SERVER_READ,
    SITE_SERVER_WRITE,
    SITE_WORKER_EXEC,
    SITE_WORKER_SPAWN,
    STALL,
    FaultPlan,
    FaultSpec,
)

DEFAULT_SEEDS = "101,202,303"
FAILURE_DIR = Path(__file__).resolve().parents[2] / "chaos-failures"


def chaos_seeds() -> list[int]:
    raw = os.environ.get("REPRO_CHAOS_SEEDS", DEFAULT_SEEDS)
    return [int(part) for part in raw.split(",") if part.strip()]


def engine_schedule(seed: int, trial: int) -> FaultPlan:
    """A randomized (but seed-deterministic) schedule for in-process runs.

    Mixes the three engine-side sites. Counts are bounded so most runs can
    actually finish — the invariants must hold either way, but a schedule
    that always kills the query never exercises the FINISHED⇒exact-rows
    check. Transient cursor faults stay within the default retry budget
    roughly half the time.
    """
    rng = make_rng(seed, "chaos", "engine", trial)
    specs: list[FaultSpec] = []
    # Retryable cursor faults: sometimes inside the budget of 3, sometimes
    # past it (exercising the budget-exhausted FAILED path).
    if rng.random() < 0.7:
        specs.append(
            FaultSpec(
                SITE_CURSOR_FETCH,
                kind=ERROR,
                every=int(rng.integers(2, 6)),
                count=int(rng.integers(1, 6)),
            )
        )
    if rng.random() < 0.4:
        specs.append(
            FaultSpec(
                SITE_OPERATOR_PULL,
                kind=ERROR,
                rate=0.0005 * rng.random(),
                count=1,
            )
        )
    if rng.random() < 0.4:
        specs.append(
            FaultSpec(SITE_SCAN_READ, kind=ERROR, rate=0.001 * rng.random(), count=1)
        )
    # Non-fatal noise: stalls and short reads perturb timing and batch
    # shapes without ever being allowed to change results.
    specs.append(
        FaultSpec(
            SITE_OPERATOR_PULL,
            kind=STALL,
            every=int(rng.integers(50, 201)),
            count=int(rng.integers(1, 4)),
            delay_s=0.001,
        )
    )
    specs.append(
        FaultSpec(
            SITE_SCAN_READ,
            kind=SHORT_READ,
            every=int(rng.integers(3, 10)),
            count=int(rng.integers(2, 9)),
        )
    )
    if rng.random() < 0.5:
        specs.append(
            FaultSpec(
                SITE_ESTIMATOR_HOOK,
                kind=ERROR,
                every=int(rng.integers(10, 61)),
                count=int(rng.integers(1, 3)),
            )
        )
    return FaultPlan(seed=seed * 1_000 + trial, specs=specs)


def estimator_only_schedule(seed: int) -> FaultPlan:
    """Faults exclusively at ``estimator.hook`` — the degradation oracle."""
    rng = make_rng(seed, "chaos", "estimator")
    specs = [
        FaultSpec(
            SITE_ESTIMATOR_HOOK,
            kind=ERROR,
            every=int(rng.integers(2, 11)),
            count=int(rng.integers(2, 5)),
        )
    ]
    return FaultPlan(seed=seed, specs=specs)


def service_schedule(seed: int) -> FaultPlan:
    """A schedule for the TCP service: connection-level faults plus mild
    engine-side noise. All counts are finite and small, so the service is
    guaranteed to become healthy again — the client retry/resume paths are
    what is under test, not permanent outage behaviour.
    """
    rng = make_rng(seed, "chaos", "service")
    specs = [
        FaultSpec(
            SITE_SERVER_READ,
            kind=ERROR,
            every=int(rng.integers(3, 7)),
            count=int(rng.integers(2, 5)),
        ),
        FaultSpec(
            SITE_SERVER_WRITE,
            kind=ERROR,
            every=int(rng.integers(4, 9)),
            count=int(rng.integers(2, 5)),
        ),
        FaultSpec(
            SITE_SERVER_READ,
            kind=SHORT_READ,
            every=int(rng.integers(5, 10)),
            count=int(rng.integers(1, 4)),
        ),
        FaultSpec(
            SITE_CURSOR_FETCH,
            kind=ERROR,
            every=int(rng.integers(7, 16)),
            count=int(rng.integers(1, 4)),
        ),
        FaultSpec(
            SITE_SCAN_READ,
            kind=SHORT_READ,
            every=int(rng.integers(4, 11)),
            count=int(rng.integers(2, 7)),
        ),
    ]
    return FaultPlan(seed=seed, specs=specs)


def parallel_schedule(seed: int) -> FaultPlan:
    """Worker-kill chaos for the parallel subsystem.

    ``worker.exec`` errors are hard kills (``os._exit``, no farewell
    message) and ``worker.spawn`` errors abort a launch — both must leave
    the coordinator terminal (degraded or FAILED), never hung. Stall
    noise perturbs worker pacing without changing anything observable.
    Counts are finite so the degraded re-run (which runs fault-free by
    design) always completes.
    """
    rng = make_rng(seed, "chaos", "parallel")
    specs: list[FaultSpec] = []
    if rng.random() < 0.8:
        specs.append(
            FaultSpec(
                SITE_WORKER_EXEC,
                kind=ERROR,
                every=int(rng.integers(1, 5)),
                count=int(rng.integers(1, 3)),
            )
        )
    if rng.random() < 0.4:
        specs.append(
            FaultSpec(SITE_WORKER_SPAWN, kind=ERROR, every=1, count=1)
        )
    specs.append(
        FaultSpec(
            SITE_WORKER_EXEC,
            kind=STALL,
            every=int(rng.integers(2, 6)),
            count=int(rng.integers(1, 4)),
            delay_s=0.001,
        )
    )
    return FaultPlan(seed=seed, specs=specs)


def dump_failure(tag: str, plan: FaultPlan, events: list, extra: dict | None = None) -> Path:
    """Write a replayable failure record; returns the path written."""
    FAILURE_DIR.mkdir(parents=True, exist_ok=True)
    path = FAILURE_DIR / f"{tag}.json"
    record = {
        "tag": tag,
        "fault_plan": plan.to_wire(),
        "events": [
            event.to_wire() if hasattr(event, "to_wire") else event
            for event in events
        ],
    }
    if extra:
        record.update(extra)
    path.write_text(json.dumps(record, indent=2, default=str) + "\n")
    return path
