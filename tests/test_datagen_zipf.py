"""Tests for Zipfian value streams."""

import numpy as np
import pytest

from repro.datagen.zipf import ZipfDistribution, zipf_pmf


class TestZipfPmf:
    def test_sums_to_one(self):
        assert zipf_pmf(1000, 1.5).sum() == pytest.approx(1.0)

    def test_uniform_at_zero_skew(self):
        pmf = zipf_pmf(100, 0.0)
        assert np.allclose(pmf, 1 / 100)

    def test_rank_ordering(self):
        pmf = zipf_pmf(50, 1.0)
        assert (np.diff(pmf) < 0).all()

    def test_known_ratios(self):
        pmf = zipf_pmf(10, 2.0)
        assert pmf[1] / pmf[0] == pytest.approx(1 / 4)
        assert pmf[2] / pmf[0] == pytest.approx(1 / 9)

    @pytest.mark.parametrize("n,z", [(0, 1.0), (10, -0.5)])
    def test_rejects_bad_params(self, n, z):
        with pytest.raises(ValueError):
            zipf_pmf(n, z)


class TestZipfDistribution:
    def test_sample_range(self):
        dist = ZipfDistribution(100, 1.0, seed=1)
        values = dist.sample(5000)
        assert values.min() >= 1
        assert values.max() <= 100

    def test_deterministic(self):
        a = ZipfDistribution(100, 1.0, seed=1).sample(100)
        b = ZipfDistribution(100, 1.0, seed=1).sample(100)
        assert (a == b).all()

    def test_variants_share_skew_but_differ_in_hot_values(self):
        d0 = ZipfDistribution(1000, 2.0, variant=0, seed=1)
        d1 = ZipfDistribution(1000, 2.0, variant=1, seed=1)
        hot0 = max(d0.value_probabilities().items(), key=lambda kv: kv[1])[0]
        hot1 = max(d1.value_probabilities().items(), key=lambda kv: kv[1])[0]
        assert hot0 != hot1

    def test_unpermuted_hot_value_is_one(self):
        dist = ZipfDistribution(1000, 2.0, seed=1, permute=False)
        probs = dist.value_probabilities()
        assert max(probs, key=probs.get) == 1

    def test_empirical_frequencies_track_pmf(self):
        dist = ZipfDistribution(10, 1.0, seed=2, permute=False)
        values = dist.sample(50_000)
        observed_top = np.mean(values == 1)
        assert observed_top == pytest.approx(float(dist.pmf[0]), rel=0.05)

    def test_value_probabilities_sum_to_one(self):
        dist = ZipfDistribution(500, 1.5, variant=3, seed=4)
        assert sum(dist.value_probabilities().values()) == pytest.approx(1.0)

    def test_expected_join_size_uniform(self):
        a = ZipfDistribution(100, 0.0, variant=0, seed=1)
        b = ZipfDistribution(100, 0.0, variant=1, seed=1)
        # Uniform x uniform: |R||S|/n regardless of permutation.
        assert a.expected_join_size(b, 1000, 1000) == pytest.approx(10_000.0)

    def test_expected_join_size_matches_empirical(self):
        from collections import Counter

        a = ZipfDistribution(50, 1.0, variant=0, seed=9)
        b = ZipfDistribution(50, 1.0, variant=1, seed=9)
        rows = 20_000
        ca = Counter(a.sample(rows).tolist())
        cb = Counter(b.sample(rows).tolist())
        actual = sum(c * cb.get(v, 0) for v, c in ca.items())
        expected = a.expected_join_size(b, rows, rows)
        assert actual == pytest.approx(expected, rel=0.1)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            ZipfDistribution(10, 1.0).sample(-1)
