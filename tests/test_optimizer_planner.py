"""Tests for the heuristic planner."""

import pytest

from repro.common.errors import PlanError
from repro.executor.engine import ExecutionEngine
from repro.executor.expressions import col, lit
from repro.executor.operators import HashJoin, SampleScan, SeqScan
from repro.optimizer.planner import JoinSpec, Planner


class TestScan:
    def test_plain_scan(self, small_catalog):
        planner = Planner(small_catalog)
        scan = planner.scan("orders")
        assert isinstance(scan, SeqScan)

    def test_sampling_scan(self, small_catalog):
        planner = Planner(small_catalog, sample_fraction=0.1)
        scan = planner.scan("orders")
        assert isinstance(scan, SampleScan)

    def test_scan_with_filter(self, small_catalog):
        planner = Planner(small_catalog)
        plan = planner.scan("orders", col("totalprice") > lit(400_000.0))
        result = ExecutionEngine(plan, collect_rows=False).run()
        assert 0 < result.row_count < small_catalog.row_count("orders")


class TestBuild:
    def test_join_chain_shape(self, small_catalog):
        planner = Planner(small_catalog)
        plan = planner.build(
            "lineitem",
            [
                JoinSpec("orders", "lineitem.orderkey", "orderkey"),
                JoinSpec("customer", "orders.custkey", "custkey"),
            ],
        )
        # Top is a hash join whose probe child is the lower join.
        assert isinstance(plan, HashJoin)
        assert isinstance(plan.probe_child, HashJoin)

    def test_chain_executes_correctly(self, small_catalog):
        planner = Planner(small_catalog)
        plan = planner.build(
            "lineitem", [JoinSpec("orders", "lineitem.orderkey", "orderkey")]
        )
        result = ExecutionEngine(plan, collect_rows=False).run()
        # PK-FK join preserves lineitem cardinality.
        assert result.row_count == small_catalog.row_count("lineitem")

    def test_estimates_annotated(self, small_catalog):
        planner = Planner(small_catalog)
        plan = planner.build(
            "lineitem", [JoinSpec("orders", "lineitem.orderkey", "orderkey")]
        )
        assert plan.estimated_cardinality is not None

    def test_group_by(self, small_catalog):
        from repro.executor.operators import AggregateSpec, HashAggregate

        planner = Planner(small_catalog)
        plan = planner.build(
            "orders",
            group_by=["orders.custkey"],
            aggregates=[AggregateSpec("count", alias="n")],
        )
        assert isinstance(plan, HashAggregate)
        result = ExecutionEngine(plan, collect_rows=False).run()
        assert result.row_count <= small_catalog.row_count("customer")

    def test_merge_join_method(self, small_catalog):
        from repro.executor.operators import SortMergeJoin

        planner = Planner(small_catalog)
        plan = planner.build(
            "lineitem",
            [JoinSpec("orders", "lineitem.orderkey", "orderkey", method="merge")],
        )
        assert isinstance(plan, SortMergeJoin)

    def test_index_nl_method(self, small_catalog):
        from repro.executor.operators import IndexNestedLoopsJoin

        planner = Planner(small_catalog)
        plan = planner.build(
            "lineitem",
            [JoinSpec("orders", "lineitem.orderkey", "orderkey", method="index_nl")],
        )
        assert isinstance(plan, IndexNestedLoopsJoin)
        result = ExecutionEngine(plan, collect_rows=False).run()
        assert result.row_count == small_catalog.row_count("lineitem")


class TestValidation:
    def test_unknown_probe_key(self, small_catalog):
        planner = Planner(small_catalog)
        with pytest.raises(PlanError, match="probe key"):
            planner.build("lineitem", [JoinSpec("orders", "lineitem.nope", "orderkey")])

    def test_unknown_build_key(self, small_catalog):
        planner = Planner(small_catalog)
        with pytest.raises(PlanError, match="build key"):
            planner.build("lineitem", [JoinSpec("orders", "lineitem.orderkey", "nope")])

    def test_unknown_method(self):
        with pytest.raises(PlanError):
            JoinSpec("orders", "x", method="bogus")
