"""Tests for bound-based refinement of future-pipeline estimates."""

from repro.executor.engine import ExecutionEngine
from repro.executor.expressions import col, lit
from repro.executor.operators import Filter, HashAggregate, HashJoin, SeqScan
from repro.optimizer.bounds import CardinalityBounds, RefinableEstimate


class TestRefinableEstimate:
    def test_clamping(self):
        est = RefinableEstimate(lo=10.0, est=5.0, hi=100.0)
        assert est.clamped() == 10.0
        est.est = 500.0
        assert est.clamped() == 100.0

    def test_bounds_only_tighten(self):
        est = RefinableEstimate(lo=0.0, est=50.0, hi=1000.0)
        est.update_bounds(lo=10.0, hi=500.0)
        est.update_bounds(lo=5.0, hi=2000.0)  # looser info is ignored
        assert est.lo == 10.0
        assert est.hi == 500.0

    def test_crossed_bounds_resolve_to_hi(self):
        est = RefinableEstimate(lo=0.0, est=5.0, hi=100.0)
        est.update_bounds(lo=50.0)
        est.update_bounds(hi=20.0)
        assert est.lo == est.hi == 20.0


class TestCardinalityBounds:
    def make_plan(self, tiny_table):
        scan = SeqScan(tiny_table)
        other = SeqScan(tiny_table.aliased("o"))
        join = HashJoin(other, Filter(scan, col("id") > lit(0)), "o.id", "tiny.id")
        join.estimated_cardinality = 1000.0  # absurd optimizer estimate
        scan.estimated_cardinality = 5.0
        other.estimated_cardinality = 5.0
        join.probe_child.estimated_cardinality = 5.0
        return join, scan, other

    def test_join_clamped_by_cross_product(self, tiny_table):
        join, *_ = self.make_plan(tiny_table)
        bounds = CardinalityBounds(join)
        bounds.refine()
        # |filter| <= 5, |build| = 5 -> join <= 25 << 1000.
        assert bounds.estimate_of(join) <= 25.0

    def test_max_multiplicity_tightens_join_bound(self, tiny_table):
        join, *_ = self.make_plan(tiny_table)
        bounds = CardinalityBounds(join)
        bounds.refine(max_multiplicity={id(join): 1.0})
        assert bounds.estimate_of(join) <= 5.0

    def test_scans_pinned_exactly(self, tiny_table):
        join, scan, other = self.make_plan(tiny_table)
        bounds = CardinalityBounds(join)
        bounds.refine()
        assert bounds.of(scan).lo == bounds.of(scan).hi == 5.0

    def test_set_known_pins_value(self, tiny_table):
        join, *_ = self.make_plan(tiny_table)
        bounds = CardinalityBounds(join)
        bounds.set_known(join, 17.0)
        assert bounds.estimate_of(join) == 17.0

    def test_aggregate_bounded_by_input(self, tiny_table):
        agg = HashAggregate(SeqScan(tiny_table), ["name"])
        agg.estimated_cardinality = 9999.0
        bounds = CardinalityBounds(agg)
        bounds.refine()
        assert bounds.estimate_of(agg) <= 5.0
        assert bounds.of(agg).lo >= 1.0

    def test_estimates_survive_execution(self, tiny_table):
        join, *_ = self.make_plan(tiny_table)
        bounds = CardinalityBounds(join)
        ExecutionEngine(join, collect_rows=False).run()
        bounds.refine()
        assert bounds.estimate_of(join) <= 25.0
