"""Property tests for canonical plan fingerprints.

Stability half: the same query — under fresh operator instantiation,
different table aliases, different whitespace/formatting, permuted
SELECT-list order, commuted equality operands — must hash identically.
Sensitivity half: changing a join key, a predicate constant, or a
comparison direction must change the hash. The stability properties run
over the differential-batch harness's seeded random plan generator, so
they cover the same plan space the row-vs-batch oracle does.
"""

from __future__ import annotations

import pytest

from repro.datagen.skew import customer_variant
from repro.executor.expressions import col, lit
from repro.executor.operators import Filter, HashJoin, Project, SeqScan
from repro.executor.plan import validate_plan, walk
from repro.robust import canonical_expression, fingerprint_plan
from repro.sql import compile_select
from repro.storage.catalog import Catalog

from tests.test_differential_batch import NUM_PLANS, build_plan

#: Trials for the property sweep — the full generator space.
TRIALS = range(NUM_PLANS)


@pytest.fixture(scope="module")
def db():
    catalog = Catalog()
    catalog.register(
        customer_variant(z=0.5, domain_size=25, variant=0, num_rows=300, name="customer")
    )
    catalog.register(
        customer_variant(z=1.0, domain_size=25, variant=1, num_rows=200, name="cust2")
    )
    return catalog


def digest_of_sql(db, sql: str) -> str:
    return fingerprint_plan(compile_select(db, sql).plan).digest


class TestGeneratorStability:
    """Same trial → same digest, across fresh operator instantiations."""

    @pytest.mark.parametrize("trial", TRIALS)
    def test_rebuilt_plan_hashes_equal(self, trial):
        first = fingerprint_plan(build_plan(trial))
        second = fingerprint_plan(build_plan(trial))
        assert first.digest == second.digest
        assert first.signature == second.signature

    def test_subtree_digests_stable_and_cover_every_node(self):
        for trial in range(0, NUM_PLANS, 7):
            a, b = build_plan(trial), build_plan(trial)
            validate_plan(a)  # assigns node ids
            validate_plan(b)
            fa, fb = fingerprint_plan(a), fingerprint_plan(b)
            assert fa.nodes == fb.nodes
            assert set(fa.nodes) == {op.node_id for op in walk(a)}

    def test_distinct_trials_mostly_hash_distinct(self):
        """Sanity: the digest actually discriminates across the generator's
        plan space (collisions only where the generator repeats shapes)."""
        signatures = {}
        for trial in TRIALS:
            fp = fingerprint_plan(build_plan(trial))
            signatures.setdefault(fp.digest, fp.signature)
            # A digest collision across *different* signatures is a bug.
            assert signatures[fp.digest] == fp.signature
        assert len(signatures) > NUM_PLANS // 2


class TestAliasInvariance:
    def test_aliased_tables_hash_equal(self):
        for trial in range(0, NUM_PLANS, 5):
            plain = fingerprint_plan(build_plan(trial))
            aliased = build_plan(trial)
            for op in walk(aliased):
                table = getattr(op, "table", None)
                if table is not None:
                    op.table = table.aliased(table.name + "_alias")
            assert fingerprint_plan(aliased).digest == plain.digest

    def test_sql_alias_choice_is_invisible(self, db):
        a = digest_of_sql(
            db, "SELECT c.custkey FROM customer c WHERE c.nationkey > 5"
        )
        b = digest_of_sql(
            db, "SELECT zz.custkey FROM customer zz WHERE zz.nationkey > 5"
        )
        assert a == b

    def test_self_join_variants_canonicalize_to_one_base(self, db):
        a = digest_of_sql(
            db,
            "SELECT c1.custkey, c2.custkey FROM customer c1"
            " JOIN customer c2 ON c1.nationkey = c2.nationkey",
        )
        b = digest_of_sql(
            db,
            "SELECT x.custkey, y.custkey FROM customer x"
            " JOIN customer y ON x.nationkey = y.nationkey",
        )
        assert a == b


class TestFormattingInvariance:
    def test_whitespace_and_case_noise_is_invisible(self, db):
        a = digest_of_sql(
            db, "SELECT c.custkey FROM customer c WHERE c.nationkey > 5"
        )
        b = digest_of_sql(
            db,
            "select   c.custkey\n  from customer c\n"
            " WHERE\n\tc.nationkey > 5",
        )
        assert a == b

    def test_select_list_order_is_invisible(self, db):
        a = digest_of_sql(db, "SELECT c.custkey, c.name FROM customer c")
        b = digest_of_sql(db, "SELECT c.name, c.custkey FROM customer c")
        assert a == b

    def test_commuted_equality_operands_hash_equal(self, db):
        a = digest_of_sql(
            db,
            "SELECT c.custkey FROM customer c JOIN cust2 d"
            " ON c.nationkey = d.nationkey",
        )
        b = digest_of_sql(
            db,
            "SELECT c.custkey FROM customer c JOIN cust2 d"
            " ON d.nationkey = c.nationkey",
        )
        assert a == b

    def test_commuted_and_terms_hash_equal(self):
        pred_ab = (col("c.nationkey") > lit(3)) & (col("c.custkey") < lit(9))
        pred_ba = (col("c.custkey") < lit(9)) & (col("c.nationkey") > lit(3))
        assert canonical_expression(pred_ab) == canonical_expression(pred_ba)


class TestSensitivity:
    """The other half of the contract: semantic changes must change the hash."""

    def base_table(self):
        return customer_variant(
            z=0.5, domain_size=25, variant=0, num_rows=300, name="customer"
        )

    def test_changed_predicate_constant_changes_digest(self):
        t = self.base_table()
        a = Filter(SeqScan(t), col("customer.nationkey") > lit(5))
        b = Filter(SeqScan(t), col("customer.nationkey") > lit(6))
        assert fingerprint_plan(a).digest != fingerprint_plan(b).digest

    def test_changed_comparison_direction_changes_digest(self):
        t = self.base_table()
        a = Filter(SeqScan(t), col("customer.nationkey") > lit(5))
        b = Filter(SeqScan(t), col("customer.nationkey") < lit(5))
        assert fingerprint_plan(a).digest != fingerprint_plan(b).digest

    def test_changed_join_key_changes_digest(self):
        t = self.base_table()
        a = HashJoin(
            SeqScan(t), SeqScan(t.aliased("c2")),
            "customer.nationkey", "c2.nationkey",
        )
        b = HashJoin(
            SeqScan(t), SeqScan(t.aliased("c2")),
            "customer.custkey", "c2.custkey",
        )
        assert fingerprint_plan(a).digest != fingerprint_plan(b).digest

    def test_changed_join_type_changes_digest(self):
        t = self.base_table()
        args = (SeqScan(t), SeqScan(t.aliased("c2")),
                "customer.nationkey", "c2.nationkey")
        a = HashJoin(*args, join_type="inner")
        b = HashJoin(*args, join_type="semi")
        assert fingerprint_plan(a).digest != fingerprint_plan(b).digest

    def test_changed_projection_changes_digest(self):
        t = self.base_table()
        a = Project(SeqScan(t), ["customer.custkey"])
        b = Project(SeqScan(t), ["customer.name"])
        assert fingerprint_plan(a).digest != fingerprint_plan(b).digest

    def test_different_base_table_changes_digest(self):
        a = SeqScan(self.base_table())
        b = SeqScan(
            customer_variant(
                z=0.5, domain_size=25, variant=0, num_rows=300, name="other"
            )
        )
        assert fingerprint_plan(a).digest != fingerprint_plan(b).digest

    def test_execution_knobs_do_not_change_digest(self):
        """The converse guard: partitioning knobs are not semantics."""
        t = self.base_table()
        a = HashJoin(
            SeqScan(t), SeqScan(t.aliased("c2")),
            "customer.nationkey", "c2.nationkey", num_partitions=1,
        )
        b = HashJoin(
            SeqScan(t), SeqScan(t.aliased("c2")),
            "customer.nationkey", "c2.nationkey",
            num_partitions=8, memory_partitions=2,
        )
        assert fingerprint_plan(a).digest == fingerprint_plan(b).digest
