"""End-to-end tests for the TCP progress service and client library.

Covers the acceptance scenario from the server subsystem design: 16
concurrent sessions on a 4-worker scheduler, each watched by two
concurrent subscribers, with monotone streamed progress, exact 1.0 final
snapshots, results that match the single-threaded engine row for row, and
cancellation that frees the worker and shows up in the aggregate view.
"""

import socket
import threading
import time

import pytest

from repro.executor.engine import ExecutionEngine
from repro.server import ProgressClient, ProgressService, ServiceError
from repro.server.protocol import decode, encode
from repro.sql import compile_select

QUERIES = [
    "SELECT c.name, o.totalprice FROM customer c JOIN orders o"
    " ON c.custkey = o.custkey",
    "SELECT o.orderkey, o.totalprice FROM orders o WHERE o.totalprice > 1000",
    "SELECT n.name, c.name FROM nation n JOIN customer c"
    " ON n.nationkey = c.nationkey",
    "SELECT o.custkey, COUNT(*) FROM orders o GROUP BY o.custkey",
]

LONG_QUERY = (
    "SELECT a.orderkey, b.orderkey FROM orders a JOIN orders b"
    " ON a.custkey = b.custkey"
)


@pytest.fixture(scope="module")
def db():
    from repro.datagen import generate_tpch

    return generate_tpch(sf=0.002, seed=21)


@pytest.fixture()
def service(db):
    svc = ProgressService(
        db,
        port=0,
        workers=4,
        quantum_rows=64,
        tick_interval=200,
        row_cap=50_000,
        max_pending=64,
    )
    svc.start()
    client = ProgressClient(svc.host, svc.port, timeout=30.0)
    try:
        yield svc, client
    finally:
        svc.shutdown()


def collect_watch(client, session_id, out):
    events = [e for e in client.watch(session_id)]
    out.append(events)


class TestAcceptance:
    def test_sixteen_concurrent_sessions_two_watchers_each(self, db, service):
        _svc, client = service
        expected_rows = {}
        for i, sql in enumerate(QUERIES):
            result = ExecutionEngine(compile_select(db, sql).plan).run()
            expected_rows[i % len(QUERIES)] = result.rows

        submitted = []
        for i in range(16):
            sql = QUERIES[i % len(QUERIES)]
            snap = client.submit(sql, name=f"q{i:02d}")
            submitted.append((i, snap["session_id"]))

        streams: dict[str, list] = {}
        threads = []
        for _i, sid in submitted:
            for _w in range(2):
                out = []
                streams.setdefault(sid, []).append(out)
                t = threading.Thread(
                    target=collect_watch, args=(client, sid, out), daemon=True
                )
                t.start()
                threads.append(t)

        finals = {sid: client.wait(sid, timeout=120.0) for _i, sid in submitted}
        for t in threads:
            t.join(timeout=30.0)
            assert not t.is_alive(), "watcher thread did not terminate"

        for i, sid in submitted:
            final = finals[sid]
            assert final["state"] == "finished"
            assert final["progress"] == 1.0
            assert final["work_done"] == final["work_total_estimate"]

            fetched = client.fetch(sid)
            assert not fetched["truncated"]
            got = [tuple(row) for row in fetched["rows"]]
            assert got == expected_rows[i % len(QUERIES)]

            for out in streams[sid]:
                (events,) = out
                assert events, f"watcher of {sid} saw no events"
                assert events[-1]["event"] == "end"
                snaps = [e["session"] for e in events if e["event"] == "snapshot"]
                assert snaps, f"watcher of {sid} saw no snapshots"
                assert all(s["session_id"] == sid for s in snaps)
                progresses = [s["progress"] for s in snaps]
                assert progresses == sorted(progresses), (
                    f"stream for {sid} regressed: {progresses}"
                )
                assert snaps[-1]["progress"] == 1.0
                assert snaps[-1]["state"] == "finished"

        workload = client.list_sessions()["workload"]
        assert workload["progress"] == 1.0
        assert workload["states"] == {"finished": 16}

    def test_cancel_mid_flight_reflected_in_workload(self, service):
        _svc, client = service
        victim = client.submit(LONG_QUERY, name="victim", quantum_rows=16)
        survivor = client.submit(QUERIES[1], name="survivor")
        cancelled = client.cancel(victim["session_id"], reason="operator abort")
        final_victim = client.wait(victim["session_id"], timeout=60.0)
        final_survivor = client.wait(survivor["session_id"], timeout=60.0)
        assert cancelled["session_id"] == victim["session_id"]
        assert final_victim["state"] == "cancelled"
        assert final_victim["error"] == "operator abort"
        # The worker was released: the other query still ran to completion.
        assert final_survivor["state"] == "finished"
        listing = client.list_sessions()
        workload = listing["workload"]
        assert workload["states"]["cancelled"] == 1
        assert workload["states"]["finished"] == 1
        assert workload["idle"]
        by_id = {s["session_id"]: s for s in listing["sessions"]}
        assert by_id[victim["session_id"]]["state"] == "cancelled"

    def test_timeout_cancels_session(self, service):
        _svc, client = service
        snap = client.submit(LONG_QUERY, timeout_s=0.001, quantum_rows=8)
        final = client.wait(snap["session_id"], timeout=60.0)
        assert final["state"] == "cancelled"
        assert "deadline exceeded" in final["error"]


class TestProtocolOps:
    def test_ping(self, service):
        _svc, client = service
        assert client.ping() is True

    def test_status_unknown_session(self, service):
        _svc, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.status("no-such-session")
        assert excinfo.value.code == "unknown_session"

    def test_submit_bad_sql(self, service):
        _svc, client = service
        with pytest.raises(ServiceError):
            client.submit("SELECT FROM WHERE")

    def test_unknown_op_rejected(self, service):
        svc, _client = service
        with socket.create_connection((svc.host, svc.port), timeout=10) as conn:
            conn.sendall(encode({"op": "explode"}))
            with conn.makefile("rb") as stream:
                response = decode(stream.readline())
        assert response["ok"] is False

    def test_multiple_requests_one_connection(self, service):
        svc, _client = service
        with socket.create_connection((svc.host, svc.port), timeout=10) as conn:
            with conn.makefile("rb") as stream:
                for _ in range(3):
                    conn.sendall(encode({"op": "ping"}))
                    response = decode(stream.readline())
                    assert response["ok"] and response["pong"]

    def test_aggregate_watch_until_idle(self, service):
        _svc, client = service
        sids = [
            client.submit(QUERIES[i % len(QUERIES)], name=f"agg{i}")["session_id"]
            for i in range(3)
        ]
        events = list(client.watch(until_idle=True))
        assert events[-1]["event"] == "end"
        workloads = [e["workload"] for e in events if e.get("event") == "workload"]
        assert workloads, "aggregate watch never reported workload progress"
        dones = [w["work_done"] for w in workloads]
        assert dones == sorted(dones)
        assert workloads[-1]["progress"] == 1.0
        for sid in sids:
            assert client.status(sid)["state"] == "finished"

    def test_admission_error_surfaces_to_client(self, db):
        svc = ProgressService(db, port=0, workers=1, max_pending=1)
        svc.start()
        client = ProgressClient(svc.host, svc.port)
        try:
            client.submit(LONG_QUERY, quantum_rows=8)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(LONG_QUERY, quantum_rows=8)
            assert excinfo.value.code == "admission"
        finally:
            svc.shutdown()

    def test_shutdown_op(self, db):
        svc = ProgressService(db, port=0, workers=1)
        svc.start()
        client = ProgressClient(svc.host, svc.port)
        client.shutdown_server()
        assert svc._stopped.wait(timeout=10.0)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                socket.create_connection((svc.host, svc.port), timeout=1).close()
            except OSError:
                return  # listening socket is gone: clean shutdown
            time.sleep(0.05)
        pytest.fail("server socket still accepting connections after shutdown")
